#!/usr/bin/env sh
# Tier-1 verification for the NeuSpin workspace.
#
# The workspace is fully self-contained (every dependency is a path
# crate, including the vendored `rand` shim), so everything here runs
# with `--offline`: a network-less machine must produce the same green.
#
# Build and test are gating; clippy runs strict (`-D warnings`) because
# the tree is currently warning-free — keep it that way.

set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

# The deterministic parallel MC engine must be thread-count-invariant:
# re-run the workspace tests with a forced 4-worker default pool. Any
# test that consults NEUSPIN_THREADS (directly or via
# ThreadPool::from_env) now exercises the parallel path.
echo "==> cargo test -q --offline (NEUSPIN_THREADS=4)"
NEUSPIN_THREADS=4 cargo test -q --offline

echo "==> cargo clippy --workspace --all-targets --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

# Fault-management campaign smoke: a tiny grid end to end, then re-parse
# the emitted JSON and fail on schema drift or any non-finite value.
# Smoke output goes under target/ so the tracked full-run artifact in
# results/ is not clobbered.
echo "==> exp_faultmgmt smoke (NEUSPIN_BENCH_FAST=1)"
NEUSPIN_RESULTS=target/ci-results NEUSPIN_BENCH_FAST=1 \
    cargo run -q --release --offline -p neuspin-bench --bin exp_faultmgmt
NEUSPIN_RESULTS=target/ci-results \
    cargo run -q --release --offline -p neuspin-bench --bin exp_faultmgmt -- --check

# Throughput baseline smoke: kernel + MC engine micro-run (bit-identity
# across engines — including the packed XNOR/popcount path and the
# planned/legacy/parallel MC engines — is asserted inside the binary),
# then the schema gate. --check also enforces the packed-kernel floor
# (every engaged kernel row must show packed ≥ 2× the row-major scalar
# kernel, with at least one engaged row) and the allocation discipline:
# a warm planned forward must report exactly zero heap events and zero
# allocations per extra MC pass. The ≥ 1.3× recorded-baseline speedup
# floor applies to full-mode reports only (fast mode measures a
# different workload), so it gates the tracked repo-root
# BENCH_throughput.json whenever that artifact is regenerated.
# NEUSPIN_BENCH_ROOT keeps the smoke's BENCH_throughput.json under
# target/ so the tracked repo-root artifact stays the full run's.
echo "==> exp_throughput smoke (NEUSPIN_BENCH_FAST=1)"
NEUSPIN_RESULTS=target/ci-results NEUSPIN_BENCH_ROOT=target/ci-results NEUSPIN_BENCH_FAST=1 \
    cargo run -q --release --offline -p neuspin-bench --bin exp_throughput
NEUSPIN_RESULTS=target/ci-results \
    cargo run -q --release --offline -p neuspin-bench --bin exp_throughput -- --check

# Telemetry gate: the disabled-telemetry kernel must stay within 2 % of
# the BENCH_throughput.json baseline the smoke above just wrote, and a
# fully traced predict_par must be bit-identical (predictions AND trace
# bytes) across 1/2/4-worker pools — both enforced by --check, along
# with the forward-plan metrics (plan_rebuilds_total, the scratch_bytes
# gauge, and the persistent-replica replica_syncs_total counter must
# all have fired during the instrumented run). --check also gates the
# serve-path lineage tax: flight-recorder event recording must stay
# within 2 % of an untraced closed-loop request. A second run under
# NEUSPIN_THREADS=4 then byte-compares the emitted JSONL trace across
# host thread configurations.
echo "==> exp_observe smoke (NEUSPIN_BENCH_FAST=1)"
NEUSPIN_RESULTS=target/ci-results NEUSPIN_BENCH_ROOT=target/ci-results NEUSPIN_BENCH_FAST=1 \
    cargo run -q --release --offline -p neuspin-bench --bin exp_observe
NEUSPIN_RESULTS=target/ci-results NEUSPIN_BENCH_ROOT=target/ci-results \
    cargo run -q --release --offline -p neuspin-bench --bin exp_observe -- --check
echo "==> exp_observe trace invariance (NEUSPIN_THREADS=4)"
NEUSPIN_THREADS=4 NEUSPIN_RESULTS=target/ci-results-t4 NEUSPIN_BENCH_ROOT=target/ci-results \
    NEUSPIN_BENCH_FAST=1 \
    cargo run -q --release --offline -p neuspin-bench --bin exp_observe
cmp target/ci-results/exp_observe_trace.jsonl target/ci-results-t4/exp_observe_trace.jsonl

# Lifetime campaign smoke: age three copies of one die (unmanaged /
# scrub-only / closed-loop) through the fast grid, then the JSON gate
# (degradation ≥ 10 pp unmanaged, closed-loop regression ≤ 2 pp).
echo "==> exp_lifetime smoke (NEUSPIN_BENCH_FAST=1)"
NEUSPIN_RESULTS=target/ci-results NEUSPIN_BENCH_ROOT=target/ci-results NEUSPIN_BENCH_FAST=1 \
    cargo run -q --release --offline -p neuspin-bench --bin exp_lifetime
NEUSPIN_RESULTS=target/ci-results NEUSPIN_BENCH_ROOT=target/ci-results \
    cargo run -q --release --offline -p neuspin-bench --bin exp_lifetime -- --check

# Lifetime trajectories must be bit-reproducible for any worker count:
# repeat the smoke with a forced 4-worker pool into a second directory
# and byte-compare both emitted JSON artifacts.
echo "==> exp_lifetime thread invariance (NEUSPIN_THREADS=4)"
NEUSPIN_THREADS=4 NEUSPIN_RESULTS=target/ci-results-t4 NEUSPIN_BENCH_ROOT=target/ci-results-t4 \
    NEUSPIN_BENCH_FAST=1 \
    cargo run -q --release --offline -p neuspin-bench --bin exp_lifetime
cmp target/ci-results/exp_lifetime.json target/ci-results-t4/exp_lifetime.json
cmp target/ci-results/BENCH_lifetime.json target/ci-results-t4/BENCH_lifetime.json

# Serving campaign smoke: a real TCP front door over a three-die
# fleet, one die aged to Abstain mid-traffic. --check gates the
# no-drop contract (every request answered 200), failover engagement,
# the degraded die's quiescence, p99 latency under budget, and the
# lineage layer: every 200 must carry an X-NeuSpin-Trace header whose
# die matches the body, the six per-stage waterfall histograms must
# count every answered request on the tuned bucket ladder, and the
# SLO tracker must report full availability with zero burn. No
# thread-invariance cmp here: batch composition is timing-dependent by
# design (the determinism contract is per-batch, covered by the
# serving integration tests).
echo "==> exp_serving smoke (NEUSPIN_BENCH_FAST=1)"
NEUSPIN_RESULTS=target/ci-results NEUSPIN_BENCH_ROOT=target/ci-results NEUSPIN_BENCH_FAST=1 \
    cargo run -q --release --offline -p neuspin-bench --bin exp_serving
NEUSPIN_RESULTS=target/ci-results NEUSPIN_BENCH_ROOT=target/ci-results \
    cargo run -q --release --offline -p neuspin-bench --bin exp_serving -- --check

# Chaos campaign smoke: deterministic fault injection (queue stalls,
# latency spikes, worker panics, malformed requests, weight bit-flips,
# die crash/restart) over three escalating stages, plus the checkpoint
# round-trip proof. --check gates request conservation under every
# fault, >=1 injection at each site, byte-equal restored outputs, and
# the flight-recorder lineage contract: every injected fault must be
# reconstructable (site, die, request ids, crash→BIST-gated restore
# pairing) from the dumped flight JSONL alone, with zero ring drops.
# The request driver is sequential and closed-loop, so the
# non-wall-clock report fields AND the flight dump are bit-reproducible
# for any worker count: byte-compare BENCH_chaos.json and the flight
# JSONL against a forced 4-thread run.
echo "==> exp_chaos smoke (NEUSPIN_BENCH_FAST=1)"
NEUSPIN_RESULTS=target/ci-results NEUSPIN_BENCH_ROOT=target/ci-results NEUSPIN_BENCH_FAST=1 \
    cargo run -q --release --offline -p neuspin-bench --bin exp_chaos
NEUSPIN_RESULTS=target/ci-results NEUSPIN_BENCH_ROOT=target/ci-results \
    cargo run -q --release --offline -p neuspin-bench --bin exp_chaos -- --check

echo "==> exp_chaos thread invariance (NEUSPIN_THREADS=4)"
NEUSPIN_THREADS=4 NEUSPIN_RESULTS=target/ci-results-t4 NEUSPIN_BENCH_ROOT=target/ci-results-t4 \
    NEUSPIN_BENCH_FAST=1 \
    cargo run -q --release --offline -p neuspin-bench --bin exp_chaos
cmp target/ci-results/BENCH_chaos.json target/ci-results-t4/BENCH_chaos.json
cmp target/ci-results/exp_chaos_flight.jsonl target/ci-results-t4/exp_chaos_flight.jsonl

echo "==> OK"
