#!/usr/bin/env sh
# Tier-1 verification for the NeuSpin workspace.
#
# The workspace is fully self-contained (every dependency is a path
# crate, including the vendored `rand` shim), so everything here runs
# with `--offline`: a network-less machine must produce the same green.
#
# Build and test are gating; clippy runs strict (`-D warnings`) because
# the tree is currently warning-free — keep it that way.

set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo clippy --workspace --all-targets --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> OK"
