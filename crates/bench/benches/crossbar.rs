//! Micro-benchmarks for the CIM substrate: crossbar programming and
//! matrix-vector products at several array sizes, dropout-module
//! sampling, arbiter selection.

use neuspin_bench::timing::{black_box, Harness};
use neuspin_cim::{Arbiter, Crossbar, CrossbarConfig, SpinDropModule};
use neuspin_device::VariedParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut h = Harness::new("crossbar");

    for &size in &[64usize, 128, 256] {
        let mut rng = StdRng::seed_from_u64(size as u64);
        let w: Vec<f32> = (0..size * size).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let mut xbar = Crossbar::program(&w, size, size, &CrossbarConfig::default(), &mut rng);
        let x: Vec<f32> = (0..size).map(|i| (i as f32 * 0.1).sin()).collect();
        h.bench(&format!("crossbar/matvec/{size}"), |b| {
            b.iter(|| black_box(xbar.matvec(black_box(&x), &mut rng)))
        });
    }

    let mut rng = StdRng::seed_from_u64(7);
    let w: Vec<f32> = (0..128 * 128).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
    h.bench("crossbar/program_128x128", |b| {
        b.iter(|| black_box(Crossbar::program(&w, 128, 128, &CrossbarConfig::default(), &mut rng)))
    });

    let mut rng = StdRng::seed_from_u64(9);
    let mut module = SpinDropModule::new(0.2, VariedParams::ideal(), &mut rng);
    h.bench("crossbar/dropout_module_sample", |b| b.iter(|| black_box(module.sample(&mut rng))));
    let mut arbiter = Arbiter::new(8, VariedParams::ideal(), &mut rng);
    h.bench("crossbar/arbiter_select_8", |b| b.iter(|| black_box(arbiter.select(&mut rng))));

    h.finish();
}
