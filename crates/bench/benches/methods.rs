//! Benchmarks across the method zoo: one stochastic hardware pass per
//! method (the per-pass cost whose T-fold repetition is the Table I
//! energy story), plus the analytic energy-estimate hot path.

use neuspin_bayes::Method;
use neuspin_bench::timing::{black_box, Harness};
use neuspin_core::{HardwareConfig, HardwareModel};
use neuspin_energy::{estimate_method_energy, NetworkSpec};
use neuspin_nn::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut h = Harness::new("methods");

    let arch = neuspin_bayes::ArchConfig { c1: 4, c2: 8, hidden: 32, ..Default::default() };
    let x = Tensor::from_fn(&[4, 1, 16, 16], |i| ((i * 13 % 31) as f32 / 15.5) - 1.0);
    for method in [
        Method::Deterministic,
        Method::SpinDrop,
        Method::SpatialSpinDrop,
        Method::SpinScaleDrop,
        Method::SubsetVi,
        Method::SpinBayes,
    ] {
        let mut rng = StdRng::seed_from_u64(11);
        let software = if method == Method::SpinBayes { Method::Deterministic } else { method };
        let mut model = neuspin_bayes::build_cnn(software, &arch, &mut rng);
        let config = HardwareConfig { passes: 1, ..HardwareConfig::default() };
        let mut hw = HardwareModel::compile(&mut model, method, &arch, &config, &mut rng);
        hw.calibrate(&x, 1, &mut rng);
        h.bench(&format!("methods/hw_pass/{method}"), |b| {
            b.iter(|| black_box(hw.forward(&x, true, &mut rng)))
        });
    }

    let spec = NetworkSpec::lenet_reference();
    h.bench("methods/energy_estimate_all", |b| {
        b.iter(|| {
            for method in Method::ALL {
                black_box(estimate_method_energy(&spec, method));
            }
        })
    });

    h.finish();
}
