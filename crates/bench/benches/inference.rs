//! Benchmarks of inference throughput: software forward,
//! hardware-in-the-loop forward, and full MC prediction.

use neuspin_bayes::{build_cnn, mc_predict, ArchConfig, Method};
use neuspin_bench::timing::{black_box, Harness};
use neuspin_core::{HardwareConfig, HardwareModel};
use neuspin_nn::{Mode, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arch() -> ArchConfig {
    ArchConfig::default()
}

fn batch() -> Tensor {
    Tensor::from_fn(&[8, 1, 16, 16], |i| ((i * 37 % 101) as f32 / 50.5) - 1.0)
}

fn main() {
    let mut h = Harness::new("inference");

    let mut rng = StdRng::seed_from_u64(1);
    let mut model = build_cnn(Method::SpinDrop, &arch(), &mut rng);
    let x = batch();
    h.bench("inference/software_forward_batch8", |b| {
        b.iter(|| black_box(model.forward(&x, Mode::Sample, &mut rng)))
    });

    let mut rng = StdRng::seed_from_u64(2);
    let mut model = build_cnn(Method::SpinDrop, &arch(), &mut rng);
    let config = HardwareConfig { passes: 4, ..HardwareConfig::default() };
    let mut hw = HardwareModel::compile(&mut model, Method::SpinDrop, &arch(), &config, &mut rng);
    let x = batch();
    hw.calibrate(&x, 1, &mut rng);
    h.bench("inference/hardware_forward_batch8", |b| {
        b.iter(|| black_box(hw.forward(&x, true, &mut rng)))
    });

    let mut rng = StdRng::seed_from_u64(3);
    let mut model = build_cnn(Method::SpinScaleDrop, &arch(), &mut rng);
    let x = batch();
    h.bench("inference/mc_predict_8passes_batch8", |b| {
        b.iter(|| black_box(mc_predict(&mut model, &x, 8, &mut rng)))
    });

    h.finish();
}
