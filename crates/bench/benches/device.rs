//! Criterion micro-benchmarks for the device substrate: switching-model
//! evaluation, RNG bit generation, calibration.

use criterion::{criterion_group, criterion_main, Criterion};
use neuspin_device::{Mtj, MtjParams, SpinRng, SwitchingModel, VariedParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_switching(c: &mut Criterion) {
    let model = SwitchingModel::from_params(&MtjParams::default());
    c.bench_function("device/switching_probability", |b| {
        b.iter(|| black_box(model.probability(black_box(38e-6), black_box(10e-9))))
    });
    c.bench_function("device/current_for_probability", |b| {
        b.iter(|| black_box(model.current_for_probability(black_box(0.3), 10e-9)))
    });
}

fn bench_mtj_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mtj = Mtj::nominal(MtjParams::default());
    c.bench_function("device/mtj_read_conductance", |b| {
        b.iter(|| black_box(mtj.read_conductance(&mut rng)))
    });
    let mut mtj2 = Mtj::nominal(MtjParams::default());
    c.bench_function("device/mtj_stochastic_pulse", |b| {
        b.iter(|| {
            let flipped = mtj2.apply_pulse(38e-6, 10e-9, &mut rng);
            mtj2.reset();
            black_box(flipped)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut spin = SpinRng::new(VariedParams::ideal(), &mut rng);
    spin.calibrate_nominal(0.5);
    c.bench_function("device/spinrng_bit", |b| b.iter(|| black_box(spin.next_bit(&mut rng))));

    c.bench_function("device/spinrng_closed_loop_calibration", |b| {
        b.iter(|| {
            let mut s = SpinRng::new(VariedParams::ideal(), &mut rng);
            black_box(s.calibrate_measured(0.3, 100, 0.02, 10, &mut rng))
        })
    });
}

criterion_group!(benches, bench_switching, bench_mtj_ops, bench_rng);
criterion_main!(benches);
