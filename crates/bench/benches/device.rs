//! Micro-benchmarks for the device substrate: switching-model
//! evaluation, RNG bit generation, calibration.

use neuspin_bench::timing::{black_box, Harness};
use neuspin_device::{Mtj, MtjParams, SpinRng, SwitchingModel, VariedParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut h = Harness::new("device");

    let model = SwitchingModel::from_params(&MtjParams::default());
    h.bench("device/switching_probability", |b| {
        b.iter(|| black_box(model.probability(black_box(38e-6), black_box(10e-9))))
    });
    h.bench("device/current_for_probability", |b| {
        b.iter(|| black_box(model.current_for_probability(black_box(0.3), 10e-9)))
    });

    let mut rng = StdRng::seed_from_u64(1);
    let mtj = Mtj::nominal(MtjParams::default());
    h.bench("device/mtj_read_conductance", |b| {
        b.iter(|| black_box(mtj.read_conductance(&mut rng)))
    });
    let mut mtj2 = Mtj::nominal(MtjParams::default());
    h.bench("device/mtj_stochastic_pulse", |b| {
        b.iter(|| {
            let flipped = mtj2.apply_pulse(38e-6, 10e-9, &mut rng);
            mtj2.reset();
            black_box(flipped)
        })
    });

    let mut rng = StdRng::seed_from_u64(2);
    let mut spin = SpinRng::new(VariedParams::ideal(), &mut rng);
    spin.calibrate_nominal(0.5);
    h.bench("device/spinrng_bit", |b| b.iter(|| black_box(spin.next_bit(&mut rng))));
    h.bench("device/spinrng_closed_loop_calibration", |b| {
        b.iter(|| {
            let mut s = SpinRng::new(VariedParams::ideal(), &mut rng);
            black_box(s.calibrate_measured(0.3, 100, 0.02, 10, &mut rng))
        })
    });

    h.finish();
}
