//! A minimal built-in micro-benchmark harness (criterion replacement).
//!
//! The workspace cannot depend on crates.io, so the four bench targets
//! under `benches/` run on this small harness instead: per-bench
//! auto-calibrated batch sizes, median-of-batches reporting, and a
//! machine-readable JSON dump next to the human table — the same
//! results-file convention as the experiment binaries.
//!
//! Methodology: [`Bencher::iter`] first warms the closure up for a
//! fixed budget, sizes a batch from the observed rate so one batch
//! lasts ~10 ms, then times [`BATCHES`] batches — each as
//! [`SAMPLES_PER_BATCH`] equal chunks, so the statistics run over
//! `BATCHES × SAMPLES_PER_BATCH` per-iteration samples rather than ten
//! batch means (ten samples made nearest-rank p95 and p99 the same
//! element, always). The headline number is the median sample; min and
//! mean ride along. `NEUSPIN_BENCH_FAST=1` shrinks the budgets ~20×
//! for smoke runs and CI.
//!
//! ```no_run
//! use neuspin_bench::timing::{black_box, Harness};
//!
//! let mut h = Harness::new("demo");
//! h.bench("demo/add", |b| b.iter(|| black_box(2u64 + 2)));
//! h.finish();
//! ```

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of timed batches per benchmark.
pub const BATCHES: usize = 10;

/// Timing samples taken per batch: each batch runs as this many equal
/// chunks, each chunk contributing one per-iteration sample. With
/// `BATCHES × SAMPLES_PER_BATCH = 100` samples, nearest-rank p95 and
/// p99 resolve to distinct observations (over 10 batch means they
/// collapsed to the same element).
pub const SAMPLES_PER_BATCH: usize = 10;

/// Upper bound on a calibrated batch size. One noisy warm-up sample of
/// an ultra-fast closure can suggest a batch of billions of iterations;
/// the clamp keeps a single batch bounded regardless.
pub const MAX_BATCH: u64 = 1 << 24;

/// Extra timed budget granted to slow closures, in units of the target
/// batch duration (see the slow path in [`Bencher::iter`]).
const SLOW_BUDGET_BATCHES: usize = 4;

/// Runs closures under the timer for one named benchmark.
pub struct Bencher {
    warmup: Duration,
    target_batch: Duration,
    batch_size: u64,
    samples: Vec<f64>,
}

impl Bencher {
    /// Warms up, calibrates the batch size, then times `f` over
    /// [`BATCHES`] batches.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warmup: run until the budget elapses, counting iterations.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target = self.target_batch.as_secs_f64();
        if warm_iters > 0 && per_iter >= target {
            // Slow closure: one call already overshoots the target
            // batch, so the calibrated size is 1 and the batch count is
            // the only remaining knob. Sizing BATCHES full batches off
            // that single noisy warm-up sample made smoke runs take
            // ~11x one call; instead keep the warm-up measurement as a
            // sample and bound the extra timed calls by a fixed time
            // budget.
            self.batch_size = 1;
            self.samples.push(per_iter);
            let extra = ((SLOW_BUDGET_BATCHES as f64 * target / per_iter) as usize)
                .clamp(1, BATCHES - 1);
            for _ in 0..extra {
                let start = Instant::now();
                black_box(f());
                self.samples.push(start.elapsed().as_secs_f64());
            }
            return;
        }
        // Size a chunk (one timing sample) at 1/SAMPLES_PER_BATCH of
        // the target batch; a batch is SAMPLES_PER_BATCH back-to-back
        // chunks, so total timed work matches the old one-timer-per-
        // batch scheme while percentiles see 10× the samples.
        let chunk_target = target / SAMPLES_PER_BATCH as f64;
        let chunk = ((chunk_target / per_iter.max(1e-12)) as u64).clamp(1, MAX_BATCH);
        self.batch_size = chunk;
        for _ in 0..BATCHES * SAMPLES_PER_BATCH {
            let start = Instant::now();
            for _ in 0..chunk {
                black_box(f());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed / chunk as f64);
        }
    }
}

/// One benchmark's summary statistics (per-iteration, nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Iterations per timing sample (one chunk under the timer).
    pub batch_size: u64,
    /// Number of timing samples the statistics are computed over.
    pub batches: usize,
    /// Median per-iteration sample (ns/iter) — the headline number.
    pub median_ns: f64,
    /// Mean over all samples (ns/iter).
    pub mean_ns: f64,
    /// Fastest sample (ns/iter).
    pub min_ns: f64,
    /// 50th percentile of per-iteration samples (ns/iter, nearest-rank).
    pub p50_ns: f64,
    /// 95th percentile of per-iteration samples (ns/iter, nearest-rank).
    pub p95_ns: f64,
    /// 99th percentile of per-iteration samples (ns/iter, nearest-rank).
    pub p99_ns: f64,
}

neuspin_core::impl_to_json!(Measurement {
    name,
    batch_size,
    batches,
    median_ns,
    mean_ns,
    min_ns,
    p50_ns,
    p95_ns,
    p99_ns,
});

/// Nearest-rank percentile of an ascending-sorted sample
/// (`q` in `[0, 100]`): the smallest element such that at least
/// `q`% of the sample is ≤ it.
///
/// # Panics
///
/// Panics if `sorted_ns` is empty or `q` is outside `[0, 100]`.
pub fn percentile(sorted_ns: &[f64], q: f64) -> f64 {
    assert!(!sorted_ns.is_empty(), "percentile of an empty sample");
    assert!((0.0..=100.0).contains(&q), "q must be in [0, 100], got {q}");
    let n = sorted_ns.len();
    let rank = ((q / 100.0) * n as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, n) - 1]
}

/// A named collection of benchmarks: times each, prints a table, and
/// writes `results/bench_<suite>.json`.
pub struct Harness {
    suite: String,
    warmup: Duration,
    target_batch: Duration,
    results: Vec<Measurement>,
}

impl Harness {
    /// Creates a harness for the named suite.
    pub fn new(suite: impl Into<String>) -> Self {
        let suite = suite.into();
        let fast = std::env::var("NEUSPIN_BENCH_FAST").map(|v| v == "1").unwrap_or(false);
        let (warmup, target_batch) = if fast {
            (Duration::from_micros(500), Duration::from_micros(500))
        } else {
            (Duration::from_millis(10), Duration::from_millis(10))
        };
        println!("suite: {suite}");
        Self { suite, warmup, target_batch, results: Vec::new() }
    }

    /// Benchmarks one named closure.
    pub fn bench(&mut self, name: &str, run: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            warmup: self.warmup,
            target_batch: self.target_batch,
            batch_size: 1,
            samples: Vec::new(),
        };
        run(&mut b);
        let m = summarize(name, b);
        println!(
            "  {:<44} {:>12}/iter  (min {}, mean {}, {} x {} iters)",
            m.name,
            format_ns(m.median_ns),
            format_ns(m.min_ns),
            format_ns(m.mean_ns),
            m.batches,
            m.batch_size,
        );
        self.results.push(m);
    }

    /// Writes the JSON results file (`results/bench_<suite>.json`).
    pub fn finish(self) {
        crate::write_json(&format!("bench_{}", self.suite), &self.results);
    }

    /// Consumes the harness and returns its measurements without
    /// writing the suite file — for experiment binaries that embed the
    /// measurements in their own report.
    pub fn into_results(self) -> Vec<Measurement> {
        self.results
    }
}

fn summarize(name: &str, b: Bencher) -> Measurement {
    let mut per_iter_ns: Vec<f64> = b.samples.iter().map(|s| s * 1e9).collect();
    assert!(!per_iter_ns.is_empty(), "bench '{name}' never called Bencher::iter");
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median_ns = per_iter_ns[per_iter_ns.len() / 2];
    let mean_ns = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    Measurement {
        name: name.to_string(),
        batch_size: b.batch_size,
        batches: per_iter_ns.len(),
        median_ns,
        mean_ns,
        min_ns: per_iter_ns[0],
        p50_ns: percentile(&per_iter_ns, 50.0),
        p95_ns: percentile(&per_iter_ns, 95.0),
        p99_ns: percentile(&per_iter_ns, 99.0),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_statistics_are_ordered() {
        let b = Bencher {
            warmup: Duration::ZERO,
            target_batch: Duration::ZERO,
            batch_size: 4,
            samples: vec![3e-9, 1e-9, 2e-9],
        };
        let m = summarize("t", b);
        assert_eq!(m.batches, 3);
        assert!((m.min_ns - 1.0).abs() < 1e-9);
        assert!((m.median_ns - 2.0).abs() < 1e-9);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.mean_ns + 1e-9);
        // Percentiles bracket the distribution and are ordered.
        assert!((m.p50_ns - 2.0).abs() < 1e-9);
        assert!((m.p95_ns - 3.0).abs() < 1e-9);
        assert!((m.p99_ns - 3.0).abs() < 1e-9);
        assert!(m.p50_ns <= m.p95_ns && m.p95_ns <= m.p99_ns);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 95.0), 95.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        // Small samples: every percentile is a real observation.
        let small = [5.0, 7.0];
        assert_eq!(percentile(&small, 50.0), 5.0);
        assert_eq!(percentile(&small, 99.0), 7.0);
        assert_eq!(percentile(&[42.0], 95.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
    }

    #[test]
    fn slow_closure_runs_bounded_batches() {
        // A 5 ms closure against a 1 ms target: the warm-up call is the
        // first sample and the extra-batch budget clamps to one more
        // call — 2 total, not the 1 + BATCHES the old sizing ran.
        let calls = std::cell::Cell::new(0u32);
        let mut b = Bencher {
            warmup: Duration::from_millis(1),
            target_batch: Duration::from_millis(1),
            batch_size: 1,
            samples: Vec::new(),
        };
        b.iter(|| {
            calls.set(calls.get() + 1);
            std::thread::sleep(Duration::from_millis(5));
        });
        assert_eq!(calls.get(), 2);
        assert_eq!(b.batch_size, 1);
        assert_eq!(b.samples.len(), 2);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn fast_closure_batch_size_is_clamped() {
        // A huge target batch against a ~ns closure would calibrate to
        // billions of iterations without the clamp.
        let mut b = Bencher {
            warmup: Duration::from_micros(10),
            target_batch: Duration::from_secs(3600),
            batch_size: 1,
            samples: Vec::new(),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            black_box(acc)
        });
        assert_eq!(b.batch_size, MAX_BATCH);
        assert_eq!(b.samples.len(), BATCHES * SAMPLES_PER_BATCH);
    }

    #[test]
    fn percentiles_resolve_distinct_tail_samples() {
        // The regression this guards: with only 10 batch-mean samples,
        // nearest-rank p95 and p99 were always the same element. Over
        // a 100-sample spread they must pick distinct tail ranks.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 * 1e-9).collect();
        let b = Bencher {
            warmup: Duration::ZERO,
            target_batch: Duration::ZERO,
            batch_size: 1,
            samples,
        };
        let m = summarize("tail", b);
        assert_eq!(m.batches, 100);
        assert!((m.p95_ns - 95.0).abs() < 1e-9);
        assert!((m.p99_ns - 99.0).abs() < 1e-9);
        assert!(m.p95_ns < m.p99_ns, "tail percentiles must not collapse");
    }

    #[test]
    fn bencher_produces_samples_fast() {
        std::env::set_var("NEUSPIN_BENCH_FAST", "1");
        let mut h = Harness::new("selftest");
        h.bench("selftest/noop", |b| b.iter(|| black_box(1u64 + 1)));
        assert_eq!(h.results.len(), 1);
        assert!(h.results[0].median_ns >= 0.0);
        assert!(h.results[0].batch_size >= 1);
    }
}
