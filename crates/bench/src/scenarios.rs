//! Shared hardware-severity scenario builders.
//!
//! The reliability campaigns (`exp_selfheal`, `exp_faultmgmt`,
//! `exp_lifetime`) stress the same physical knobs — programming
//! variation, manufacturing defects, post-calibration drift — and for
//! years-of-service studies the same defect-rate → [`DefectRates`] and
//! defect-rate → [`HardwareConfig`] recipes. This module is the single
//! place those recipes live, so the experiments agree on what
//! "defect rate 0.01" means.

use neuspin_core::{reliability_base, HardwareConfig, SweepKind};
use neuspin_device::DefectRates;

/// One named severity sweep: which non-ideality axis to stress and the
/// grid of severities to stress it at.
#[derive(Debug, Clone)]
pub struct SeverityScenario {
    /// Human-readable axis name (used in tables and JSON).
    pub name: &'static str,
    /// Which hardware knob the severity scales.
    pub kind: SweepKind,
    /// Severity grid, mildest first.
    pub severities: Vec<f64>,
}

/// The canonical three severity sweeps of the self-healing study
/// (§III-A4): programming-time variation, manufacturing defects, and
/// post-calibration common-mode drift.
pub fn severity_scenarios() -> Vec<SeverityScenario> {
    vec![
        SeverityScenario {
            name: "programming variation σ",
            kind: SweepKind::Variation,
            severities: vec![0.0, 0.05, 0.1, 0.15, 0.2, 0.3],
        },
        SeverityScenario {
            name: "defect rate",
            kind: SweepKind::Defects,
            severities: vec![0.0, 0.005, 0.01, 0.02, 0.05],
        },
        SeverityScenario {
            name: "post-calibration common-mode drift",
            kind: SweepKind::Drift,
            severities: vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
        },
    ]
}

/// Splits a total hard-fault rate evenly between shorts (stuck-on) and
/// opens (stuck-off) — the convention every fault campaign uses.
pub fn hard_fault_rates(rate: f64) -> DefectRates {
    DefectRates {
        short: rate / 2.0,
        open: rate / 2.0,
        ..DefectRates::none()
    }
}

/// The reliability-study hardware config with a given total hard-fault
/// rate, spare-column budget, and MC pass count, everything else at
/// [`reliability_base`] settings.
pub fn faulty_hardware_config(defect_rate: f64, spare_cols: usize, passes: usize) -> HardwareConfig {
    let base = reliability_base();
    HardwareConfig {
        crossbar: neuspin_cim::CrossbarConfig {
            defect_rates: hard_fault_rates(defect_rate),
            ..base.crossbar
        },
        spare_cols,
        passes,
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_cover_the_three_axes_in_increasing_severity() {
        let scenarios = severity_scenarios();
        assert_eq!(scenarios.len(), 3);
        let kinds: Vec<SweepKind> = scenarios.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![SweepKind::Variation, SweepKind::Defects, SweepKind::Drift]
        );
        for s in &scenarios {
            assert!(s.severities.windows(2).all(|w| w[0] < w[1]), "{} not sorted", s.name);
            assert_eq!(s.severities[0], 0.0, "{} must include the clean point", s.name);
        }
    }

    #[test]
    fn hard_faults_split_evenly_between_shorts_and_opens() {
        let rates = hard_fault_rates(0.02);
        assert_eq!(rates.short, 0.01);
        assert_eq!(rates.open, 0.01);
    }

    #[test]
    fn faulty_config_carries_rate_spares_and_passes() {
        let config = faulty_hardware_config(0.01, 4, 6);
        assert_eq!(config.crossbar.defect_rates.short, 0.005);
        assert_eq!(config.crossbar.defect_rates.open, 0.005);
        assert_eq!(config.spare_cols, 4);
        assert_eq!(config.passes, 6);
    }
}
