//! A counting global allocator for allocation-discipline gates.
//!
//! The zero-allocation claim behind the forward-plan engine (see
//! `neuspin_core::HardwareModel::forward_planned`) is load-bearing:
//! `exp_throughput --check` fails the build if the steady-state MC
//! hot path ever allocates again. That gate needs a way to *count*
//! heap allocations, so this crate installs a pass-through
//! [`System`] wrapper as the global allocator. Counting is off by
//! default (one relaxed atomic load per `malloc`, unmeasurable next
//! to the allocation itself) and enabled only inside
//! [`count_allocs`] windows.
//!
//! Accuracy contract: counts are exact for single-threaded windows
//! (the experiment binaries' measurement sections). Concurrent
//! threads allocating during a window are attributed to it — callers
//! measuring a zero floor must keep the window single-threaded.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Pass-through [`System`] allocator that counts allocation events
/// (alloc, alloc_zeroed, and growth reallocs) while armed.
pub struct CountingAllocator;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

#[inline]
fn tally() {
    if COUNTING.load(Ordering::Relaxed) {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        tally();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        tally();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc acquires memory just like an alloc; shrinks count
        // too — the hot path is not supposed to touch the heap at all.
        tally();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation counting armed and returns its result
/// plus the number of allocation events observed during the call.
///
/// Windows nest safely (the inner window leaves counting armed for
/// the outer one), but counts are only exact while the window is
/// single-threaded — see the module docs.
pub fn count_allocs<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let was_counting = COUNTING.swap(true, Ordering::SeqCst);
    let before = ALLOC_EVENTS.load(Ordering::SeqCst);
    let out = f();
    let after = ALLOC_EVENTS.load(Ordering::SeqCst);
    COUNTING.store(was_counting, Ordering::SeqCst);
    (out, after - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_vector_allocations() {
        let (v, n) = count_allocs(|| Vec::<u64>::with_capacity(1024));
        assert_eq!(v.capacity(), 1024);
        assert!(n >= 1, "a fresh 8 KiB vector must register at least one alloc");
    }

    #[test]
    fn counts_growth_reallocs() {
        let mut v: Vec<u64> = Vec::with_capacity(4);
        let (_, n) = count_allocs(|| {
            for i in 0..1024u64 {
                v.push(i);
            }
        });
        assert!(n >= 1, "growing 4 -> 1024 elements must register reallocs");
    }

    #[test]
    fn windows_are_differential_and_disarm() {
        // Each window reports a delta, not a lifetime total: a window
        // opened after previous ones still starts near zero (other
        // test threads may contribute a few events; they cannot
        // contribute the thousands a leaking total would).
        for _ in 0..8 {
            let _ = count_allocs(|| std::hint::black_box(vec![0u8; 512]));
        }
        let (_, n) = count_allocs(|| ());
        assert!(n < 1000, "an empty window must not inherit prior totals, saw {n}");
    }
}
