//! **LSTM time-series experiment** (§III-A4: inverted normalization
//! with affine dropout reduces RMSE by up to 46.7 % on LSTM-based
//! time-series prediction).
//!
//! Two models on the sine-mixture next-step prediction task:
//! * baseline: `LSTM → Linear`
//! * NeuSpin:  `LSTM → InvertedNorm(+affine dropout) → Linear`, with
//!   MC-averaged prediction.
//!
//! Both are evaluated clean and under in-field conductance drift —
//! the dominant CIM non-ideality for deployed recurrent models: a
//! *common-mode* multiplicative shift of all programmed conductances
//! (temperature / retention loss), plus mild per-weight variation.
//! The claim is about robustness of the prediction error.
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_lstm
//! ```

use neuspin_bayes::metrics::rmse;
use neuspin_bench::{write_json, Setup};
use neuspin_data::series;
use neuspin_device::stats::LogNormal;
use neuspin_nn::{mse, InvertedNorm, Linear, Lstm, Mode, Sequential, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const WINDOW: usize = 12;
const HIDDEN: usize = 16;

#[derive(Debug)]
struct LstmReport {
    scenario: String,
    baseline_rmse: f64,
    neuspin_rmse: f64,
    reduction_pct: f64,
}

neuspin_core::impl_to_json!(LstmReport { scenario, baseline_rmse, neuspin_rmse, reduction_pct });

fn build(invnorm: bool, rng: &mut StdRng) -> Sequential {
    let mut m = Sequential::new();
    m.push(Lstm::new(1, HIDDEN, rng));
    if invnorm {
        m.push(InvertedNorm::new(HIDDEN, 0.15));
    }
    m.push(Linear::new(HIDDEN, 1, rng));
    m
}

fn train(model: &mut Sequential, data: &series::SeriesDataset, epochs: usize, rng: &mut StdRng) {
    let mut opt = neuspin_nn::Adam::new(0.005);
    use neuspin_nn::Optimizer;
    let n = data.len();
    for _ in 0..epochs {
        let order = neuspin_nn::shuffled_indices(n, rng);
        for chunk in order.chunks(32) {
            let (x, y) = data.gather(chunk);
            model.zero_grad();
            let pred = model.forward(&x, Mode::Train, rng);
            let (_, grad) = mse(&pred, &y);
            model.backward(&grad);
            opt.step(model);
        }
    }
}

/// In-field conductance drift: a global factor on every programmed
/// weight (common-mode temperature/retention shift) plus mild
/// independent lognormal per-cell variation.
fn apply_drift(model: &mut Sequential, global: f32, sigma: f64, rng: &mut StdRng) {
    let dist = LogNormal::from_median_sigma(1.0, sigma.max(1e-9));
    model.visit_params(&mut |_, p| {
        for i in 0..p.value.len() {
            p.value[i] *= global * dist.sample(rng) as f32;
        }
    });
}

fn eval_rmse(
    model: &mut Sequential,
    data: &series::SeriesDataset,
    mc_passes: usize,
    rng: &mut StdRng,
) -> f64 {
    let idx: Vec<usize> = (0..data.len()).collect();
    let (x, y) = data.gather(&idx);
    if mc_passes <= 1 {
        let pred = model.forward(&x, Mode::Eval, rng);
        rmse(&pred, &y)
    } else {
        let mut acc = Tensor::zeros(&[data.len(), 1]);
        for _ in 0..mc_passes {
            let pred = model.forward(&x, Mode::Sample, rng);
            acc.axpy(1.0, &pred);
        }
        acc.scale_in_place(1.0 / mc_passes as f32);
        rmse(&acc, &y)
    }
}

fn main() {
    let setup = Setup::from_env();
    let quick = setup.epochs < 5;
    let epochs = if quick { 10 } else { 40 };
    println!("== LSTM time-series prediction: inverted norm + affine dropout ==\n");

    let mut rng = StdRng::seed_from_u64(setup.seed);
    let train_data = series::dataset(1_500, WINDOW, 0.05, &mut rng);
    let test_data = series::dataset(400, WINDOW, 0.05, &mut rng);

    eprintln!("training baseline LSTM ...");
    let mut baseline = build(false, &mut rng);
    train(&mut baseline, &train_data, epochs, &mut rng);
    eprintln!("training LSTM + InvertedNorm(+affine dropout) ...");
    let mut neuspin = build(true, &mut rng);
    train(&mut neuspin, &train_data, epochs, &mut rng);

    let mut reports = Vec::new();
    println!("{:<34} {:>12} {:>12} {:>10}", "scenario", "baseline", "NeuSpin", "reduction");
    for (scenario, global, sigma) in [
        ("clean", 1.0f32, 0.0),
        ("drift ×0.85", 0.85, 0.0),
        ("drift ×0.75 + variation σ=0.03", 0.75, 0.03),
        ("drift ×0.60 + variation σ=0.05", 0.60, 0.05),
    ] {
        // Fresh drifted copies per scenario (same trained weights).
        let state_b = baseline.state_dict();
        let state_n = neuspin.state_dict();
        let mut b = build(false, &mut rng);
        b.load_state_dict(&state_b);
        let mut n = build(true, &mut rng);
        n.load_state_dict(&state_n);
        if global != 1.0 || sigma > 0.0 {
            let mut r1 = StdRng::seed_from_u64(setup.seed ^ 0xD21F7);
            apply_drift(&mut b, global, sigma, &mut r1);
            let mut r2 = StdRng::seed_from_u64(setup.seed ^ 0xD21F7);
            apply_drift(&mut n, global, sigma, &mut r2);
        }
        let mut r = StdRng::seed_from_u64(setup.seed ^ 99);
        let rb = eval_rmse(&mut b, &test_data, 1, &mut r);
        let rn = eval_rmse(&mut n, &test_data, 16, &mut r);
        let reduction = 100.0 * (rb - rn) / rb;
        println!("{scenario:<34} {rb:>12.4} {rn:>12.4} {reduction:>+9.1}%");
        reports.push(LstmReport {
            scenario: scenario.to_string(),
            baseline_rmse: rb,
            neuspin_rmse: rn,
            reduction_pct: reduction,
        });
    }

    println!("\n→ common-mode conductance drift rescales the LSTM's hidden code;");
    println!("  the unprotected readout mis-scales its prediction, while the");
    println!("  inverted norm re-whitens each sample before the readout and MC");
    println!("  averaging smooths the residual — cutting RMSE under drift");
    println!("  (paper: up to 46.7 % RMSE reduction).");

    write_json("exp_lstm", &reports);
}
