//! **Bayesian sub-set parameter inference experiment** (§III-B1):
//!
//! * storage memory vs traditional Bayesian methods (paper: 158.7×),
//! * stochastic-sampling power vs full VI (paper: up to 70×),
//! * NLL increase under dataset shift (the uncertainty-quality probe).
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_subset_vi
//! ```

use neuspin_bayes::{mc_predict, Method};
use neuspin_bench::{write_json, Setup};
use neuspin_data::corrupt::{corrupt_dataset, Corruption};
use neuspin_energy::memory::{memory_footprint, traditional_baselines};
use neuspin_energy::{estimate_method_energy, EnergyModel, NetworkSpec};
use neuspin_nn::nll;

#[derive(Debug)]
struct SubsetViReport {
    memory_kb: Vec<(String, f64)>,
    memory_ratio_vs_full_vi: f64,
    memory_ratio_vs_ensemble10: f64,
    sampling_power_ratio_vs_full_vi: f64,
    nll_by_shift: Vec<(String, f64)>,
    accuracy: f64,
}

neuspin_core::impl_to_json!(SubsetViReport { memory_kb, memory_ratio_vs_full_vi, memory_ratio_vs_ensemble10, sampling_power_ratio_vs_full_vi, nll_by_shift, accuracy });

fn main() {
    let setup = Setup::from_env();
    println!("== Bayesian sub-set parameter inference: cost and calibration ==\n");

    // ---------- memory ----------
    let spec = NetworkSpec::lenet_reference();
    let subset = memory_footprint(&spec, Method::SubsetVi);
    let (full_vi, ensemble10, fp32_dropout) = traditional_baselines(&spec);
    let to_kb = |bits: u64| bits as f64 / 8.0 / 1024.0;

    println!("-- storage on {} ({} weights) --", spec.name, spec.weights());
    let memory_rows = vec![
        ("sub-set VI (binary W + scale dist.)".to_string(), subset.kilobytes()),
        ("full VI, FP32 (μ,σ per weight)".to_string(), to_kb(full_vi)),
        ("deep ensemble ×10, FP32".to_string(), to_kb(ensemble10)),
        ("MC-Dropout, FP32".to_string(), to_kb(fp32_dropout)),
    ];
    for (name, kb) in &memory_rows {
        println!("  {name:<38} {kb:>10.1} KiB");
    }
    let ratio_vi = full_vi as f64 / subset.total_bits() as f64;
    let ratio_ens = ensemble10 as f64 / subset.total_bits() as f64;
    println!("\n  vs full VI:        {ratio_vi:.1}×");
    println!("  vs ensemble-10:    {ratio_ens:.1}×   (paper: 158.7× vs traditional)");

    // ---------- sampling power ----------
    // Full VI draws one gaussian per *weight* per pass; sub-set VI one
    // per scale entry. Power ratio at equal pass rate follows the
    // RNG-bit ratio (4 bits per gaussian in both cases).
    let model = EnergyModel::default();
    let weights = spec.weights() as f64;
    let scales = spec.channels() as f64;
    let full_vi_rng_energy = weights * 4.0 * model.rng_bit;
    let subset_rng_energy = scales * 4.0 * model.rng_bit;
    let est = estimate_method_energy(&spec, Method::SubsetVi);
    let power_ratio = full_vi_rng_energy / subset_rng_energy;
    println!("\n-- per-pass stochastic sampling --");
    println!("  full VI:    {} gaussians → {:.2} µJ", spec.weights(), full_vi_rng_energy * 1e6);
    println!("  sub-set VI: {} gaussians → {:.4} µJ", spec.channels(), subset_rng_energy * 1e6);
    println!("  reduction:  {power_ratio:.0}×   (paper: up to 70× lower power)");
    println!("  total sub-set VI inference estimate: {} / image", est.per_image);

    // ---------- NLL under dataset shift ----------
    println!("\n-- NLL under dataset shift (severity ↑ ⇒ NLL ↑) --");
    let (train, _calib, test) = setup.datasets();
    eprintln!("training SubsetVi ...");
    let mut model_vi = setup.train(Method::SubsetVi, &train);
    let mut nll_rows = Vec::new();
    let mut accuracy = 0.0;
    for severity in 0..=4u8 {
        let mut r = setup.rng(70 + severity as u64);
        let data = if severity == 0 {
            test.clone()
        } else {
            corrupt_dataset(&test, Corruption::GaussianNoise, severity, &mut r)
        };
        let pred = mc_predict(&mut model_vi, &data.inputs, setup.passes, &mut r);
        if severity == 0 {
            accuracy = pred.accuracy(&data.labels);
        }
        let value = nll(&pred.mean_probs, &data.labels) as f64;
        println!("  shift severity {severity}: NLL {value:.3}");
        nll_rows.push((format!("severity-{severity}"), value));
    }
    println!("\n  clean MC accuracy: {:.2}%", 100.0 * accuracy);
    let monotone = nll_rows.windows(2).filter(|w| w[1].1 >= w[0].1).count();
    println!(
        "  NLL rises in {monotone}/{} shift steps — the model's uncertainty tracks the shift",
        nll_rows.len() - 1
    );

    write_json(
        "exp_subset_vi",
        &SubsetViReport {
            memory_kb: memory_rows,
            memory_ratio_vs_full_vi: ratio_vi,
            memory_ratio_vs_ensemble10: ratio_ens,
            sampling_power_ratio_vs_full_vi: power_ratio,
            nll_by_shift: nll_rows,
            accuracy,
        },
    );
}
