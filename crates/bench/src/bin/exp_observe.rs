//! **Observability overhead + determinism gate**: runs the PR-3
//! throughput CNN under the unified telemetry layer and proves the two
//! contracts the layer makes:
//!
//! 1. **Disabled telemetry is free (≤ 2 %).** The kernel micro-bench is
//!    re-timed with telemetry off and compared against the
//!    `BENCH_throughput.json` baseline the untelemetered binary wrote
//!    (like-for-like: the comparison is skipped when the baseline was
//!    recorded in a different fast/full mode). Override the tolerance
//!    with `NEUSPIN_OBSERVE_TOL` (default `0.02`).
//! 2. **Tracing is deterministic.** A fully traced `predict_par` is run
//!    on 1/2/4-worker pools: the `Predictive` must be bit-identical
//!    *and* the emitted JSONL trace must byte-compare across pools
//!    (per-thread buffers merged in pass order; no wall-clock data in
//!    the trace).
//!
//! 3. **Request lineage is cheap (≤ 2 %).** A sequential closed-loop
//!    serve workload is timed under the standard metrics registry with
//!    the flight-recorder lineage ring on vs off, so the delta is the
//!    per-request cost of structured event recording; the
//!    traced/untraced ratio shares the `NEUSPIN_OBSERVE_TOL` tolerance
//!    and re-measures on noisy hosts.
//!
//! On top of the gates it reports the enabled-path cost (metrics-only
//! and metrics+trace overhead ratios over a disabled run), span counts,
//! the metrics registry snapshot (histograms included), and a
//! Prometheus text exposition.
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_observe
//! NEUSPIN_BENCH_FAST=1 cargo run --release -p neuspin-bench --bin exp_observe
//! cargo run --release -p neuspin-bench --bin exp_observe -- --check
//! ```
//!
//! Artifacts: `results/exp_observe.json`, `results/exp_observe_trace.jsonl`,
//! `results/exp_observe_prometheus.txt`, and `BENCH_observe.json` at the
//! workspace root (override with `NEUSPIN_BENCH_ROOT`).

use neuspin_bayes::{build_cnn, ArchConfig, Method, Predictive};
use neuspin_bench::{results_dir, write_json, Setup};
use neuspin_cim::{BistConfig, Crossbar};
use neuspin_core::json::{self, ToJson};
use neuspin_core::serve::client;
use neuspin_core::telemetry::{self, MetricsSnapshot};
use neuspin_core::{
    flight, serve, HardwareConfig, HardwareModel, ReplicaBank, ServeConfig, Supervisor,
    SupervisorConfig, ThreadPool,
};
use neuspin_data::digits::dataset;
use neuspin_device::DefectRates;
use neuspin_nn::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Matches the MC seed of `exp_throughput` so traces describe the same
/// inference workload the throughput baseline measured.
const PREDICT_SEED: u64 = 0x7457_0001;

/// Default relative tolerance of the disabled-telemetry overhead gate.
const DEFAULT_TOL: f64 = 0.02;

#[derive(Debug)]
struct Report {
    host_threads: f64,
    fast_mode: f64,
    /// Row-major kernel, telemetry fully disabled (ns per call).
    kernel_disabled_ns_per_call: f64,
    /// `rowmajor_ns_per_call` read from BENCH_throughput.json (0 when
    /// absent or recorded in a different fast/full mode).
    baseline_rowmajor_ns_per_call: f64,
    /// 1 when a like-for-like baseline was found, else 0.
    baseline_found: f64,
    /// disabled / baseline (1.0 when no comparable baseline).
    kernel_overhead_vs_baseline: f64,
    /// Fully traced `predict_par` bit-identical across 1/2/4 workers.
    bit_identical: f64,
    /// Emitted JSONL trace byte-identical across 1/2/4 workers.
    trace_identical: f64,
    /// `predict_par` ns with telemetry off / metrics only / full trace.
    mc_off_ns: f64,
    mc_metrics_ns: f64,
    mc_trace_ns: f64,
    /// metrics-only and metrics+trace cost over the disabled run.
    metrics_overhead_ratio: f64,
    trace_overhead_ratio: f64,
    /// Spans closed during the instrumented reference run.
    span_total: f64,
    /// Forward-plan metrics observed by the instrumented run: a
    /// batch-shape change must bump the `plan_rebuilds_total` counter
    /// and export the arena size through the `scratch_bytes` gauge,
    /// and the persistent-replica engine must count its delta resync
    /// in `replica_syncs_total`. All three are `--check`-gated.
    plan_rebuilds_total: f64,
    replica_syncs_total: f64,
    scratch_bytes_gauge: f64,
    /// Serve path, ns per closed-loop request: lineage layer off / on.
    serve_untraced_ns_per_req: f64,
    serve_traced_ns_per_req: f64,
    /// traced / untraced — gated ≤ 1 + NEUSPIN_OBSERVE_TOL by --check.
    serve_trace_overhead_ratio: f64,
    /// Trace events in the emitted JSONL (one per line).
    trace_events: f64,
    trace_bytes: f64,
    /// Registry snapshot of the instrumented reference run (counters,
    /// gauges, histogram summaries, device-op rollup).
    metrics: MetricsSnapshot,
}

neuspin_core::impl_to_json!(Report {
    host_threads,
    fast_mode,
    kernel_disabled_ns_per_call,
    baseline_rowmajor_ns_per_call,
    baseline_found,
    kernel_overhead_vs_baseline,
    bit_identical,
    trace_identical,
    mc_off_ns,
    mc_metrics_ns,
    mc_trace_ns,
    metrics_overhead_ratio,
    trace_overhead_ratio,
    span_total,
    plan_rebuilds_total,
    replica_syncs_total,
    scratch_bytes_gauge,
    serve_untraced_ns_per_req,
    serve_traced_ns_per_req,
    serve_trace_overhead_ratio,
    trace_events,
    trace_bytes,
    metrics,
});

fn fast_mode() -> bool {
    std::env::var("NEUSPIN_BENCH_FAST").map(|v| v == "1").unwrap_or(false)
}

fn overhead_tolerance() -> f64 {
    std::env::var("NEUSPIN_OBSERVE_TOL")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 0.0)
        .unwrap_or(DEFAULT_TOL)
}

/// Best-of-`reps` wall time of `calls` back-to-back invocations, as
/// nanoseconds per call (the `exp_throughput` timer).
fn time_ns_per_call(reps: usize, calls: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..calls {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best * 1e9 / calls as f64
}

/// Re-times the `exp_throughput` kernel micro-bench — same array, same
/// seeds, same remap, same timer — with telemetry fully disabled. More
/// best-of reps than the baseline run, so on a quiet host the result
/// can only be at least as tight as the baseline's.
fn kernel_disabled_ns(fast: bool) -> f64 {
    let (rows, cols) = if fast { (96, 48) } else { (256, 64) };
    let config = neuspin_cim::CrossbarConfig {
        defect_rates: DefectRates { short: 0.005, open: 0.005, ..DefectRates::none() },
        read_noise: 0.05,
        adc_bits: Some(6),
        ir_drop: 0.05,
        ..Default::default()
    };
    let weights: Vec<f32> =
        (0..rows * cols).map(|i| if (i * 7) % 3 == 0 { 1.0 } else { -1.0 }).collect();
    let mut rng = StdRng::seed_from_u64(0x7412_0001);
    let mut xbar = Crossbar::program(&weights, rows, cols, &config, &mut rng);
    xbar.apply_remap(
        (0..rows).map(|i| (i + 11) % rows).collect(),
        (0..cols).map(|i| (i + 3) % cols).collect(),
    );
    let input: Vec<f32> = (0..rows).map(|i| ((i * 5) % 9) as f32 / 4.0 - 1.0).collect();

    let (reps, calls) = if fast { (6, 100) } else { (10, 400) };
    xbar.set_reference_kernel(false);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..8 {
        black_box(xbar.matvec(&input, &mut rng)); // cache warmup, untimed
    }
    time_ns_per_call(reps, calls, || {
        black_box(xbar.matvec(&input, &mut rng));
    })
}

/// A minimal commissioned die for the serve-path overhead probe: ideal
/// crossbar, tiny arch — the point is the per-request observability
/// cost, not the compute.
fn serve_die(seed: u64) -> Supervisor {
    const SIDE: usize = 8;
    let arch =
        ArchConfig { c1: 2, c2: 4, hidden: 16, classes: 4, side: SIDE, ..ArchConfig::default() };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sw = build_cnn(Method::SpinDrop, &arch, &mut rng);
    let config = HardwareConfig {
        crossbar: neuspin_cim::CrossbarConfig::ideal(),
        passes: 3,
        ..HardwareConfig::default()
    };
    let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &arch, &config, &mut rng);
    hw.enable_aging(&neuspin_device::AgingConfig { seed: seed ^ 0xA9, ..Default::default() });
    // Generous monitor slack + high coverage: the synthetic probe
    // traffic must not trip the drift detectors mid-measurement.
    let health = neuspin_core::HealthConfig {
        entropy_slack: 4.0,
        margin_slack: 4.0,
        ..neuspin_core::HealthConfig::default()
    };
    let mut sup = Supervisor::new(
        hw,
        SupervisorConfig { seed, coverage: 0.98, health, ..SupervisorConfig::default() },
    );
    let calib = Tensor::from_fn(&[32, 1, SIDE, SIDE], |i| ((i * 13 % 97) as f32 / 97.0) - 0.5);
    let monitor = Tensor::from_fn(&[8, 1, SIDE, SIDE], |i| ((i * 7 % 89) as f32 / 89.0) - 0.5);
    sup.commission(calib, &monitor);
    sup
}

/// Wall time per request of a sequential closed-loop serve workload.
/// Both sides run under the standard metrics registry (the production
/// posture every serving campaign uses — its cost is reported
/// separately by `metrics_overhead_ratio`); `traced` additionally turns
/// on the flight-recorder lineage ring, so the delta is exactly what
/// per-request event recording costs. A fresh identically-seeded fleet
/// per measurement keeps the compute byte-identical.
fn serve_ns_per_request(traced: bool, n: usize) -> f64 {
    const SIDE: usize = 8;
    telemetry::set_enabled(true, false);
    telemetry::reset();
    flight::reset();
    if traced {
        flight::set_capacity(8192);
        flight::set_enabled(true);
    } else {
        flight::set_enabled(false);
    }
    let fleet = neuspin_core::DieFleet::new(vec![serve_die(0x0B5E_0001)]);
    let config = ServeConfig {
        input_shape: vec![1, SIDE, SIDE],
        request_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let mut handle = serve(fleet, config).expect("bind serving socket");
    let addr = handle.addr();
    let timeout = Duration::from_secs(10);
    let sample = |tag: usize| -> Vec<f32> {
        (0..SIDE * SIDE).map(|i| (((i * 31 + tag * 131) % 83) as f32 / 83.0) - 0.5).collect()
    };
    let inputs: Vec<Vec<f32>> = (0..n + 4).map(sample).collect();
    for input in &inputs[n..] {
        let _ = client::predict(addr, input, timeout); // warmup, untimed
    }
    let start = Instant::now();
    for input in &inputs[..n] {
        let resp = client::predict(addr, input, timeout).expect("serve transport");
        assert_eq!(resp.status, 200, "overhead probe must serve cleanly: {}", resp.text());
    }
    let elapsed = start.elapsed().as_secs_f64();
    handle.shutdown(Duration::from_secs(10));
    telemetry::set_enabled(false, false);
    telemetry::reset();
    flight::set_enabled(false);
    flight::reset();
    elapsed * 1e9 / n as f64
}

/// Reads the like-for-like kernel baseline out of BENCH_throughput.json
/// under `NEUSPIN_BENCH_ROOT`. Returns `None` when the file is absent,
/// malformed, or was recorded in the other fast/full mode.
fn read_baseline(fast: bool) -> Option<f64> {
    let root = std::env::var("NEUSPIN_BENCH_ROOT").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&root).join("BENCH_throughput.json");
    let value = json::parse(&std::fs::read_to_string(&path).ok()?).ok()?;
    let baseline_fast = value.get("fast_mode").and_then(json::Json::as_f64)?;
    if (baseline_fast == 1.0) != fast {
        eprintln!(
            "note: {} was recorded in {} mode, this run is {} — overhead gate skipped",
            path.display(),
            if baseline_fast == 1.0 { "fast" } else { "full" },
            if fast { "fast" } else { "full" },
        );
        return None;
    }
    let kernel = value.get("kernel").and_then(json::Json::as_arr)?;
    let ns = kernel.first()?.get("rowmajor_ns_per_call").and_then(json::Json::as_f64)?;
    (ns.is_finite() && ns > 0.0).then_some(ns)
}

/// The throughput CNN: identical setup to `exp_throughput`'s MC model.
fn build_model(fast: bool) -> (HardwareModel, neuspin_nn::Tensor, Setup) {
    let setup = if fast {
        Setup {
            arch: ArchConfig { c1: 16, c2: 32, hidden: 128, ..ArchConfig::default() },
            epochs: 1,
            train_images: 256,
            test_images: 64,
            calib_images: 32,
            passes: 6,
            ..Setup::quick()
        }
    } else {
        Setup {
            arch: ArchConfig { c1: 32, c2: 64, hidden: 256, ..ArchConfig::default() },
            epochs: 1,
            passes: 12,
            ..Setup::quick()
        }
    };
    let batch = if fast { 8 } else { 32 };
    let (train, calib, _test) = setup.datasets();
    eprintln!("training SpinDrop backbone ...");
    let mut model = setup.train(Method::SpinDrop, &train);
    let hw_config = HardwareConfig {
        crossbar: neuspin_cim::CrossbarConfig {
            defect_rates: DefectRates { short: 0.005, open: 0.005, ..DefectRates::none() },
            read_noise: 0.05,
            adc_bits: Some(6),
            ir_drop: 0.05,
            ..neuspin_core::reliability_base().crossbar
        },
        spare_cols: 4,
        passes: setup.passes,
        ..neuspin_core::reliability_base()
    };
    let mut hw = HardwareModel::compile(
        &mut model,
        Method::SpinDrop,
        &setup.arch,
        &hw_config,
        &mut setup.rng(0x7457),
    );
    hw.fault_management(&BistConfig::default(), &mut setup.rng(0x7458));
    hw.calibrate(&calib.inputs, 2, &mut setup.rng(0x7459));
    let inputs = dataset(batch, &setup.style, &mut setup.rng(0x7460 + batch as u64)).inputs;
    (hw, inputs, setup)
}

fn finite_num(obj: &json::Json, key: &str) -> Result<f64, String> {
    match obj.get(key).and_then(json::Json::as_f64) {
        Some(v) if v.is_finite() => Ok(v),
        Some(v) => Err(format!("key {key} is non-finite ({v})")),
        None => Err(format!("missing numeric key {key}")),
    }
}

fn check_results() -> ExitCode {
    let path = results_dir().join("exp_observe.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check failed: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let value = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("check failed: invalid JSON in {}: {e:?}", path.display());
            return ExitCode::FAILURE;
        }
    };
    const POSITIVE: [&str; 14] = [
        "kernel_disabled_ns_per_call",
        "kernel_overhead_vs_baseline",
        "mc_off_ns",
        "mc_metrics_ns",
        "mc_trace_ns",
        "metrics_overhead_ratio",
        "trace_overhead_ratio",
        "span_total",
        "plan_rebuilds_total",
        "replica_syncs_total",
        "scratch_bytes_gauge",
        "serve_untraced_ns_per_req",
        "serve_traced_ns_per_req",
        "serve_trace_overhead_ratio",
    ];
    for key in POSITIVE {
        match finite_num(&value, key) {
            Ok(v) if v > 0.0 => {}
            Ok(v) => {
                eprintln!("check failed: {key} must be positive, got {v}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("check failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for key in ["bit_identical", "trace_identical"] {
        match finite_num(&value, key) {
            Ok(1.0) => {}
            Ok(v) => {
                eprintln!(
                    "check failed: {key} = {v} — traced predict_par must be deterministic"
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("check failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // The overhead gate: disabled-telemetry kernel throughput within
    // tolerance of the untelemetered BENCH_throughput.json baseline.
    let tol = overhead_tolerance();
    let found = finite_num(&value, "baseline_found").unwrap_or(0.0);
    let overhead = finite_num(&value, "kernel_overhead_vs_baseline").unwrap();
    if found == 1.0 && overhead > 1.0 + tol {
        eprintln!(
            "check failed: disabled-telemetry kernel is {:.2}% slower than the \
             BENCH_throughput.json baseline (tolerance {:.2}%)",
            (overhead - 1.0) * 100.0,
            tol * 100.0,
        );
        return ExitCode::FAILURE;
    }
    // The serve-path lineage gate: per-request tracing (waterfall
    // histograms + flight ring + SLO tracking) must cost no more than
    // the tolerance over an untraced request.
    let serve_ratio = finite_num(&value, "serve_trace_overhead_ratio").unwrap_or(f64::MAX);
    if serve_ratio > 1.0 + tol {
        eprintln!(
            "check failed: serve-path tracing is {:.2}% slower than untraced \
             (tolerance {:.2}%)",
            (serve_ratio - 1.0) * 100.0,
            tol * 100.0,
        );
        return ExitCode::FAILURE;
    }
    // The emitted trace must exist and be valid JSONL of spans/events.
    let trace_path = results_dir().join("exp_observe_trace.jsonl");
    let trace = match std::fs::read_to_string(&trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check failed: cannot read {}: {e}", trace_path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut lines = 0usize;
    for (i, line) in trace.lines().enumerate() {
        let parsed = match json::parse(line) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("check failed: trace line {i} is not valid JSON: {e:?}");
                return ExitCode::FAILURE;
            }
        };
        if parsed.get("span").is_none() && parsed.get("event").is_none() {
            eprintln!("check failed: trace line {i} has neither span nor event key");
            return ExitCode::FAILURE;
        }
        lines += 1;
    }
    let expected = finite_num(&value, "trace_events").unwrap_or(-1.0);
    if lines == 0 || lines as f64 != expected {
        eprintln!("check failed: trace has {lines} lines, report says {expected}");
        return ExitCode::FAILURE;
    }
    println!(
        "exp_observe.json: overhead {:.4} (baseline {}), serve tracing {:.4}, trace {} \
         events byte-stable across 1/2/4 workers, schema OK, all finite",
        overhead,
        if found == 1.0 { "found" } else { "absent/skipped" },
        serve_ratio,
        lines,
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--check") {
        return check_results();
    }
    let fast = fast_mode();
    println!("== Telemetry overhead + deterministic trace gate ==\n");
    telemetry::set_enabled(false, false);
    telemetry::reset();

    // 1. Disabled-path kernel throughput vs the untelemetered baseline.
    let mut disabled_ns = kernel_disabled_ns(fast);
    let baseline = read_baseline(fast);
    let (baseline_ns, baseline_found) = match baseline {
        Some(ns) => (ns, 1.0),
        None => (0.0, 0.0),
    };
    if baseline_found == 1.0 {
        // Best-of semantics: a slow first sample on a noisy host is
        // re-measured rather than failing the gate outright.
        let tol = overhead_tolerance();
        for _ in 0..3 {
            if disabled_ns / baseline_ns <= 1.0 + tol {
                break;
            }
            disabled_ns = disabled_ns.min(kernel_disabled_ns(fast));
        }
    }
    let overhead = if baseline_found == 1.0 { disabled_ns / baseline_ns } else { 1.0 };
    println!(
        "kernel (telemetry off): {disabled_ns:.0} ns/call, baseline {} → overhead {:.4}",
        if baseline_found == 1.0 { format!("{baseline_ns:.0} ns/call") } else { "n/a".into() },
        overhead,
    );

    // 2. The throughput CNN.
    let (mut hw, inputs, setup) = build_model(fast);

    // 3. Determinism gate: fully traced predict_par on 1/2/4 workers.
    let mut preds: Vec<Predictive> = Vec::new();
    let mut traces: Vec<String> = Vec::new();
    for threads in [1usize, 2, 4] {
        telemetry::set_enabled(true, true);
        telemetry::reset();
        let pool = ThreadPool::new(threads);
        let pred = hw.predict_par(&inputs, PREDICT_SEED, &pool);
        let events = telemetry::take_trace();
        traces.push(telemetry::trace_to_jsonl(&events));
        preds.push(pred);
        telemetry::set_enabled(false, false);
    }
    let bit_identical = preds.iter().all(|p| *p == preds[0]);
    let trace_identical = traces.iter().all(|t| *t == traces[0]);
    println!(
        "traced predict_par over 1/2/4 workers: predictions {} | trace bytes {}",
        if bit_identical { "bit-identical" } else { "DIVERGED" },
        if trace_identical { "identical" } else { "DIVERGED" },
    );
    let trace_events = traces[0].lines().count();
    let trace_bytes = traces[0].len();

    // 4. Enabled-path cost: off vs metrics-only vs metrics+trace.
    let reps = if fast { 2 } else { 3 };
    let pool = ThreadPool::new(2);
    telemetry::set_enabled(false, false);
    telemetry::reset();
    let mc_off_ns = time_ns_per_call(reps, 1, || {
        black_box(hw.predict_par(&inputs, PREDICT_SEED, &pool));
    });
    telemetry::set_enabled(true, false);
    telemetry::reset();
    let mc_metrics_ns = time_ns_per_call(reps, 1, || {
        black_box(hw.predict_par(&inputs, PREDICT_SEED, &pool));
    });
    telemetry::set_enabled(true, true);
    telemetry::reset();
    let mc_trace_ns = time_ns_per_call(reps, 1, || {
        black_box(hw.predict_par(&inputs, PREDICT_SEED, &pool));
        // Consuming the trace is part of the real enabled-path cost.
        black_box(telemetry::take_trace());
    });
    telemetry::set_enabled(false, false);
    println!(
        "predict_par: off {:.2} ms | metrics {:.2} ms ({:.2}x) | trace {:.2} ms ({:.2}x)",
        mc_off_ns / 1e6,
        mc_metrics_ns / 1e6,
        mc_metrics_ns / mc_off_ns,
        mc_trace_ns / 1e6,
        mc_trace_ns / mc_off_ns,
    );

    // 5. Instrumented reference run for the registry artifacts: one
    //    fully traced predict + one fault-management sweep on a scratch
    //    clone (BIST/repair/remap counters) feeding the same registry,
    //    plus the forward-plan metrics gate — a batch-shape change must
    //    rebuild the plan (counter + scratch gauge) and the persistent-
    //    replica engine must count its delta resync.
    telemetry::set_enabled(true, true);
    telemetry::reset();
    let _ = hw.predict_par(&inputs, PREDICT_SEED, &pool);
    let alt_batch = if fast { 4 } else { 16 };
    let alt = dataset(alt_batch, &setup.style, &mut setup.rng(0x7462)).inputs;
    let _ = hw.predict_seeded(&alt, PREDICT_SEED);
    let mut bank = ReplicaBank::new();
    let _ = hw.predict_par_in(&inputs, PREDICT_SEED, &pool, &mut bank);
    let mut scratch = hw.clone();
    let _ = scratch.fault_management(&BistConfig::default(), &mut StdRng::seed_from_u64(0x7461));
    let _ = telemetry::take_trace();
    let span_total = telemetry::counter("spans_total").get();
    let snapshot = telemetry::snapshot();
    let prometheus = telemetry::prometheus_text();
    telemetry::set_enabled(false, false);
    telemetry::reset();
    let plan_rebuilds_total = snapshot.counter("plan_rebuilds_total").unwrap_or(0) as f64;
    let replica_syncs_total = snapshot.counter("replica_syncs_total").unwrap_or(0) as f64;
    let scratch_bytes_gauge = snapshot.gauge("scratch_bytes").unwrap_or(0.0);
    assert!(
        plan_rebuilds_total >= 1.0,
        "a batch-shape change must rebuild the forward plan under metrics"
    );
    assert!(replica_syncs_total >= 1.0, "predict_par_in must count its replica resync");
    assert!(scratch_bytes_gauge > 0.0, "a plan rebuild must export the scratch_bytes gauge");
    println!(
        "forward-plan metrics: plan_rebuilds_total {plan_rebuilds_total} | \
         replica_syncs_total {replica_syncs_total} | scratch_bytes {scratch_bytes_gauge:.0}"
    );

    // 6. Serve-path lineage overhead: the same closed-loop workload
    //    under the standard metrics registry with the flight-recorder
    //    lineage ring on vs off, best-of with re-measurement on noisy
    //    hosts (same pattern as the kernel gate). The per-request cost
    //    of structured event recording must stay inside the tolerance.
    let tol = overhead_tolerance();
    let n_req = if fast { 40 } else { 120 };
    eprintln!("serve-path overhead probe: {n_req} requests per side ...");
    let mut serve_off_ns = serve_ns_per_request(false, n_req);
    let mut serve_on_ns = serve_ns_per_request(true, n_req);
    for _ in 0..3 {
        if serve_on_ns / serve_off_ns <= 1.0 + tol {
            break;
        }
        serve_off_ns = serve_off_ns.min(serve_ns_per_request(false, n_req));
        serve_on_ns = serve_on_ns.min(serve_ns_per_request(true, n_req));
    }
    let serve_ratio = serve_on_ns / serve_off_ns;
    println!(
        "serve path: untraced {:.0} µs/req | traced {:.0} µs/req → overhead {:.4}",
        serve_off_ns / 1e3,
        serve_on_ns / 1e3,
        serve_ratio,
    );

    let report = Report {
        host_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as f64,
        fast_mode: if fast { 1.0 } else { 0.0 },
        kernel_disabled_ns_per_call: disabled_ns,
        baseline_rowmajor_ns_per_call: baseline_ns,
        baseline_found,
        kernel_overhead_vs_baseline: overhead,
        bit_identical: if bit_identical { 1.0 } else { 0.0 },
        trace_identical: if trace_identical { 1.0 } else { 0.0 },
        mc_off_ns,
        mc_metrics_ns,
        mc_trace_ns,
        metrics_overhead_ratio: mc_metrics_ns / mc_off_ns,
        trace_overhead_ratio: mc_trace_ns / mc_off_ns,
        span_total: span_total as f64,
        plan_rebuilds_total,
        replica_syncs_total,
        scratch_bytes_gauge,
        serve_untraced_ns_per_req: serve_off_ns,
        serve_traced_ns_per_req: serve_on_ns,
        serve_trace_overhead_ratio: serve_ratio,
        trace_events: trace_events as f64,
        trace_bytes: trace_bytes as f64,
        metrics: snapshot,
    };

    write_json("exp_observe", &report);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("cannot create results dir");
    let trace_path = dir.join("exp_observe_trace.jsonl");
    std::fs::write(&trace_path, &traces[0]).expect("cannot write trace JSONL");
    println!("[wrote {}]", trace_path.display());
    let prom_path = dir.join("exp_observe_prometheus.txt");
    std::fs::write(&prom_path, &prometheus).expect("cannot write Prometheus exposition");
    println!("[wrote {}]", prom_path.display());
    let root = std::env::var("NEUSPIN_BENCH_ROOT").unwrap_or_else(|_| ".".to_string());
    std::fs::create_dir_all(&root).expect("cannot create bench root");
    let bench_path = std::path::Path::new(&root).join("BENCH_observe.json");
    std::fs::write(&bench_path, report.to_json().to_string_pretty())
        .expect("cannot write BENCH_observe.json");
    println!("[wrote {}]", bench_path.display());

    if !bit_identical || !trace_identical {
        eprintln!("determinism gate FAILED (see report)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
