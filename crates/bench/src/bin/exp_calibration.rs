//! **Uncertainty-quality experiment** (SpinBayes claim: uncertainty
//! estimation improved by up to 20.16 %; the general BayNN claim of
//! well-calibrated predictions).
//!
//! Every method's calibration is scored on clean and shifted test sets:
//! expected calibration error (ECE), Brier score, and NLL, against the
//! deterministic baseline.
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_calibration
//! ```

use neuspin_bayes::{brier, ece, eval_predict, mc_predict, Method};
use neuspin_bench::{write_json, Setup};
use neuspin_data::corrupt::{corrupt_dataset, Corruption};
use neuspin_nn::nll;

#[derive(Debug)]
struct CalibrationRow {
    method: String,
    clean_ece: f64,
    clean_brier: f64,
    clean_nll: f64,
    shifted_ece: f64,
    shifted_brier: f64,
    shifted_nll: f64,
    accuracy: f64,
}

neuspin_core::impl_to_json!(CalibrationRow { method, clean_ece, clean_brier, clean_nll, shifted_ece, shifted_brier, shifted_nll, accuracy });

fn main() {
    let setup = Setup::from_env();
    println!("== Calibration quality: ECE / Brier / NLL, clean and shifted ==\n");
    let (train, _calib, test) = setup.datasets();
    let mut rng = setup.rng(80);
    let shifted = corrupt_dataset(&test, Corruption::GaussianNoise, 3, &mut rng);

    let methods = [
        Method::Deterministic,
        Method::SpinDrop,
        Method::SpatialSpinDrop,
        Method::SpinScaleDrop,
        Method::AffineDropout,
        Method::SubsetVi,
    ];

    println!(
        "{:<28} {:>7} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "method", "acc", "ECE", "Brier", "NLL", "ECE*", "Brier*", "NLL*"
    );
    println!("{}", "-".repeat(96));

    let mut rows = Vec::new();
    for method in methods {
        eprintln!("training {method} ...");
        let mut model = setup.train(method, &train);
        let mut r = setup.rng(81);
        let predict = |model: &mut neuspin_nn::Sequential,
                       inputs: &neuspin_nn::Tensor,
                       r: &mut rand::rngs::StdRng| {
            if method.is_bayesian() {
                mc_predict(model, inputs, setup.passes, r)
            } else {
                eval_predict(model, inputs, r)
            }
        };
        let p_clean = predict(&mut model, &test.inputs, &mut r);
        let p_shift = predict(&mut model, &shifted.inputs, &mut r);
        let row = CalibrationRow {
            method: method.to_string(),
            clean_ece: ece(&p_clean.mean_probs, &test.labels, 15),
            clean_brier: brier(&p_clean.mean_probs, &test.labels),
            clean_nll: nll(&p_clean.mean_probs, &test.labels) as f64,
            shifted_ece: ece(&p_shift.mean_probs, &shifted.labels, 15),
            shifted_brier: brier(&p_shift.mean_probs, &shifted.labels),
            shifted_nll: nll(&p_shift.mean_probs, &shifted.labels) as f64,
            accuracy: p_clean.accuracy(&test.labels),
        };
        println!(
            "{:<28} {:>6.1}% {:>8.3} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} {:>8.3}",
            row.method,
            100.0 * row.accuracy,
            row.clean_ece,
            row.clean_brier,
            row.clean_nll,
            row.shifted_ece,
            row.shifted_brier,
            row.shifted_nll
        );
        rows.push(row);
    }

    // Summary: best Bayesian improvement over the deterministic baseline
    // on the shifted set (where calibration matters most).
    let det = rows.iter().find(|r| r.method == "Deterministic").unwrap();
    let best = rows
        .iter()
        .filter(|r| r.method != "Deterministic")
        .map(|r| 100.0 * (det.shifted_ece - r.shifted_ece) / det.shifted_ece.max(1e-9))
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nbest Bayesian shifted-ECE improvement vs deterministic: {best:+.1}% \
         (paper: uncertainty estimates improved up to 20.16%)"
    );
    println!("(* = under gaussian-noise shift, severity 3)");

    write_json("exp_calibration", &rows);
}
