//! **OOD-detection experiment** (§III claims: "up to 100 % detection of
//! out-of-distribution data"; affine dropout: 55.03 % on uniform noise,
//! 78.95 % on random rotation).
//!
//! Every Bayesian method is trained on synth-digits and probed with
//! three OOD sets; detection rate at the 95 %-TPR threshold and AUROC
//! of the predictive entropy are reported, plus the deterministic
//! baseline (max-softmax) for contrast.
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_ood
//! ```

use neuspin_bayes::{auroc, detection_rate_at_95, mc_predict, Method};
use neuspin_bench::{write_json, Setup};
use neuspin_core::OodResult;
use neuspin_data::digits::rotated_dataset;
use neuspin_data::ood::{textures, uniform_noise};
use neuspin_nn::Dataset;

#[derive(Debug)]
struct OodTable {
    probe: String,
    results: Vec<OodResult>,
}

neuspin_core::impl_to_json!(OodTable { probe, results });

fn main() {
    let setup = Setup::from_env();
    println!("== OOD detection: uncertainty-based flagging of unfamiliar inputs ==\n");
    let (train, _calib, test) = setup.datasets();

    // Probes.
    let mut rng = setup.rng(50);
    let probes: Vec<(&str, Dataset)> = vec![
        ("uniform-noise", uniform_noise(test.len(), &mut rng)),
        (
            "random-rotation",
            rotated_dataset(test.len(), std::f32::consts::FRAC_PI_2 * 1.5, &setup.style, &mut rng),
        ),
        ("textures", textures(test.len(), &mut rng)),
    ];

    let methods = [
        Method::Deterministic,
        Method::SpinDrop,
        Method::SpatialSpinDrop,
        Method::SpinScaleDrop,
        Method::AffineDropout,
        Method::SubsetVi,
    ];

    // Train each method once.
    let mut models: Vec<_> = methods
        .iter()
        .map(|&m| {
            eprintln!("training {m} ...");
            (m, setup.train(m, &train))
        })
        .collect();

    let mut tables = Vec::new();
    for (probe_name, probe) in &probes {
        println!("\n-- probe: {probe_name} --");
        println!(
            "{:<28} {:>10} {:>8} {:>12} {:>12}",
            "method", "det@95TPR", "AUROC", "ID entropy", "OOD entropy"
        );
        let mut results = Vec::new();
        for (method, model) in &mut models {
            let mut r = setup.rng(51);
            let passes = if method.is_bayesian() { setup.passes } else { 1 };
            let p_id = mc_predict(model, &test.inputs, passes, &mut r);
            let p_ood = mc_predict(model, &probe.inputs, passes, &mut r);
            let rate = detection_rate_at_95(&p_id.entropy, &p_ood.entropy);
            let roc = auroc(&p_ood.entropy, &p_id.entropy);
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let result = OodResult {
                method: *method,
                detection_rate: rate,
                auroc: roc,
                id_entropy: mean(&p_id.entropy),
                ood_entropy: mean(&p_ood.entropy),
            };
            println!(
                "{:<28} {:>9.1}% {:>8.3} {:>12.3} {:>12.3}",
                method.to_string(),
                100.0 * rate,
                roc,
                result.id_entropy,
                result.ood_entropy
            );
            results.push(result);
        }
        tables.push(OodTable { probe: probe_name.to_string(), results });
    }

    println!("\n→ every Bayesian method pushes OOD entropy above ID entropy;");
    println!("  deterministic softmax entropy separates far less. The paper's");
    println!("  'up to 100 %' detection corresponds to the easiest probes on");
    println!("  their datasets; on synth-digits the uniform-noise probe is the");
    println!("  easiest here as well.");

    write_json("exp_ood", &tables);
}
