//! **Serving-under-degradation campaign**: stands up the `core::serve`
//! HTTP front door over a three-die [`DieFleet`] and load-tests it
//! while one die ages to the Abstain tier mid-traffic.
//!
//! Scenario:
//!
//! 1. Commission three dies (independent seeds, drift aging enabled)
//!    and start the server: batching queue, abstention-aware routing,
//!    per-die telemetry.
//! 2. Phase A: four closed-loop clients stream `POST /predict`
//!    requests at the fleet.
//! 3. Mid-traffic, die 0 is aged (conductance drift over hundreds of
//!    device-hours) and its abstention threshold collapses — the next
//!    batch it serves latches [`HealthPolicy::Abstain`]. The samples of
//!    that batch are re-served on a healthy die (per-sample failover);
//!    every later batch routes around die 0 entirely.
//! 4. Phase B: traffic continues; a final quiescence burst proves the
//!    abstaining die receives nothing.
//!
//! Reported: sustained RPS, client-side p50/p95/p99 latency,
//! drop/shed/failover/abstain counters, per-die health tiers and
//! served counts, and the Prometheus exposition with the per-die
//! health-tier gauges. `--check` re-parses the emitted JSON and gates:
//! zero drops, request conservation (accepted == terminal outcomes),
//! failover engaged, die 0 latched + quiesced, p99 under
//! `NEUSPIN_SERVING_P99_MS` (default 500 ms), every 200 carrying a
//! parseable `X-NeuSpin-Trace` header that names the serving die, the
//! per-stage waterfall histograms complete on the tuned buckets, and a
//! clean SLO window (availability 1, zero availability burn) off
//! `GET /debug/slo`.
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_serving
//! NEUSPIN_BENCH_FAST=1 cargo run --release -p neuspin-bench --bin exp_serving
//! cargo run --release -p neuspin-bench --bin exp_serving -- --check
//! ```
//!
//! Artifacts: `results/exp_serving.json`,
//! `results/exp_serving_prometheus.txt`, and `BENCH_serving.json` at
//! the workspace root (override with `NEUSPIN_BENCH_ROOT`).

use neuspin_bayes::{build_cnn, ArchConfig, Method};
use neuspin_bench::timing::percentile;
use neuspin_bench::{results_dir, write_json};
use neuspin_cim::CrossbarConfig;
use neuspin_core::json::{self, ToJson};
use neuspin_core::serve::client;
use neuspin_core::{
    serve, telemetry, DieFleet, HardwareConfig, HardwareModel, HealthConfig, HealthPolicy,
    RequestTrace, ServeConfig, Supervisor, SupervisorConfig,
};
use neuspin_device::AgingConfig;
use neuspin_nn::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const DIES: usize = 3;
const CLIENTS: usize = 4;
const MASTER_SEED: u64 = 0x5E84_0001;
/// Device-hours of conductance drift applied to die 0 mid-traffic.
const AGE_HOURS: f64 = 500.0;
const DEFAULT_P99_MS: f64 = 500.0;

fn fast_mode() -> bool {
    std::env::var("NEUSPIN_BENCH_FAST").map(|v| v == "1").unwrap_or(false)
}

fn p99_budget_ms() -> f64 {
    std::env::var("NEUSPIN_SERVING_P99_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t > 0.0)
        .unwrap_or(DEFAULT_P99_MS)
}

struct Params {
    arch: ArchConfig,
    passes: usize,
    /// Requests per client per phase (two phases).
    per_phase: usize,
    /// Requests in the post-latch quiescence burst.
    quiesce: usize,
}

fn params(fast: bool) -> Params {
    if fast {
        Params {
            arch: ArchConfig {
                c1: 2,
                c2: 4,
                hidden: 16,
                classes: 4,
                side: 8,
                ..ArchConfig::default()
            },
            passes: 3,
            per_phase: 12,
            quiesce: 8,
        }
    } else {
        Params {
            arch: ArchConfig {
                c1: 4,
                c2: 8,
                hidden: 32,
                classes: 10,
                side: 16,
                ..ArchConfig::default()
            },
            passes: 6,
            per_phase: 50,
            quiesce: 20,
        }
    }
}

/// One commissioned die: ideal crossbar + drift aging, independent
/// seed, abstention calibrated at high coverage (so healthy dies
/// rarely abstain and the degradation signal stands out).
fn die(p: &Params, seed: u64) -> Supervisor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sw = build_cnn(Method::SpinDrop, &p.arch, &mut rng);
    let config = HardwareConfig {
        crossbar: CrossbarConfig::ideal(),
        passes: p.passes,
        ..HardwareConfig::default()
    };
    let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &p.arch, &config, &mut rng);
    hw.enable_aging(&AgingConfig { seed: seed ^ 0xA9, drift_rate: 0.002, ..AgingConfig::default() });
    // Generous monitor slack: synthetic load-test traffic must not trip
    // the drift detectors on its own, so the only thing that can latch a
    // die during the campaign is the mid-run abstention collapse.
    let health = HealthConfig { entropy_slack: 4.0, margin_slack: 4.0, ..HealthConfig::default() };
    let mut sup = Supervisor::new(
        hw,
        SupervisorConfig { seed, coverage: 0.98, health, ..SupervisorConfig::default() },
    );
    let side = p.arch.side;
    let calib = Tensor::from_fn(&[32, 1, side, side], |i| ((i * 13 % 97) as f32 / 97.0) - 0.5);
    let monitor = Tensor::from_fn(&[8, 1, side, side], |i| ((i * 7 % 89) as f32 / 89.0) - 0.5);
    sup.commission(calib, &monitor);
    sup
}

fn sample(len: usize, tag: usize) -> Vec<f32> {
    (0..len).map(|i| (((i * 31 + tag * 131) % 83) as f32 / 83.0) - 0.5).collect()
}

/// One client observation.
#[derive(Clone, Copy)]
struct Obs {
    status: u16,
    die: i64,
    abstained: bool,
    latency_ms: f64,
    /// 0 = phase A, 1 = phase B, 2 = quiescence burst.
    phase: u8,
    /// The 200 carried an `X-NeuSpin-Trace` header that parsed and
    /// named the same die as the body.
    traced: bool,
}

fn send_one(addr: std::net::SocketAddr, input: &[f32], phase: u8) -> Obs {
    let start = Instant::now();
    match client::predict(addr, input, Duration::from_secs(30)) {
        Ok(resp) => {
            let latency_ms = start.elapsed().as_secs_f64() * 1e3;
            let body = json::parse(&resp.text()).unwrap_or(json::Json::Null);
            let die = body.get("die").and_then(json::Json::as_f64).map_or(-1, |d| d as i64);
            let traced = resp
                .header("x-neuspin-trace")
                .and_then(RequestTrace::parse_header)
                .is_some_and(|t| t.die as i64 == die);
            Obs {
                status: resp.status,
                die,
                abstained: body.get("abstained").and_then(json::Json::as_bool).unwrap_or(false),
                latency_ms,
                phase,
                traced,
            }
        }
        // Transport failure = a dropped request: the one thing the
        // campaign exists to prove never happens.
        Err(_) => {
            Obs { status: 0, die: -1, abstained: false, latency_ms: -1.0, phase, traced: false }
        }
    }
}

#[derive(Debug)]
struct Report {
    fast_mode: f64,
    host_threads: f64,
    dies: f64,
    clients: f64,
    total_requests: f64,
    responses_200: f64,
    responses_abstained: f64,
    /// Transport failures (no HTTP response at all).
    dropped: f64,
    shed: f64,
    failovers: f64,
    sample_retries: f64,
    unserveable: f64,
    deadline_expired: f64,
    /// 1 when the server's request-conservation law held at quiescence
    /// (accepted == sum of terminal outcomes).
    stats_conserved: f64,
    duration_s: f64,
    sustained_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    /// 1 when die 0's latched policy ended at Abstain.
    die0_latched_abstain: f64,
    /// Samples served by die 0 after its latch (must be 0).
    die0_served_after_latch: f64,
    /// Requests answered by die 0 during phase B / quiescence.
    post_latch_die0_responses: f64,
    /// Final latched tier per die (0–3).
    die_tiers: Vec<f64>,
    /// Lifetime served samples per die.
    die_served: Vec<f64>,
    /// 1 when the Prometheus exposition carries every per-die tier
    /// gauge.
    gauges_reported: f64,
    /// 200s whose `X-NeuSpin-Trace` header parsed and matched the body.
    traced_200: f64,
    /// 1 when every per-stage latency histogram exists, uses the tuned
    /// serve-latency bucket boundaries, and observed every answer.
    stage_histograms_ok: f64,
    /// Rolling-window availability from `/debug/slo` at quiescence.
    slo_availability: f64,
    /// Availability burn rate at quiescence (0 on an all-200 campaign).
    slo_availability_burn: f64,
    /// Latency burn rate at quiescence (wall-clock; not gated).
    slo_latency_burn: f64,
}

neuspin_core::impl_to_json!(Report {
    fast_mode,
    host_threads,
    dies,
    clients,
    total_requests,
    responses_200,
    responses_abstained,
    dropped,
    shed,
    failovers,
    sample_retries,
    unserveable,
    deadline_expired,
    stats_conserved,
    duration_s,
    sustained_rps,
    p50_ms,
    p95_ms,
    p99_ms,
    die0_latched_abstain,
    die0_served_after_latch,
    post_latch_die0_responses,
    die_tiers,
    die_served,
    gauges_reported,
    traced_200,
    stage_histograms_ok,
    slo_availability,
    slo_availability_burn,
    slo_latency_burn,
});

fn finite_num(obj: &json::Json, key: &str) -> Result<f64, String> {
    match obj.get(key).and_then(json::Json::as_f64) {
        Some(v) if v.is_finite() => Ok(v),
        Some(v) => Err(format!("key {key} is non-finite ({v})")),
        None => Err(format!("missing numeric key {key}")),
    }
}

fn check_results() -> ExitCode {
    let path = results_dir().join("exp_serving.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check failed: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let value = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("check failed: invalid JSON in {}: {e:?}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let get = |key: &str| finite_num(&value, key);
    let fail = |why: String| {
        eprintln!("check failed: {why}");
        ExitCode::FAILURE
    };

    // 1. Zero drops: every request got a terminal 200 — nothing lost
    //    to the degradation, nothing timed out, nothing unserveable.
    let total = match get("total_requests") {
        Ok(v) if v > 0.0 => v,
        Ok(v) => return fail(format!("total_requests must be positive, got {v}")),
        Err(e) => return fail(e),
    };
    for key in ["dropped", "unserveable", "deadline_expired"] {
        match get(key) {
            Ok(0.0) => {}
            Ok(v) => return fail(format!("{key} must be 0, got {v}")),
            Err(e) => return fail(e),
        }
    }
    match get("responses_200") {
        Ok(v) if v == total => {}
        Ok(v) => return fail(format!("responses_200 = {v}, want every one of {total}")),
        Err(e) => return fail(e),
    }
    match get("stats_conserved") {
        Ok(1.0) => {}
        Ok(v) => return fail(format!("request-conservation law violated (flag {v})")),
        Err(e) => return fail(e),
    }

    // 2. Failover engaged: the latching batch's samples were re-served
    //    on a healthy die (and/or whole batches were retried).
    let failovers = get("failovers").unwrap_or(0.0);
    let retries = get("sample_retries").unwrap_or(0.0);
    if failovers + retries < 1.0 {
        return fail(format!(
            "failover never engaged (failovers {failovers}, sample_retries {retries})"
        ));
    }

    // 3. The degraded die latched Abstain and went quiet.
    match get("die0_latched_abstain") {
        Ok(1.0) => {}
        Ok(v) => return fail(format!("die 0 must latch Abstain, got flag {v}")),
        Err(e) => return fail(e),
    }
    match get("die0_served_after_latch") {
        Ok(0.0) => {}
        Ok(v) => return fail(format!("die 0 served {v} samples after its Abstain latch")),
        Err(e) => return fail(e),
    }
    match value.get("die_tiers").and_then(json::Json::as_arr) {
        Some(tiers) if !tiers.is_empty() => {
            let die0 = tiers[0].as_f64().unwrap_or(-1.0);
            if die0 != f64::from(HealthPolicy::Abstain.tier_index()) {
                return fail(format!("die_tiers[0] = {die0}, want Abstain (3)"));
            }
        }
        _ => return fail("missing die_tiers array".to_string()),
    }

    // 4. Latency: p99 under budget, percentiles ordered.
    let (p50, p95, p99) = match (get("p50_ms"), get("p95_ms"), get("p99_ms")) {
        (Ok(a), Ok(b), Ok(c)) => (a, b, c),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => return fail(e),
    };
    if !(0.0 < p50 && p50 <= p95 && p95 <= p99) {
        return fail(format!("percentiles disordered: p50 {p50}, p95 {p95}, p99 {p99}"));
    }
    let budget = p99_budget_ms();
    if p99 > budget {
        return fail(format!("p99 {p99:.1} ms over the {budget:.0} ms budget"));
    }

    // 5. Per-die health-tier gauges made it into the exposition.
    match get("gauges_reported") {
        Ok(1.0) => {}
        Ok(v) => return fail(format!("per-die tier gauges missing from exposition ({v})")),
        Err(e) => return fail(e),
    }
    let prom_path = results_dir().join("exp_serving_prometheus.txt");
    if let Err(e) = std::fs::read_to_string(&prom_path) {
        return fail(format!("cannot read {}: {e}", prom_path.display()));
    }

    // 6. Lineage: every 200 carried a parseable trace header naming
    //    the serving die; the stage waterfall histograms observed every
    //    answer on the tuned buckets; the SLO window shows a clean
    //    campaign (availability 1, zero availability burn).
    match get("traced_200") {
        Ok(v) if v == total => {}
        Ok(v) => return fail(format!("traced_200 = {v}, want every one of {total}")),
        Err(e) => return fail(e),
    }
    match get("stage_histograms_ok") {
        Ok(1.0) => {}
        Ok(v) => return fail(format!("stage waterfall histograms incomplete (flag {v})")),
        Err(e) => return fail(e),
    }
    match get("slo_availability") {
        Ok(1.0) => {}
        Ok(v) => return fail(format!("slo availability must be 1 on an all-200 run, got {v}")),
        Err(e) => return fail(e),
    }
    match get("slo_availability_burn") {
        Ok(0.0) => {}
        Ok(v) => return fail(format!("availability burn must be 0 on an all-200 run, got {v}")),
        Err(e) => return fail(e),
    }

    println!(
        "exp_serving.json: {total} requests, zero drops, failover engaged \
         ({failovers} batch + {retries} sample), die 0 latched+quiet, \
         p50/p95/p99 {p50:.1}/{p95:.1}/{p99:.1} ms (budget {budget:.0})",
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--check") {
        return check_results();
    }
    let fast = fast_mode();
    let p = params(fast);
    let input_len = p.arch.side * p.arch.side;
    println!("== Serving under degradation: {DIES} dies, {CLIENTS} clients ==\n");

    telemetry::set_enabled(true, false);
    telemetry::reset();

    eprintln!("commissioning {DIES} dies ...");
    let fleet =
        DieFleet::new((0..DIES).map(|i| die(&p, MASTER_SEED + i as u64)).collect());
    let config = ServeConfig {
        input_shape: vec![1, p.arch.side, p.arch.side],
        max_batch: 8,
        max_wait: Duration::from_millis(2),
        queue_capacity: 256,
        conn_capacity: 256,
        http_workers: CLIENTS,
        request_timeout: Duration::from_secs(20),
        seed: MASTER_SEED,
        ..ServeConfig::default()
    };
    let mut handle = serve(fleet, config).expect("bind serving socket");
    let addr = handle.addr();
    println!("serving on {addr}");

    // Two traffic phases around the mid-run degradation, fenced by
    // barriers so the aging lands between them deterministically.
    let half_done = Arc::new(Barrier::new(CLIENTS + 1));
    let resume = Arc::new(Barrier::new(CLIENTS + 1));
    let started = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let half_done = Arc::clone(&half_done);
            let resume = Arc::clone(&resume);
            let per_phase = p.per_phase;
            std::thread::spawn(move || {
                let mut obs = Vec::with_capacity(2 * per_phase);
                for r in 0..per_phase {
                    obs.push(send_one(addr, &sample(input_len, c * 10_000 + r), 0));
                }
                half_done.wait();
                resume.wait();
                for r in 0..per_phase {
                    obs.push(send_one(addr, &sample(input_len, c * 10_000 + 5_000 + r), 1));
                }
                obs
            })
        })
        .collect();

    half_done.wait();
    // Mid-traffic degradation: age die 0's conductances by AGE_HOURS of
    // drift, and collapse its abstention threshold (standing in for
    // entropy rising past the calibrated threshold on the aged part).
    // The monitor only notices when traffic arrives — the next batch
    // die 0 serves latches Abstain and fails its samples over.
    eprintln!("aging die 0: {AGE_HOURS} h of drift + abstention-threshold collapse");
    handle.fleet().with_die(0, |sup| {
        sup.model_mut().advance_time(AGE_HOURS);
        sup.monitor_mut().set_abstain_entropy(1e-6);
    });
    resume.wait();

    let mut observations: Vec<Obs> =
        clients.into_iter().flat_map(|c| c.join().expect("client thread")).collect();
    let duration_s = started.elapsed().as_secs_f64();

    // Die 0 must have latched during phase B; freeze its served count
    // and prove the quiescence burst routes around it entirely.
    let die0_latched = handle.fleet().tier(0) == HealthPolicy::Abstain;
    let die0_served_at_latch = handle.fleet().served(0);
    for r in 0..p.quiesce {
        observations.push(send_one(addr, &sample(input_len, 90_000 + r), 2));
    }
    let die0_served_after = handle.fleet().served(0) - die0_served_at_latch;

    let die_tiers: Vec<f64> =
        (0..DIES).map(|d| f64::from(handle.fleet().tier(d).tier_index())).collect();
    let die_served: Vec<f64> = (0..DIES).map(|d| handle.fleet().served(d) as f64).collect();
    let stats = handle.stats();
    let prometheus = telemetry::prometheus_text();
    let gauges_reported =
        (0..DIES).all(|d| prometheus.contains(&format!("serve_die{d}_tier")));

    // SLO report at quiescence, straight off the debug endpoint.
    let slo = client::request(addr, "GET", "/debug/slo", None, Duration::from_secs(10))
        .ok()
        .and_then(|r| json::parse(&r.text()).ok())
        .unwrap_or(json::Json::Null);
    let slo_num = |key: &str| slo.get(key).and_then(json::Json::as_f64).unwrap_or(-1.0);

    // Per-stage waterfall histograms: present, on the tuned serve
    // buckets, and fed by every answered request.
    let ok_so_far = observations.iter().filter(|o| o.status == 200).count() as u64;
    let snap = telemetry::snapshot();
    let tuned = telemetry::serve_latency_buckets_ms().to_vec();
    let stage_histograms_ok = [
        "serve_stage_queue_wait_ms",
        "serve_stage_batch_assembly_ms",
        "serve_stage_die_compute_ms",
        "serve_stage_retry_ms",
        "serve_stage_write_ms",
        "serve_request_ms",
    ]
    .iter()
    .all(|name| {
        snap.histogram(name)
            .is_some_and(|h| h.bounds == tuned && h.count == ok_so_far)
    });

    let drain = handle.shutdown(Duration::from_secs(10));
    telemetry::set_enabled(false, false);
    telemetry::reset();

    let total = observations.len();
    let ok = observations.iter().filter(|o| o.status == 200).count();
    let abstained = observations.iter().filter(|o| o.status == 200 && o.abstained).count();
    let dropped = observations.iter().filter(|o| o.status == 0).count();
    let post_latch_die0 =
        observations.iter().filter(|o| o.phase > 0 && o.die == 0).count();
    let mut latencies: Vec<f64> =
        observations.iter().filter(|o| o.latency_ms >= 0.0).map(|o| o.latency_ms).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (p50, p95, p99) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
    );

    println!("\n{total} requests in {duration_s:.2} s → {:.1} req/s", total as f64 / duration_s);
    println!("  200: {ok}  (abstained flag: {abstained})   dropped: {dropped}");
    println!(
        "  shed: {}  failovers: {}  sample retries: {}  unserveable: {}  expired: {}",
        stats.shed, stats.failovers, stats.sample_retries, stats.unserveable,
        stats.deadline_expired,
    );
    println!("  latency p50/p95/p99: {p50:.2}/{p95:.2}/{p99:.2} ms");
    println!(
        "  die tiers: {die_tiers:?}  served: {die_served:?}  die0 after latch: +{die0_served_after}"
    );
    println!("  drain: {drain:?}");

    let report = Report {
        fast_mode: if fast { 1.0 } else { 0.0 },
        host_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as f64,
        dies: DIES as f64,
        clients: CLIENTS as f64,
        total_requests: total as f64,
        responses_200: ok as f64,
        responses_abstained: abstained as f64,
        dropped: dropped as f64,
        shed: stats.shed as f64,
        failovers: stats.failovers as f64,
        sample_retries: stats.sample_retries as f64,
        unserveable: stats.unserveable as f64,
        deadline_expired: stats.deadline_expired as f64,
        stats_conserved: if stats.is_conserved() { 1.0 } else { 0.0 },
        duration_s,
        sustained_rps: total as f64 / duration_s,
        p50_ms: p50,
        p95_ms: p95,
        p99_ms: p99,
        die0_latched_abstain: if die0_latched { 1.0 } else { 0.0 },
        die0_served_after_latch: die0_served_after as f64,
        post_latch_die0_responses: post_latch_die0 as f64,
        die_tiers,
        die_served,
        gauges_reported: if gauges_reported { 1.0 } else { 0.0 },
        traced_200: observations.iter().filter(|o| o.status == 200 && o.traced).count()
            as f64,
        stage_histograms_ok: if stage_histograms_ok { 1.0 } else { 0.0 },
        slo_availability: slo_num("availability"),
        slo_availability_burn: slo_num("availability_burn"),
        slo_latency_burn: slo_num("latency_burn"),
    };

    write_json("exp_serving", &report);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("cannot create results dir");
    let prom_path = dir.join("exp_serving_prometheus.txt");
    std::fs::write(&prom_path, &prometheus).expect("cannot write Prometheus exposition");
    println!("[wrote {}]", prom_path.display());
    let root = std::env::var("NEUSPIN_BENCH_ROOT").unwrap_or_else(|_| ".".to_string());
    std::fs::create_dir_all(&root).expect("cannot create bench root");
    let bench_path = std::path::Path::new(&root).join("BENCH_serving.json");
    std::fs::write(&bench_path, report.to_json().to_string_pretty())
        .expect("cannot write BENCH_serving.json");
    println!("[wrote {}]", bench_path.display());

    if !die0_latched || dropped > 0 || !drain.drained {
        eprintln!("serving gate FAILED (see report)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
