//! **Corrupted-data experiment** (§III-A1: Bayesian inference improves
//! accuracy on corrupted data by up to 15 %).
//!
//! For each corruption family and severity 1–5, compares the
//! deterministic binary CNN against the SpinDrop Bayesian CNN (MC
//! averaging) on the same corrupted test set.
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_corrupt
//! ```

use neuspin_bayes::{eval_predict, mc_predict, Method};
use neuspin_bench::{write_json, Setup};
use neuspin_core::CorruptionResult;
use neuspin_data::corrupt::{corrupt_dataset, Corruption};

#[derive(Debug)]
struct CorruptTable {
    corruption: String,
    results: Vec<CorruptionResult>,
}

neuspin_core::impl_to_json!(CorruptTable { corruption, results });

fn main() {
    let setup = Setup::from_env();
    println!("== Corrupted data: Bayesian vs deterministic accuracy ==\n");
    let (train, _calib, test) = setup.datasets();

    eprintln!("training deterministic baseline ...");
    let mut det = setup.train(Method::Deterministic, &train);
    eprintln!("training SpinDrop ...");
    let mut bayes = setup.train(Method::SpinDrop, &train);

    let mut tables = Vec::new();
    let mut max_gain = 0.0f64;

    for kind in Corruption::ALL {
        println!("-- {kind} --");
        println!("{:<10} {:>14} {:>14} {:>8}", "severity", "deterministic", "SpinDrop MC", "gain");
        let mut results = Vec::new();
        for severity in 0..=5u8 {
            let mut r = setup.rng(60 + severity as u64);
            let data = if severity == 0 {
                test.clone()
            } else {
                corrupt_dataset(&test, kind, severity, &mut r)
            };
            let base = eval_predict(&mut det, &data.inputs, &mut r).accuracy(&data.labels);
            let mc = mc_predict(&mut bayes, &data.inputs, setup.passes, &mut r)
                .accuracy(&data.labels);
            let gain = mc - base;
            max_gain = max_gain.max(gain);
            println!(
                "{:<10} {:>13.1}% {:>13.1}% {:>+7.1}%",
                severity,
                100.0 * base,
                100.0 * mc,
                100.0 * gain
            );
            results.push(CorruptionResult {
                severity,
                baseline_accuracy: base,
                bayesian_accuracy: mc,
            });
        }
        println!();
        tables.push(CorruptTable { corruption: kind.to_string(), results });
    }

    println!("largest Bayesian gain observed: {:+.1} pp (paper: up to 15 %)", 100.0 * max_gain);
    write_json("exp_corrupt", &tables);
}
