//! **Self-healing experiment** (§III-A4: inverted normalization with
//! affine dropout improves inference accuracy by up to 55.62 % under
//! CIM non-idealities).
//!
//! Three severity sweeps — programming-time variation, manufacturing
//! defects, post-calibration drift — comparing a batch-norm Bayesian
//! method (SpinDrop) against inverted normalization + affine dropout on
//! identical hardware scenarios.
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_selfheal
//! ```

use neuspin_bayes::Method;
use neuspin_bench::scenarios::severity_scenarios;
use neuspin_bench::{write_json, Setup};
use neuspin_core::{reliability_base, sweep, Series, SweepConfig};

#[derive(Debug)]
struct SelfHealReport {
    sweep: String,
    severities: Vec<f64>,
    series: Vec<Series>,
    max_gain_pp: f64,
}

neuspin_core::impl_to_json!(SelfHealReport { sweep, severities, series, max_gain_pp });

fn main() {
    let setup = Setup::from_env();
    println!("== Self-healing: inverted normalization under non-idealities ==\n");
    let (train, calib, test) = setup.datasets();

    eprintln!("training SpinDrop (batch-norm) ...");
    let mut bn_model = setup.train(Method::SpinDrop, &train);
    eprintln!("training InvertedNorm+AffineDropout ...");
    let mut inv_model = setup.train(Method::AffineDropout, &train);

    let mut config = reliability_base();
    config.passes = setup.passes.min(12);

    let mut reports = Vec::new();
    for scenario in severity_scenarios() {
        let (name, severities) = (scenario.name, scenario.severities);
        println!("-- {name} --");
        let sweep_config = SweepConfig::new(scenario.kind, severities.clone(), setup.seed);
        let bn_points = sweep(
            &mut bn_model,
            Method::SpinDrop,
            &setup.arch,
            &config,
            &sweep_config,
            &calib,
            &test,
        );
        let inv_points = sweep(
            &mut inv_model,
            Method::AffineDropout,
            &setup.arch,
            &config,
            &sweep_config,
            &calib,
            &test,
        );
        println!("{:<12} {:>18} {:>24} {:>8}", "severity", "SpinDrop (BN)", "InvNorm+AffineDrop", "gain");
        let mut max_gain = 0.0f64;
        for (b, i) in bn_points.iter().zip(&inv_points) {
            let gain = i.accuracy - b.accuracy;
            max_gain = max_gain.max(gain);
            println!(
                "{:<12.3} {:>17.1}% {:>23.1}% {:>+7.1}%",
                b.severity,
                100.0 * b.accuracy,
                100.0 * i.accuracy,
                100.0 * gain
            );
        }
        println!("max gain: {:+.1} pp\n", 100.0 * max_gain);
        reports.push(SelfHealReport {
            sweep: name.to_string(),
            severities: severities.clone(),
            series: vec![
                Series::new(
                    "SpinDrop (batch-norm)",
                    severities.clone(),
                    bn_points.iter().map(|p| p.accuracy).collect(),
                ),
                Series::new(
                    "InvertedNorm+AffineDropout",
                    severities.clone(),
                    inv_points.iter().map(|p| p.accuracy).collect(),
                ),
            ],
            max_gain_pp: 100.0 * max_gain,
        });
    }

    println!("→ per-sample statistics make inverted normalization immune to the");
    println!("  global conductance scaling/offset that drift and variation");
    println!("  introduce — the self-healing gain grows with severity, matching");
    println!("  the paper's 'up to 55.62 %' framing (their largest gains occur at");
    println!("  the harshest non-ideality corners).");

    write_json("exp_selfheal", &reports);
}
