//! **Design-space exploration** — the "design-time exploration to
//! optimize bit-precision" of the SpinBayes flow (§III-B2), generalized
//! to the CIM knobs every method shares:
//!
//! * column ADC resolution (1–8 bits vs ideal readout),
//! * cycle-to-cycle read noise,
//! * IR drop,
//!
//! measured as hardware accuracy of the Spatial-SpinDrop CNN on a fixed
//! trained model (so differences are purely architectural).
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_dse
//! ```

use neuspin_bayes::Method;
use neuspin_bench::{write_json, Setup};
use neuspin_cim::CrossbarConfig;
use neuspin_core::{HardwareConfig, HardwareModel, Series};

#[derive(Debug)]
struct DseReport {
    adc_sweep: Series,
    noise_sweep: Series,
    ir_drop_sweep: Series,
}

neuspin_core::impl_to_json!(DseReport { adc_sweep, noise_sweep, ir_drop_sweep });

fn main() {
    let setup = Setup::from_env();
    println!("== Design-space exploration: ADC bits, read noise, IR drop ==\n");
    let (train, calib, test) = setup.datasets();
    eprintln!("training Spatial-SpinDrop ...");
    let mut model = setup.train(Method::SpatialSpinDrop, &train);

    let evaluate = |model: &mut neuspin_nn::Sequential,
                    crossbar: CrossbarConfig,
                    tag: u64|
     -> f64 {
        let mut rng = setup.rng(500 + tag);
        let config = HardwareConfig {
            crossbar,
            passes: setup.passes.min(12),
            ..HardwareConfig::default()
        };
        let mut hw = HardwareModel::compile(
            model,
            Method::SpatialSpinDrop,
            &setup.arch,
            &config,
            &mut rng,
        );
        hw.calibrate(&calib.inputs, 2, &mut rng);
        hw.predict(&test.inputs, &mut rng).accuracy(&test.labels)
    };

    // ADC resolution.
    println!("-- ADC resolution (ideal devices) --");
    let mut adc_x = Vec::new();
    let mut adc_y = Vec::new();
    for bits in [1u32, 2, 3, 4, 5, 6, 8] {
        let acc = evaluate(
            &mut model,
            CrossbarConfig { adc_bits: Some(bits), ..CrossbarConfig::ideal() },
            bits as u64,
        );
        println!("  {bits}-bit ADC: {:.2}%", 100.0 * acc);
        adc_x.push(bits as f64);
        adc_y.push(acc);
    }
    let ideal_acc =
        evaluate(&mut model, CrossbarConfig::ideal(), 99);
    println!("  ideal readout: {:.2}%", 100.0 * ideal_acc);

    // Read noise.
    println!("\n-- cycle-to-cycle read noise (ideal readout) --");
    let mut noise_x = Vec::new();
    let mut noise_y = Vec::new();
    for noise in [0.0, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let acc = evaluate(
            &mut model,
            CrossbarConfig { read_noise: noise, ..CrossbarConfig::ideal() },
            (noise * 1000.0) as u64,
        );
        println!("  σ = {noise}: {:.2}%", 100.0 * acc);
        noise_x.push(noise);
        noise_y.push(acc);
    }

    // IR drop.
    println!("\n-- first-order IR drop --");
    let mut ir_x = Vec::new();
    let mut ir_y = Vec::new();
    for ir in [0.0, 0.02, 0.05, 0.1, 0.2, 0.5] {
        let acc = evaluate(
            &mut model,
            CrossbarConfig { ir_drop: ir, ..CrossbarConfig::ideal() },
            1000 + (ir * 1000.0) as u64,
        );
        println!("  coefficient {ir}: {:.2}%", 100.0 * acc);
        ir_x.push(ir);
        ir_y.push(acc);
    }

    println!("\n→ the accuracy knee fixes the design point: ~4–6 ADC bits");
    println!("  suffice (the paper's CIM-aware quantization target), read");
    println!("  noise below ~5 % is free, and first-order IR drop is largely");
    println!("  absorbed by the hardware-calibrated normalization.");

    write_json(
        "exp_dse",
        &DseReport {
            adc_sweep: Series::new("adc-bits", adc_x, adc_y),
            noise_sweep: Series::new("read-noise", noise_x, noise_y),
            ir_drop_sweep: Series::new("ir-drop", ir_x, ir_y),
        },
    );
}
