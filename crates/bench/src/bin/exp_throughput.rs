//! **Throughput baseline**: crossbar kernel and MC inference-engine
//! performance, the first speed-focused artifact of the workspace.
//!
//! Two measurement families:
//!
//! 1. **Kernel micro-bench** — two rows. The *analog* row pits
//!    `Crossbar::matvec` (row-major/cache-friendly) against the
//!    retained seed kernel `Crossbar::matvec_reference` on a remapped,
//!    IR-dropped, ADC-quantized array; the packed path cannot engage
//!    there (`packed_engaged = 0`). The *binary* row re-runs the
//!    comparison on a noiseless ternary tile with ±1 inputs, where the
//!    `Auto` policy routes the bit-packed XNOR/popcount kernel
//!    (`packed_engaged = 1`); its `packed_vs_rowmajor` ratio is the
//!    CI-gated regression floor ([`PACKED_FLOOR`]). All outputs are
//!    bit-identical across kernels; the ratios are pure kernel wins.
//! 2. **MC engine** — end-to-end Bayesian prediction on the compiled
//!    SpinDrop CNN after fault management + calibration, across
//!    engines: `seq_reference` (seed kernel, sequential), `seq` (the
//!    planned zero-allocation `predict_seeded`), `seq_legacy` (the
//!    retained pre-plan `predict_seeded_unplanned`, the allocation
//!    "before" picture), and `par` (deterministic parallel
//!    `predict_par`) at 1/2/4 threads and two batch sizes. All engines
//!    are bit-identical by construction; the binary asserts it on
//!    every cell.
//! 3. **Allocation discipline** — the counting global allocator
//!    ([`neuspin_bench::allocs`]) measures the warm planned forward:
//!    steady-state MC passes must perform **zero** heap allocations,
//!    both directly (a counted `forward_planned` loop) and
//!    differentially (extra passes on `predict_seeded` must add zero
//!    allocation events).
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_throughput
//! NEUSPIN_BENCH_FAST=1 cargo run --release -p neuspin-bench --bin exp_throughput
//! cargo run --release -p neuspin-bench --bin exp_throughput -- --check
//! ```
//!
//! Results go to `results/exp_throughput.json` *and* to
//! `BENCH_throughput.json` at the workspace root (override the root
//! with `NEUSPIN_BENCH_ROOT`) — the headline numbers live next to the
//! code they measure. `--check` re-parses the results file and exits
//! non-zero on schema/finiteness violations, a non-zero steady-state
//! allocation count, and — for full-mode runs — a `seq` engine slower
//! than [`MC_SPEEDUP_FLOOR`]× the recorded pre-optimization baseline
//! ([`RECORDED_SEQ_NS`]).
//!
//! Note: on a single-core host the `par` rows cannot beat `seq` (the
//! scoped workers time-share one CPU); the kernel speedup carried by
//! every non-reference engine is the hardware-independent win.

use neuspin_bayes::{ArchConfig, Method};
use neuspin_bench::allocs::count_allocs;
use neuspin_bench::timing::{Harness, Measurement};
use neuspin_bench::{results_dir, write_json, Setup};
use neuspin_cim::{BistConfig, Crossbar, KernelPolicy};
use neuspin_core::json::{self, ToJson};
use neuspin_core::{HardwareConfig, HardwareModel, ThreadPool};
use neuspin_data::digits::dataset;
use neuspin_device::DefectRates;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

/// Minimum packed-over-rowmajor throughput ratio on engaged rows —
/// the `--check` regression gate (the acceptance floor; measured
/// ratios land far above it).
const PACKED_FLOOR: f64 = 2.0;

/// Full-mode `seq` baselines (ns/predict by batch size) recorded in
/// `BENCH_throughput.json` before the zero-allocation forward plan,
/// the ziggurat read-noise sampler, and the folded IR-drop weight
/// table landed. The `--check` speedup gate divides these by the
/// current full-mode `seq` measurements.
const RECORDED_SEQ_NS: [(f64, f64); 2] = [(32.0, 797_037_832.0), (128.0, 3_258_563_394.0)];

/// Minimum full-mode `seq` speedup over [`RECORDED_SEQ_NS`] — the
/// MC end-to-end regression floor (measured runs land near 1.9×).
const MC_SPEEDUP_FLOOR: f64 = 1.3;

/// Extra MC passes used by the differential allocation probe.
const ALLOC_EXTRA_PASSES: usize = 4;

/// One kernel micro-benchmark row.
#[derive(Debug)]
struct KernelRow {
    rows: f64,
    cols: f64,
    ops_per_call: f64,
    reference_ns_per_call: f64,
    rowmajor_ns_per_call: f64,
    packed_ns_per_call: f64,
    reference_gops: f64,
    rowmajor_gops: f64,
    packed_gops: f64,
    kernel_speedup: f64,
    /// Packed over rowmajor (the CI-gated ratio on engaged rows).
    packed_vs_rowmajor: f64,
    /// 1 when the `Auto` policy actually served the calls with the
    /// packed kernel, 0 when it fell back (analog configurations).
    packed_engaged: f64,
}

neuspin_core::impl_to_json!(KernelRow {
    rows,
    cols,
    ops_per_call,
    reference_ns_per_call,
    rowmajor_ns_per_call,
    packed_ns_per_call,
    reference_gops,
    rowmajor_gops,
    packed_gops,
    kernel_speedup,
    packed_vs_rowmajor,
    packed_engaged
});

/// One MC-engine measurement cell.
#[derive(Debug)]
struct McRow {
    engine: String,
    threads: f64,
    batch: f64,
    passes: f64,
    ns_per_predict: f64,
    mc_passes_per_s: f64,
    predictions_per_s: f64,
    speedup_vs_seq_reference: f64,
    /// Recorded-baseline ratio ([`RECORDED_SEQ_NS`] / this row), the
    /// CI-gated end-to-end win; 0 when no baseline applies (fast mode,
    /// or a batch size the baseline never recorded).
    speedup_vs_recorded_baseline: f64,
}

neuspin_core::impl_to_json!(McRow {
    engine,
    threads,
    batch,
    passes,
    ns_per_predict,
    mc_passes_per_s,
    predictions_per_s,
    speedup_vs_seq_reference,
    speedup_vs_recorded_baseline
});

/// Allocation-discipline measurements for one batch size.
#[derive(Debug)]
struct AllocRow {
    batch: f64,
    /// Warm planned forward passes driven under the counting allocator.
    warm_passes_measured: f64,
    /// Allocation events during those passes (gated: must be 0).
    warm_alloc_events: f64,
    /// Differential probe: allocation events added per extra MC pass
    /// when `predict_seeded` runs with more passes (gated: must be 0).
    allocs_per_extra_pass: f64,
    /// Allocation events of one whole warm `predict_seeded` call (the
    /// per-call fixed cost: spans, the returned `Predictive`).
    warm_predict_alloc_events: f64,
    /// `HardwareModel::scratch_bytes` after warm-up — the arena the
    /// zero numbers above are buying.
    plan_scratch_bytes: f64,
}

neuspin_core::impl_to_json!(AllocRow {
    batch,
    warm_passes_measured,
    warm_alloc_events,
    allocs_per_extra_pass,
    warm_predict_alloc_events,
    plan_scratch_bytes
});

/// The whole report (one JSON object).
#[derive(Debug)]
struct Report {
    host_threads: f64,
    fast_mode: f64,
    kernel: Vec<KernelRow>,
    /// Percentile profile (p50/p95/p99) of the same kernels on the
    /// shared `timing::Bencher` harness — tail latency alongside the
    /// best-of headline numbers.
    kernel_timing: Vec<Measurement>,
    mc: Vec<McRow>,
    alloc: Vec<AllocRow>,
}

neuspin_core::impl_to_json!(Report { host_threads, fast_mode, kernel, kernel_timing, mc, alloc });

/// Numeric keys every kernel row must carry, all finite.
const KERNEL_KEYS: [&str; 12] = [
    "rows",
    "cols",
    "ops_per_call",
    "reference_ns_per_call",
    "rowmajor_ns_per_call",
    "packed_ns_per_call",
    "reference_gops",
    "rowmajor_gops",
    "packed_gops",
    "kernel_speedup",
    "packed_vs_rowmajor",
    "packed_engaged",
];

/// Numeric keys every MC row must carry, all finite. The two speedup
/// keys may be zero (no baseline recorded); everything else must be
/// strictly positive.
const MC_KEYS: [&str; 8] = [
    "threads",
    "batch",
    "passes",
    "ns_per_predict",
    "mc_passes_per_s",
    "predictions_per_s",
    "speedup_vs_seq_reference",
    "speedup_vs_recorded_baseline",
];

/// Numeric keys every allocation row must carry, all finite.
const ALLOC_KEYS: [&str; 6] = [
    "batch",
    "warm_passes_measured",
    "warm_alloc_events",
    "allocs_per_extra_pass",
    "warm_predict_alloc_events",
    "plan_scratch_bytes",
];

fn fast_mode() -> bool {
    std::env::var("NEUSPIN_BENCH_FAST").map(|v| v == "1").unwrap_or(false)
}

/// Best-of-`reps` wall time of `calls` back-to-back invocations,
/// reported as nanoseconds per call.
fn time_ns_per_call(reps: usize, calls: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..calls {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best * 1e9 / calls as f64
}

fn finite_num(row: &json::Json, key: &str) -> Result<f64, String> {
    match row.get(key).and_then(json::Json::as_f64) {
        Some(v) if v.is_finite() => Ok(v),
        Some(v) => Err(format!("key {key} is non-finite ({v})")),
        None => Err(format!("missing numeric key {key}")),
    }
}

fn check_results() -> ExitCode {
    let path = results_dir().join("exp_throughput.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check failed: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let value = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("check failed: invalid JSON in {}: {e:?}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let Some(kernel) = value.get("kernel").and_then(json::Json::as_arr) else {
        eprintln!("check failed: missing kernel array");
        return ExitCode::FAILURE;
    };
    let Some(mc) = value.get("mc").and_then(json::Json::as_arr) else {
        eprintln!("check failed: missing mc array");
        return ExitCode::FAILURE;
    };
    if kernel.is_empty() || mc.is_empty() {
        eprintln!("check failed: empty kernel or mc section");
        return ExitCode::FAILURE;
    }
    let mut engaged_rows = 0usize;
    for (i, row) in kernel.iter().enumerate() {
        for key in KERNEL_KEYS {
            if let Err(e) = finite_num(row, key) {
                eprintln!("check failed: kernel row {i}: {e}");
                return ExitCode::FAILURE;
            }
        }
        let speedup = finite_num(row, "kernel_speedup").unwrap();
        if speedup <= 0.0 {
            eprintln!("check failed: kernel row {i}: non-positive speedup {speedup}");
            return ExitCode::FAILURE;
        }
        // The packed regression gate: on rows where the Auto policy
        // engaged the XNOR/popcount kernel, it must clear the floor
        // over the rowmajor scalar kernel.
        if finite_num(row, "packed_engaged").unwrap() == 1.0 {
            engaged_rows += 1;
            let ratio = finite_num(row, "packed_vs_rowmajor").unwrap();
            if ratio < PACKED_FLOOR {
                eprintln!(
                    "check failed: kernel row {i}: packed_vs_rowmajor {ratio:.2} below the {PACKED_FLOOR}x floor"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if engaged_rows == 0 {
        eprintln!("check failed: no kernel row engaged the packed kernel");
        return ExitCode::FAILURE;
    }
    // Additive percentile rows: ordered finite tails per measurement.
    if let Some(timing) = value.get("kernel_timing").and_then(json::Json::as_arr) {
        for (i, row) in timing.iter().enumerate() {
            let (p50, p95, p99) = match (
                finite_num(row, "p50_ns"),
                finite_num(row, "p95_ns"),
                finite_num(row, "p99_ns"),
            ) {
                (Ok(a), Ok(b), Ok(c)) => (a, b, c),
                _ => {
                    eprintln!("check failed: kernel_timing row {i}: bad percentiles");
                    return ExitCode::FAILURE;
                }
            };
            if !(p50 <= p95 && p95 <= p99) {
                eprintln!(
                    "check failed: kernel_timing row {i}: unordered percentiles {p50}/{p95}/{p99}"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let fast_mode = finite_num(&value, "fast_mode").unwrap_or(1.0) == 1.0;
    let mut par_threads = Vec::new();
    let mut legacy_rows = 0usize;
    let mut gated_seq_rows = 0usize;
    for (i, row) in mc.iter().enumerate() {
        let Some(engine) = row.get("engine").and_then(json::Json::as_str) else {
            eprintln!("check failed: mc row {i} missing engine string");
            return ExitCode::FAILURE;
        };
        let speedup_keys = ["speedup_vs_seq_reference", "speedup_vs_recorded_baseline"];
        for key in MC_KEYS {
            match finite_num(row, key) {
                Ok(v) if !speedup_keys.contains(&key) && v <= 0.0 => {
                    eprintln!("check failed: mc row {i}: non-positive {key} ({v})");
                    return ExitCode::FAILURE;
                }
                Ok(_) => {}
                Err(e) => {
                    eprintln!("check failed: mc row {i}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let speedup = finite_num(row, "speedup_vs_seq_reference").unwrap();
        if speedup <= 0.0 {
            eprintln!("check failed: mc row {i}: non-positive speedup {speedup}");
            return ExitCode::FAILURE;
        }
        if engine == "seq_legacy" {
            legacy_rows += 1;
        }
        // The end-to-end regression gate: every full-mode `seq` row
        // with a recorded baseline must clear the floor. Fast-mode runs
        // measure a different workload, so the ratio is 0 (ungated)
        // there — the alloc gates below still apply.
        if engine == "seq" && !fast_mode {
            let vs_recorded = finite_num(row, "speedup_vs_recorded_baseline").unwrap();
            if vs_recorded > 0.0 {
                gated_seq_rows += 1;
                if vs_recorded < MC_SPEEDUP_FLOOR {
                    eprintln!(
                        "check failed: mc row {i}: seq speedup {vs_recorded:.2} below the {MC_SPEEDUP_FLOOR}x recorded-baseline floor"
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        if engine == "par" {
            let t = finite_num(row, "threads").unwrap();
            if !par_threads.contains(&t) {
                par_threads.push(t);
            }
        }
    }
    if par_threads.len() < 2 {
        eprintln!(
            "check failed: need par rows for >= 2 thread counts, got {par_threads:?}"
        );
        return ExitCode::FAILURE;
    }
    if legacy_rows == 0 {
        eprintln!("check failed: no seq_legacy (pre-plan engine) row");
        return ExitCode::FAILURE;
    }
    if !fast_mode && gated_seq_rows == 0 {
        eprintln!("check failed: full-mode report has no recorded-baseline seq row to gate");
        return ExitCode::FAILURE;
    }
    // The zero-allocation gate: a steady-state MC pass must not touch
    // the heap — directly (counted forward_planned loop) and
    // differentially (extra predict_seeded passes add nothing).
    let Some(alloc) = value.get("alloc").and_then(json::Json::as_arr) else {
        eprintln!("check failed: missing alloc array");
        return ExitCode::FAILURE;
    };
    if alloc.is_empty() {
        eprintln!("check failed: empty alloc section");
        return ExitCode::FAILURE;
    }
    for (i, row) in alloc.iter().enumerate() {
        for key in ALLOC_KEYS {
            if let Err(e) = finite_num(row, key) {
                eprintln!("check failed: alloc row {i}: {e}");
                return ExitCode::FAILURE;
            }
        }
        let warm = finite_num(row, "warm_alloc_events").unwrap();
        if warm != 0.0 {
            eprintln!(
                "check failed: alloc row {i}: {warm} allocation events in the warm planned forward (must be 0)"
            );
            return ExitCode::FAILURE;
        }
        let per_pass = finite_num(row, "allocs_per_extra_pass").unwrap();
        if per_pass != 0.0 {
            eprintln!(
                "check failed: alloc row {i}: {per_pass} allocation events per extra MC pass (must be 0)"
            );
            return ExitCode::FAILURE;
        }
        if finite_num(row, "plan_scratch_bytes").unwrap() <= 0.0 {
            eprintln!("check failed: alloc row {i}: plan scratch is empty");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "exp_throughput.json: {} kernel rows, {} mc rows ({} par thread counts, {} gated seq rows), {} alloc rows (all zero-steady-state), schema OK, all finite",
        kernel.len(),
        mc.len(),
        par_threads.len(),
        gated_seq_rows,
        alloc.len(),
    );
    ExitCode::SUCCESS
}

/// Times `matvec` under each of the three kernel policies on the same
/// array (the RNG is reseeded per policy, so noise draws replay).
fn time_policies(
    xbar: &mut Crossbar,
    input: &[f32],
    reps: usize,
    calls: usize,
) -> (f64, f64, f64) {
    let mut times = [0.0f64; 3];
    for (slot, policy) in
        [KernelPolicy::Reference, KernelPolicy::Scalar, KernelPolicy::Auto].into_iter().enumerate()
    {
        xbar.set_kernel_policy(policy);
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        times[slot] = time_ns_per_call(reps, calls, || {
            black_box(xbar.matvec(input, &mut rng));
        });
    }
    (times[0], times[1], times[2])
}

/// The kernel micro-benchmark, two rows:
///
/// * **analog** — a remapped, IR-dropped, ADC-quantized, noisy array
///   exercising every feature the row-major rewrite restructured; the
///   packed path is ineligible and `Auto` must cost the same as the
///   scalar kernel (`packed_engaged = 0`).
/// * **binary** — a noiseless ideal-corner ternary tile (stuck-at
///   defects only) with ±1 inputs, remapped and partially gated: the
///   packed XNOR/popcount regime (`packed_engaged = 1`, CI-gated).
fn kernel_bench(fast: bool) -> (Vec<KernelRow>, Vec<Measurement>) {
    let (rows, cols) = if fast { (96, 48) } else { (256, 64) };
    let (reps, calls) = if fast { (4, 100) } else { (5, 400) };
    let ops = 2.0 * rows as f64 * cols as f64;
    // Percentile profile of the same kernels through the shared Bencher
    // harness: p50/p95/p99 tail behaviour next to the best-of headline
    // numbers (best-of hides scheduler noise; the tail shows it).
    let mut harness = Harness::new("throughput_kernel");
    let mut kernel = Vec::new();

    // --- analog row ---
    let config = neuspin_cim::CrossbarConfig {
        defect_rates: DefectRates { short: 0.005, open: 0.005, ..DefectRates::none() },
        read_noise: 0.05,
        adc_bits: Some(6),
        ir_drop: 0.05,
        ..Default::default()
    };
    let weights: Vec<f32> =
        (0..rows * cols).map(|i| if (i * 7) % 3 == 0 { 1.0 } else { -1.0 }).collect();
    let mut rng = StdRng::seed_from_u64(0x7412_0001);
    let mut xbar = Crossbar::program(&weights, rows, cols, &config, &mut rng);
    xbar.apply_remap(
        (0..rows).map(|i| (i + 11) % rows).collect(),
        (0..cols).map(|i| (i + 3) % cols).collect(),
    );
    let input: Vec<f32> = (0..rows).map(|i| ((i * 5) % 9) as f32 / 4.0 - 1.0).collect();
    let (reference_ns, rowmajor_ns, auto_ns) = time_policies(&mut xbar, &input, reps, calls);
    assert_eq!(xbar.packed_calls(), 0, "packed kernel must not engage on the analog tile");
    xbar.set_kernel_policy(KernelPolicy::Reference);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    harness.bench("matvec/reference", |b| {
        b.iter(|| black_box(xbar.matvec(&input, &mut rng)))
    });
    xbar.set_kernel_policy(KernelPolicy::Scalar);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    harness.bench("matvec/rowmajor", |b| {
        b.iter(|| black_box(xbar.matvec(&input, &mut rng)))
    });
    kernel.push(KernelRow {
        rows: rows as f64,
        cols: cols as f64,
        ops_per_call: ops,
        reference_ns_per_call: reference_ns,
        rowmajor_ns_per_call: rowmajor_ns,
        packed_ns_per_call: auto_ns,
        reference_gops: ops / reference_ns,
        rowmajor_gops: ops / rowmajor_ns,
        packed_gops: ops / auto_ns,
        kernel_speedup: reference_ns / rowmajor_ns,
        packed_vs_rowmajor: rowmajor_ns / auto_ns,
        packed_engaged: 0.0,
    });

    // --- binary row ---
    let config = neuspin_cim::CrossbarConfig {
        defect_rates: DefectRates {
            stuck_parallel: 0.01,
            stuck_antiparallel: 0.01,
            ..DefectRates::none()
        },
        read_noise: 0.0,
        adc_bits: Some(8),
        ir_drop: 0.0,
        ..neuspin_cim::CrossbarConfig::ideal()
    };
    let mut rng = StdRng::seed_from_u64(0x7412_0002);
    let mut xbar = Crossbar::program(&weights, rows, cols, &config, &mut rng);
    xbar.apply_remap(
        (0..rows).map(|i| (i + 7) % rows).collect(),
        (0..cols).map(|i| (i + 5) % cols).collect(),
    );
    for r in (0..rows).step_by(13) {
        xbar.set_row_enabled(r, false); // dropout-style gating
    }
    let input: Vec<f32> =
        (0..rows).map(|i| if i % 7 == 0 { 0.0 } else if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
    // Bit-identity across the three policies before any timing — the
    // bench itself re-proves what the differential suite established.
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    xbar.set_kernel_policy(KernelPolicy::Reference);
    let expect = xbar.matvec(&input, &mut rng);
    for policy in [KernelPolicy::Scalar, KernelPolicy::Auto] {
        xbar.set_kernel_policy(policy);
        let got = xbar.matvec(&input, &mut rng);
        let same = got.iter().zip(&expect).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "{policy:?} kernel diverged from reference on the binary tile");
    }
    assert!(xbar.packed_calls() > 0, "packed kernel must engage on the binary tile");
    let (reference_ns, rowmajor_ns, packed_ns) = time_policies(&mut xbar, &input, reps, calls);
    xbar.set_kernel_policy(KernelPolicy::Scalar);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    harness.bench("matvec/binary_rowmajor", |b| {
        b.iter(|| black_box(xbar.matvec(&input, &mut rng)))
    });
    xbar.set_kernel_policy(KernelPolicy::Auto);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    harness.bench("matvec/binary_packed", |b| {
        b.iter(|| black_box(xbar.matvec(&input, &mut rng)))
    });
    kernel.push(KernelRow {
        rows: rows as f64,
        cols: cols as f64,
        ops_per_call: ops,
        reference_ns_per_call: reference_ns,
        rowmajor_ns_per_call: rowmajor_ns,
        packed_ns_per_call: packed_ns,
        reference_gops: ops / reference_ns,
        rowmajor_gops: ops / rowmajor_ns,
        packed_gops: ops / packed_ns,
        kernel_speedup: reference_ns / rowmajor_ns,
        packed_vs_rowmajor: rowmajor_ns / packed_ns,
        packed_engaged: 1.0,
    });

    (kernel, harness.into_results())
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--check") {
        return check_results();
    }
    let fast = fast_mode();

    println!("== Throughput baseline: crossbar kernels + parallel MC engine ==\n");
    let (kernel, kernel_timing) = kernel_bench(fast);
    for row in &kernel {
        let tile = if row.packed_engaged == 1.0 { "binary" } else { "analog" };
        println!(
            "matvec {}x{} [{tile}]: reference {:.0} ns/call ({:.3} GOP/s)  row-major {:.0} ns/call ({:.3} GOP/s, {:.2}x)  packed/auto {:.0} ns/call ({:.3} GOP/s, {:.2}x vs row-major)",
            row.rows,
            row.cols,
            row.reference_ns_per_call,
            row.reference_gops,
            row.rowmajor_ns_per_call,
            row.rowmajor_gops,
            row.kernel_speedup,
            row.packed_ns_per_call,
            row.packed_gops,
            row.packed_vs_rowmajor,
        );
    }
    println!();

    // The throughput model uses paper-scale layer widths (NeuSpin's
    // backbones are VGG-small-class networks, not 8-channel toys): the
    // conv-2 and FC crossbars then have hundreds of word lines, which is
    // the regime the row-major kernel targets. Accuracy is irrelevant
    // here, so one training epoch suffices.
    let setup = if fast {
        Setup {
            arch: ArchConfig { c1: 16, c2: 32, hidden: 128, ..ArchConfig::default() },
            epochs: 1,
            train_images: 256,
            test_images: 64,
            calib_images: 32,
            passes: 6,
            ..Setup::quick()
        }
    } else {
        Setup {
            arch: ArchConfig { c1: 32, c2: 64, hidden: 256, ..ArchConfig::default() },
            epochs: 1,
            passes: 12,
            ..Setup::quick()
        }
    };
    let batches: Vec<usize> = if fast { vec![8, 24] } else { vec![32, 128] };
    let thread_counts = [1usize, 2, 4];
    const PREDICT_SEED: u64 = 0x7457_0001;

    let (train, calib, _test) = setup.datasets();
    eprintln!("training SpinDrop backbone ...");
    let mut model = setup.train(Method::SpinDrop, &train);
    // Full non-ideality model (the fault-management E2E convention):
    // defects, 5 % read noise, 6-bit ADCs, and IR drop — the workload
    // the row-major kernel's precomputed denominator table targets.
    let hw_config = HardwareConfig {
        crossbar: neuspin_cim::CrossbarConfig {
            defect_rates: DefectRates { short: 0.005, open: 0.005, ..DefectRates::none() },
            read_noise: 0.05,
            adc_bits: Some(6),
            ir_drop: 0.05,
            ..neuspin_core::reliability_base().crossbar
        },
        spare_cols: 4,
        passes: setup.passes,
        ..neuspin_core::reliability_base()
    };
    let mut hw = HardwareModel::compile(
        &mut model,
        Method::SpinDrop,
        &setup.arch,
        &hw_config,
        &mut setup.rng(0x7457),
    );
    hw.fault_management(&BistConfig::default(), &mut setup.rng(0x7458));
    hw.calibrate(&calib.inputs, 2, &mut setup.rng(0x7459));

    let reps = if fast { 1 } else { 3 };
    let passes = setup.passes as f64;
    let mut mc = Vec::new();
    let mut alloc = Vec::new();
    println!(
        "{:>14} {:>8} {:>7} {:>14} {:>14} {:>12} {:>9}",
        "engine", "threads", "batch", "ms/predict", "mc passes/s", "preds/s", "speedup"
    );
    for &batch in &batches {
        let inputs = dataset(batch, &setup.style, &mut setup.rng(0x7460 + batch as u64)).inputs;

        hw.use_reference_kernel(true);
        let expect = hw.predict_seeded(&inputs, PREDICT_SEED);
        let ref_ns = time_ns_per_call(reps, 1, || {
            black_box(hw.predict_seeded(&inputs, PREDICT_SEED));
        });
        hw.use_reference_kernel(false);

        // The recorded pre-optimization baseline only applies to the
        // full-mode `seq` engine at the batch sizes it was captured at.
        let recorded_ns = if fast {
            None
        } else {
            RECORDED_SEQ_NS.iter().find(|(b, _)| *b == batch as f64).map(|&(_, ns)| ns)
        };
        let push = |engine: &str, threads: usize, ns: f64, mc: &mut Vec<McRow>| {
            let vs_recorded = match recorded_ns {
                Some(base) if engine == "seq" => base / ns,
                _ => 0.0,
            };
            let row = McRow {
                engine: engine.to_string(),
                threads: threads as f64,
                batch: batch as f64,
                passes,
                ns_per_predict: ns,
                mc_passes_per_s: passes / (ns / 1e9),
                predictions_per_s: batch as f64 / (ns / 1e9),
                speedup_vs_seq_reference: ref_ns / ns,
                speedup_vs_recorded_baseline: vs_recorded,
            };
            println!(
                "{:>14} {:>8} {:>7} {:>14.2} {:>14.1} {:>12.1} {:>8.2}x",
                row.engine,
                threads,
                batch,
                ns / 1e6,
                row.mc_passes_per_s,
                row.predictions_per_s,
                row.speedup_vs_seq_reference,
            );
            if vs_recorded > 0.0 {
                println!("{:>14} {:>56.2}x vs recorded baseline", "", vs_recorded);
            }
            mc.push(row);
        };

        push("seq_reference", 1, ref_ns, &mut mc);

        let got = hw.predict_seeded(&inputs, PREDICT_SEED);
        assert_eq!(got, expect, "row-major kernel diverged from reference (batch {batch})");
        let seq_ns = time_ns_per_call(reps, 1, || {
            black_box(hw.predict_seeded(&inputs, PREDICT_SEED));
        });
        push("seq", 1, seq_ns, &mut mc);

        // The retained pre-plan engine: same kernels, per-pass heap
        // traffic. Its gap to `seq` is what the forward plan buys.
        let got = hw.predict_seeded_unplanned(&inputs, PREDICT_SEED);
        assert_eq!(got, expect, "legacy engine diverged from planned (batch {batch})");
        let legacy_ns = time_ns_per_call(reps, 1, || {
            black_box(hw.predict_seeded_unplanned(&inputs, PREDICT_SEED));
        });
        push("seq_legacy", 1, legacy_ns, &mut mc);

        for &threads in &thread_counts {
            let pool = ThreadPool::new(threads);
            let got = hw.predict_par(&inputs, PREDICT_SEED, &pool);
            assert_eq!(got, expect, "parallel engine diverged ({threads} threads, batch {batch})");
            let par_ns = time_ns_per_call(reps, 1, || {
                black_box(hw.predict_par(&inputs, PREDICT_SEED, &pool));
            });
            push("par", threads, par_ns, &mut mc);
        }

        // --- allocation discipline (the tentpole gate) ---
        // The plan is warm from the timing loops above; count heap
        // events over a window of steady-state planned passes.
        let warm_passes = if fast { 4usize } else { 8 };
        let mut rng = StdRng::seed_from_u64(PREDICT_SEED);
        black_box(hw.forward_planned(&inputs, true, &mut rng));
        let (_, warm_alloc_events) = count_allocs(|| {
            let mut rng = StdRng::seed_from_u64(PREDICT_SEED);
            for _ in 0..warm_passes {
                black_box(hw.forward_planned(&inputs, true, &mut rng));
            }
        });
        // Per-call fixed cost of a whole warm prediction (spans, the
        // accumulator, the returned `Predictive`) — informational.
        let (_, warm_predict_alloc_events) = count_allocs(|| {
            black_box(hw.predict_seeded(&inputs, PREDICT_SEED));
        });
        // Differential probe: the per-call cost above is independent of
        // the pass count, so extra passes must add exactly zero events.
        let base_passes = hw.passes();
        let (_, base_events) = count_allocs(|| {
            black_box(hw.predict_seeded(&inputs, PREDICT_SEED));
        });
        hw.set_passes(base_passes + ALLOC_EXTRA_PASSES);
        black_box(hw.predict_seeded(&inputs, PREDICT_SEED));
        let (_, more_events) = count_allocs(|| {
            black_box(hw.predict_seeded(&inputs, PREDICT_SEED));
        });
        hw.set_passes(base_passes);
        let allocs_per_extra_pass =
            (more_events as f64 - base_events as f64) / ALLOC_EXTRA_PASSES as f64;
        alloc.push(AllocRow {
            batch: batch as f64,
            warm_passes_measured: warm_passes as f64,
            warm_alloc_events: warm_alloc_events as f64,
            allocs_per_extra_pass,
            warm_predict_alloc_events: warm_predict_alloc_events as f64,
            plan_scratch_bytes: hw.scratch_bytes() as f64,
        });
    }

    println!(
        "\n{:>7} {:>12} {:>12} {:>16} {:>16} {:>14}",
        "batch", "warm passes", "warm allocs", "per extra pass", "predict allocs", "scratch KiB"
    );
    for row in &alloc {
        println!(
            "{:>7} {:>12} {:>12} {:>16.2} {:>16} {:>14.1}",
            row.batch,
            row.warm_passes_measured,
            row.warm_alloc_events,
            row.allocs_per_extra_pass,
            row.warm_predict_alloc_events,
            row.plan_scratch_bytes / 1024.0,
        );
    }

    let report = Report {
        host_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as f64,
        fast_mode: if fast { 1.0 } else { 0.0 },
        kernel,
        kernel_timing,
        mc,
        alloc,
    };
    println!("\n→ every engine returns bit-identical Predictive (asserted above);");
    println!("  on few-core hosts the kernel speedup, not thread scaling, is the win.");
    write_json("exp_throughput", &report);
    let root = std::env::var("NEUSPIN_BENCH_ROOT").unwrap_or_else(|_| ".".to_string());
    let bench_path = std::path::Path::new(&root).join("BENCH_throughput.json");
    std::fs::create_dir_all(&root).expect("cannot create bench root");
    std::fs::write(&bench_path, report.to_json().to_string_pretty())
        .expect("cannot write BENCH_throughput.json");
    println!("[wrote {}]", bench_path.display());
    ExitCode::SUCCESS
}
