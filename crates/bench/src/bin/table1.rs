//! **Table I reproduction**: inference accuracy and energy per image
//! for every NeuSpin method.
//!
//! * Accuracy — measured by training each method's binary CNN on
//!   synth-digits and running hardware-in-the-loop Monte-Carlo
//!   inference on the CIM simulator (typical process corner).
//! * Energy — two figures: the energy *measured* on the simulated CNN,
//!   and the analytic estimate on the paper-scale LeNet reference
//!   network with each publication's sampling budget (the number
//!   comparable to the paper's µJ column).
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin table1
//! NEUSPIN_QUICK=1 cargo run --release -p neuspin-bench --bin table1   # smoke test
//! ```

use neuspin_bayes::Method;
use neuspin_bench::{row, write_json, Setup};
use neuspin_cim::CrossbarConfig;
use neuspin_core::{HardwareConfig, HardwareModel, Table1Row};
use neuspin_device::{MtjParams, VariationModel, VariedParams};
use neuspin_energy::{estimate_method_energy, Joules, NetworkSpec};
use neuspin_nn::evaluate;

fn paper_values(method: Method) -> (Option<f64>, Option<f64>) {
    // (accuracy %, energy µJ/image) from Table I.
    match method {
        Method::SpinDrop => (Some(91.95), Some(2.00)),
        Method::SpatialSpinDrop => (Some(90.34), Some(0.68)),
        Method::SpinScaleDrop => (Some(90.45), Some(0.18)),
        Method::SubsetVi => (Some(90.62), Some(0.30)),
        Method::SpinBayes => (None, Some(0.26)),
        _ => (None, None),
    }
}

fn main() {
    let setup = Setup::from_env();
    println!("== Table I: comparison of methods ==");
    println!(
        "(synth-digits CNN, {} train / {} test images, {} MC passes, typical corner)\n",
        setup.train_images, setup.test_images, setup.passes
    );

    let (train, calib, test) = setup.datasets();
    let reference = NetworkSpec::lenet_reference();
    let hw_config = HardwareConfig {
        crossbar: CrossbarConfig {
            corner: VariedParams::new(MtjParams::default(), VariationModel::typical()),
            read_noise: 0.01,
            adc_bits: Some(6),
            ..CrossbarConfig::default()
        },
        passes: setup.passes,
        ..HardwareConfig::default()
    };

    let mut rows: Vec<Table1Row> = Vec::new();
    for method in Method::ALL {
        eprint!("training + evaluating {method} ... ");
        let mut model = setup.train(method, &train);
        let mut rng = setup.rng(100 + method as u64);

        // Software accuracy (MC for Bayesian methods, Eval otherwise).
        let software_accuracy = if method.is_bayesian() && method != Method::SpinBayes {
            neuspin_bayes::mc_predict(&mut model, &test.inputs, setup.passes, &mut rng)
                .accuracy(&test.labels)
        } else {
            evaluate(&mut model, &test, &mut rng)
        };

        // Hardware-in-the-loop.
        let mut hw = HardwareModel::compile(&mut model, method, &setup.arch, &hw_config, &mut rng);
        hw.calibrate(&calib.inputs, 2, &mut rng);
        hw.reset_counter();
        let pred = hw.predict(&test.inputs, &mut rng);
        let hardware_accuracy = pred.accuracy(&test.labels);
        let counter = hw.counter();
        let simulated = Joules(hw.energy().0 / test.len() as f64);

        let reference_estimate = estimate_method_energy(&reference, method);
        let (paper_acc, paper_uj) = paper_values(method);
        eprintln!("done (hw acc {:.1}%)", 100.0 * hardware_accuracy);

        rows.push(Table1Row {
            method,
            software_accuracy,
            hardware_accuracy,
            simulated_energy_per_image: simulated,
            reference_energy_per_image: reference_estimate.per_image,
            paper_energy_uj: paper_uj,
            paper_accuracy_pct: paper_acc,
            counter,
        });
    }

    // Human-readable table.
    let widths = [28, 10, 10, 14, 14, 12, 10];
    println!(
        "\n{}",
        row(
            &[
                "method".into(),
                "sw acc".into(),
                "hw acc".into(),
                "sim E/img".into(),
                "ref E/img".into(),
                "paper E".into(),
                "paper acc".into(),
            ],
            &widths
        )
    );
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 12));
    for r in &rows {
        println!(
            "{}",
            row(
                &[
                    r.method.to_string(),
                    format!("{:.2}%", 100.0 * r.software_accuracy),
                    format!("{:.2}%", 100.0 * r.hardware_accuracy),
                    r.simulated_energy_per_image.to_string(),
                    r.reference_energy_per_image.to_string(),
                    r.paper_energy_uj.map_or("—".into(), |e| format!("{e:.2} µJ")),
                    r.paper_accuracy_pct.map_or("—".into(), |a| format!("{a:.2}%")),
                ],
                &widths
            )
        );
    }

    // Headline ratios.
    let energy =
        |m: Method| rows.iter().find(|r| r.method == m).unwrap().reference_energy_per_image.0;
    println!(
        "\nSpinDrop / Spatial-SpinDrop reference-energy ratio: {:.2}× (paper: 2.94×)",
        energy(Method::SpinDrop) / energy(Method::SpatialSpinDrop)
    );
    println!(
        "SpinDrop / SpinScaleDrop reference-energy ratio:    {:.2}× (paper: ~11×)",
        energy(Method::SpinDrop) / energy(Method::SpinScaleDrop)
    );

    write_json("table1", &rows);
}
