//! **Chaos-injection campaign**: drives the `core::serve` front door
//! through escalating deterministic fault injection ([`ChaosPlan`])
//! and proves the crash-consistency story end to end.
//!
//! Part 1 — checkpoint proof. An aged, scrubbed, hair-trigger die that
//! has latched a recovery tier is checkpointed; the checkpoint is
//! restored onto a bare twin (same deterministic constructor, no
//! commissioning) and both are driven through three more supervisor
//! operations (serve → age-step → serve). Every predictive digest and
//! the final re-serialized checkpoints must be byte-identical.
//!
//! Part 2 — serving campaign. Three stages over a fresh three-die
//! fleet each, chaos intensity escalating per stage:
//!
//! * stage 0 `timing`   — batch-queue stalls + per-die latency spikes;
//! * stage 1 `faults`   — plus connection-worker panics at job
//!   boundaries, malformed client requests, and stored-weight bit
//!   flips between scrubs;
//! * stage 2 `crashes`  — plus die power-fail crashes at wave
//!   boundaries. Traffic routes around the down die; at the next
//!   boundary it is restored from its last stable checkpoint, passes
//!   the BIST re-commission gate, and must answer a probe batch
//!   bit-identically to a no-crash control restored from the same
//!   checkpoint.
//!
//! Invariants gated by `--check`: the round-trip proof held; every
//! stage conserved requests (accepted == terminal outcomes) with zero
//! transport drops, zero 503/504/429; at least one die crash, worker
//! panic, queue stall, weight-flip event, and malformed request was
//! injected; every crashed die rejoined through a passing BIST gate
//! with byte-equal outputs; the fleet ended every stage fully
//! serveable; p99 under `NEUSPIN_CHAOS_P99_MS` (default 500 ms); and
//! the flight-recorder dump *alone* reconstructs every injected fault
//! — site, affected request ids, recovery outcome — with exact counts
//! against the live ledger and zero ring drops.
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_chaos
//! NEUSPIN_BENCH_FAST=1 cargo run --release -p neuspin-bench --bin exp_chaos
//! cargo run --release -p neuspin-bench --bin exp_chaos -- --check
//! ```
//!
//! Artifacts: `results/exp_chaos.json` (full, includes timing),
//! `results/exp_chaos_flight.jsonl` (the flight-recorder black box —
//! deterministic, byte-identical across host thread counts), and
//! `BENCH_chaos.json` at the workspace root (deterministic fields
//! only — byte-identical across host thread counts; CI compares a
//! `NEUSPIN_THREADS=4` re-run).

use neuspin_bayes::{build_cnn, ArchConfig, Method};
use neuspin_bench::timing::percentile;
use neuspin_bench::{results_dir, write_json};
use neuspin_cim::{BistConfig, CrossbarConfig};
use neuspin_core::json::{self, Json, ToJson};
use neuspin_core::serve::client;
use neuspin_core::{
    flight, serve, telemetry, ChaosConfig, ChaosPlan, ChaosSite, DieFleet, HardwareConfig,
    HardwareModel, HealthConfig, ServeConfig, Supervisor, SupervisorConfig,
};
use neuspin_device::{AgingConfig, DefectRates};
use neuspin_nn::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const DIES: usize = 3;
const STAGES: usize = 3;
const MASTER_SEED: u64 = 0xC405_0001;
const CHAOS_SEED: u64 = 0x000F_A117;
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);
const DEFAULT_P99_MS: f64 = 500.0;

/// Report keys that legitimately differ run to run (wall-clock and
/// host facts — `checkpoint_bytes` tracks the host thread-pool width
/// through the per-stream RNG section, though the restored *outputs*
/// stay bit-identical). Everything else must be byte-stable across
/// thread counts, and CI compares it.
const NONDETERMINISTIC_KEYS: [&str; 6] =
    ["host_threads", "duration_s", "p50_ms", "p95_ms", "p99_ms", "checkpoint_bytes"];

fn fast_mode() -> bool {
    std::env::var("NEUSPIN_BENCH_FAST").map(|v| v == "1").unwrap_or(false)
}

fn p99_budget_ms() -> f64 {
    std::env::var("NEUSPIN_CHAOS_P99_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t > 0.0)
        .unwrap_or(DEFAULT_P99_MS)
}

struct Params {
    arch: ArchConfig,
    passes: usize,
    waves: usize,
    per_wave: usize,
}

fn params(fast: bool) -> Params {
    if fast {
        Params {
            arch: ArchConfig {
                c1: 2,
                c2: 4,
                hidden: 16,
                classes: 4,
                side: 8,
                ..ArchConfig::default()
            },
            passes: 3,
            waves: 3,
            per_wave: 8,
        }
    } else {
        Params {
            arch: ArchConfig {
                c1: 4,
                c2: 8,
                hidden: 32,
                classes: 10,
                side: 16,
                ..ArchConfig::default()
            },
            passes: 6,
            waves: 4,
            per_wave: 12,
        }
    }
}

/// The deterministic twin constructor: everything immutable about a
/// campaign die (weights, geometry, defects, spares, repair, config,
/// seeds) and nothing mutable — restore overwrites the rest. Fleet
/// dies and restore twins MUST come from this one function.
fn bare_die(p: &Params, seed: u64) -> Supervisor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sw = build_cnn(Method::SpinDrop, &p.arch, &mut rng);
    let config = HardwareConfig {
        crossbar: CrossbarConfig {
            defect_rates: DefectRates::uniform(0.001),
            ..CrossbarConfig::ideal()
        },
        passes: p.passes,
        spare_cols: 2,
        ..HardwareConfig::default()
    };
    let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &p.arch, &config, &mut rng);
    hw.fault_management(&BistConfig::default(), &mut rng);
    hw.enable_aging(&AgingConfig { seed: seed ^ 0xA9, ..AgingConfig::default() });
    // Generous monitor slack: only injected faults should move tiers.
    let health = HealthConfig { entropy_slack: 4.0, margin_slack: 4.0, ..HealthConfig::default() };
    let mut sup = Supervisor::new(
        hw,
        SupervisorConfig { seed, coverage: 0.98, health, ..SupervisorConfig::default() },
    );
    sup.set_checkpoint_interval(1);
    sup
}

/// A commissioned campaign die (what the fleet starts from).
fn die(p: &Params, seed: u64) -> Supervisor {
    let mut sup = bare_die(p, seed);
    let side = p.arch.side;
    let calib = Tensor::from_fn(&[16, 1, side, side], |i| ((i * 13 % 97) as f32 / 97.0) - 0.5);
    let monitor = Tensor::from_fn(&[8, 1, side, side], |i| ((i * 7 % 89) as f32 / 89.0) - 0.5);
    sup.commission(calib, &monitor);
    sup
}

fn sample(len: usize, tag: usize) -> Vec<f32> {
    (0..len).map(|i| (((i * 31 + tag * 131) % 83) as f32 / 83.0) - 0.5).collect()
}

fn probe_batch(p: &Params, tag: usize) -> Tensor {
    let side = p.arch.side;
    Tensor::from_fn(&[4, 1, side, side], |i| (((i * 17 + tag * 61) % 71) as f32 / 71.0) - 0.5)
}

/// Streaming FNV-1a-64 over raw bytes (response digesting).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Part 1: checkpoint → bare twin → three continued operations, all
/// bit-identical. Returns (identical, latched_tier_seen, bytes).
fn checkpoint_proof(p: &Params) -> (bool, bool, usize) {
    let seed = MASTER_SEED ^ 0x1CE;
    let mut a = bare_die(p, seed);
    let side = p.arch.side;
    let calib = Tensor::from_fn(&[16, 1, side, side], |i| ((i * 13 % 97) as f32 / 97.0) - 0.5);
    let monitor = Tensor::from_fn(&[8, 1, side, side], |i| ((i * 7 % 89) as f32 / 89.0) - 0.5);
    a.commission(calib, &monitor);
    // A lifetime worth carrying: aging steps with scrub intervals, then
    // an abstention-threshold collapse so the die latches a tier.
    let inputs = probe_batch(p, 1);
    a.step(&inputs, 120.0);
    a.step(&inputs, 120.0);
    a.monitor_mut().set_abstain_entropy(1e-9);
    a.serve_predict(&inputs, seed ^ 0x51);
    let latched = a.policy() > neuspin_core::HealthPolicy::Healthy;

    let encoded = a.checkpoint();
    let bytes = encoded.len();
    let mut b = bare_die(p, seed);
    if b.restore_from_str(&encoded).is_err() {
        return (false, latched, bytes);
    }

    let mut identical = true;
    let cont = probe_batch(p, 2);
    identical &= a.serve_predict(&cont, 0xC0).predictive.bits_digest()
        == b.serve_predict(&cont, 0xC0).predictive.bits_digest();
    identical &= a.step(&cont, 45.0).predictive.bits_digest()
        == b.step(&cont, 45.0).predictive.bits_digest();
    identical &= a.serve_predict(&cont, 0xC1).predictive.bits_digest()
        == b.serve_predict(&cont, 0xC1).predictive.bits_digest();
    identical &= a.checkpoint() == b.checkpoint();
    (identical, latched, bytes)
}

struct StageCfg {
    name: &'static str,
    chaos: ChaosConfig,
    flips: bool,
    crashes: bool,
}

fn stage_cfgs() -> [StageCfg; STAGES] {
    let base = ChaosConfig {
        queue_stall_per_mille: 300,
        latency_spike_per_mille: 300,
        stall_millis: 2,
        spike_millis: 2,
        flips_per_event: 4,
        ..ChaosConfig::default()
    };
    [
        StageCfg {
            name: "timing",
            chaos: ChaosConfig { seed: CHAOS_SEED, ..base },
            flips: false,
            crashes: false,
        },
        StageCfg {
            name: "faults",
            chaos: ChaosConfig {
                seed: CHAOS_SEED + 1,
                worker_panic_per_mille: 200,
                malformed_per_mille: 150,
                weight_flip_per_mille: 300,
                ..base
            },
            flips: true,
            crashes: false,
        },
        StageCfg {
            name: "crashes",
            chaos: ChaosConfig {
                seed: CHAOS_SEED + 2,
                worker_panic_per_mille: 200,
                malformed_per_mille: 150,
                weight_flip_per_mille: 300,
                die_crash_per_mille: 500,
                ..base
            },
            flips: true,
            crashes: true,
        },
    ]
}

#[derive(Default)]
struct StageOutcome {
    requests: usize,
    ok: usize,
    bad: usize,
    malformed_sent: usize,
    dropped: usize,
    shed: usize,
    unserveable: usize,
    expired: usize,
    crashes: usize,
    restores: usize,
    gates_passed: usize,
    restored_equal: bool,
    flips: usize,
    conserved: bool,
    drained: bool,
    eligible_final: usize,
    digest: String,
    latencies: Vec<f64>,
}

fn run_stage(p: &Params, stage: usize, cfg: &StageCfg) -> StageOutcome {
    let base = MASTER_SEED + 0x100 * (stage as u64 + 1);
    let plan = ChaosPlan::new(cfg.chaos);
    let input_len = p.arch.side * p.arch.side;
    eprintln!("stage {stage} ({}): commissioning {DIES} dies ...", cfg.name);
    let fleet = DieFleet::new((0..DIES).map(|d| die(p, base + d as u64)).collect());
    let config = ServeConfig {
        input_shape: vec![1, p.arch.side, p.arch.side],
        max_batch: 8,
        queue_capacity: 256,
        conn_capacity: 256,
        http_workers: 2,
        request_timeout: Duration::from_secs(20),
        seed: base,
        chaos: cfg.chaos,
        ..ServeConfig::default()
    };
    let mut handle = serve(fleet, config).expect("bind serving socket");
    let addr = handle.addr();

    let mut out = StageOutcome { restored_equal: true, ..StageOutcome::default() };
    let mut digest = Fnv::new();
    let mut req_index = 0u64;
    for w in 0..p.waves {
        // Fault events land at wave boundaries: no request is in
        // flight, so the injection points are deterministic.
        for d in 0..DIES {
            let key = (w * DIES + d) as u64;
            if cfg.flips && plan.fires(ChaosSite::WeightFlip, key) {
                let n = plan.config().flips_per_event;
                let s = plan.draw(ChaosSite::WeightFlip, key, 1);
                let flipped = handle
                    .fleet()
                    .with_die(d, |sup| sup.model_mut().flip_stored_weight_bits(n, s));
                out.flips += flipped;
                // The injector is in-process with the server, so the
                // injection itself lands in the same flight ring the
                // serve layer writes — the dump alone reconstructs it.
                flight::record(
                    "chaos_flip",
                    vec![
                        ("site", Json::Str(ChaosSite::WeightFlip.name().to_string())),
                        ("stage", Json::Num(stage as f64)),
                        ("wave", Json::Num(w as f64)),
                        ("die", Json::Num(d as f64)),
                        ("flips", Json::Num(flipped as f64)),
                    ],
                );
            }
            // Crash only once traffic has produced a stable checkpoint
            // to restart from, and never take the last eligible die.
            if cfg.crashes
                && w > 0
                && plan.fires(ChaosSite::DieCrash, key)
                && handle.fleet().eligible_count() > 1
                && !handle.fleet().is_down(d)
                && handle.fleet().stable_checkpoint(d).is_some()
            {
                handle.fleet().crash(d);
                out.crashes += 1;
            }
        }

        // Traffic wave: sequential closed-loop requests (so batch
        // composition, routing, and chaos keys are all deterministic).
        for _ in 0..p.per_wave {
            let k = req_index;
            req_index += 1;
            let started = Instant::now();
            let resp = if plan.fires(ChaosSite::MalformedRequest, k) {
                out.malformed_sent += 1;
                flight::record(
                    "chaos_malformed",
                    vec![
                        ("site", Json::Str(ChaosSite::MalformedRequest.name().to_string())),
                        ("stage", Json::Num(stage as f64)),
                        ("req", Json::Num(k as f64)),
                    ],
                );
                let cut = (plan.draw(ChaosSite::MalformedRequest, k, 2) % 20) as usize;
                let body = format!("{{\"input\": [0.25, -0.5{}", "x".repeat(cut));
                client::request(addr, "POST", "/predict", Some(&body), CLIENT_TIMEOUT)
            } else {
                let tag = stage * 1_000_000 + k as usize;
                client::predict(addr, &sample(input_len, tag), CLIENT_TIMEOUT)
            };
            out.requests += 1;
            match resp {
                Ok(resp) => {
                    out.latencies.push(started.elapsed().as_secs_f64() * 1e3);
                    digest.eat(&resp.status.to_be_bytes());
                    digest.eat(&resp.body);
                    match resp.status {
                        200 => out.ok += 1,
                        400 => out.bad += 1,
                        429 => out.shed += 1,
                        503 => out.unserveable += 1,
                        _ => out.expired += 1,
                    }
                }
                Err(_) => out.dropped += 1,
            }
        }

        // Crash-restart every down die: last stable checkpoint onto a
        // bare twin, BIST gate, byte-equality probe vs a no-crash
        // control restored from the same bytes.
        for d in 0..DIES {
            if !handle.fleet().is_down(d) {
                continue;
            }
            let stable = handle
                .fleet()
                .stable_checkpoint(d)
                .expect("crashed die must hold a stable checkpoint");
            let gate = handle
                .fleet()
                .restore_die(d, bare_die(p, base + d as u64))
                .expect("stable checkpoint must decode");
            out.restores += 1;
            if !gate.passed {
                eprintln!("stage {stage}: die {d} failed its BIST re-commission gate");
                continue;
            }
            out.gates_passed += 1;
            let mut control = bare_die(p, base + d as u64);
            control.restore_from_str(&stable).expect("control restore");
            let probe = probe_batch(p, 0x9900 + w * DIES + d);
            let pseed = base ^ 0x77AA ^ ((w * DIES + d) as u64);
            let want = control.serve_predict(&probe, pseed).predictive.bits_digest();
            let got = handle
                .fleet()
                .predict_on(d, &probe, pseed)
                .expect("restored die serves")
                .predictive
                .bits_digest();
            if got != want {
                eprintln!("stage {stage}: die {d} restored outputs diverge from control");
                out.restored_equal = false;
            }
        }
    }

    let stats = handle.stats();
    out.conserved = stats.is_conserved();
    out.eligible_final = handle.fleet().eligible_count();
    let drain = handle.shutdown(Duration::from_secs(10));
    out.drained = drain.drained;
    out.digest = digest.hex();
    eprintln!(
        "stage {stage} ({}): {} requests, {} ok, {} bad, {} crashes, {} restores, \
         {} flips, digest {}",
        cfg.name, out.requests, out.ok, out.bad, out.crashes, out.restores, out.flips,
        out.digest,
    );
    out
}

#[derive(Debug)]
struct Report {
    fast_mode: f64,
    host_threads: f64,
    dies: f64,
    stages: f64,
    roundtrip_identical: f64,
    roundtrip_latched: f64,
    checkpoint_bytes: f64,
    stage_requests: Vec<f64>,
    stage_ok: Vec<f64>,
    stage_bad: Vec<f64>,
    stage_malformed: Vec<f64>,
    stage_conserved: Vec<f64>,
    stage_drained: Vec<f64>,
    stage_eligible_final: Vec<f64>,
    stage_digests: Vec<String>,
    crashes: f64,
    restores: f64,
    bist_gates_passed: f64,
    restored_byte_equal: f64,
    flips_injected: f64,
    chaos_stalls: f64,
    chaos_spikes: f64,
    chaos_worker_panics: f64,
    flight_events: f64,
    flight_dropped: f64,
    flight_reconstructed: f64,
    dropped: f64,
    shed: f64,
    unserveable: f64,
    deadline_expired: f64,
    duration_s: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

neuspin_core::impl_to_json!(Report {
    fast_mode,
    host_threads,
    dies,
    stages,
    roundtrip_identical,
    roundtrip_latched,
    checkpoint_bytes,
    stage_requests,
    stage_ok,
    stage_bad,
    stage_malformed,
    stage_conserved,
    stage_drained,
    stage_eligible_final,
    stage_digests,
    crashes,
    restores,
    bist_gates_passed,
    restored_byte_equal,
    flips_injected,
    chaos_stalls,
    chaos_spikes,
    chaos_worker_panics,
    flight_events,
    flight_dropped,
    flight_reconstructed,
    dropped,
    shed,
    unserveable,
    deadline_expired,
    duration_s,
    p50_ms,
    p95_ms,
    p99_ms,
});

/// Reads one counter's value out of the Prometheus exposition.
fn counter_value(text: &str, name: &str) -> f64 {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| {
            let mut parts = l.split_whitespace();
            (parts.next() == Some(name)).then(|| parts.next()?.parse::<f64>().ok())?
        })
        .unwrap_or(0.0)
}

/// What the campaign injected / recovered, per the live counters — the
/// ground truth the flight dump must reconstruct on its own.
struct FaultLedger {
    stalls: f64,
    spikes: f64,
    panics: f64,
    crashes: f64,
    restores: f64,
    gates_passed: f64,
    flips: f64,
    malformed: f64,
}

/// Replays the flight-recorder JSONL and proves every injected fault is
/// reconstructable from the dump alone: injection site, affected
/// request ids, and recovery outcome. Exact-count matches against the
/// live ledger; every `die_crash` must pair with a later gate-passing
/// `die_restore` of the same die.
fn reconstruct_faults(dump: &str, want: &FaultLedger) -> Result<(), String> {
    let mut got = FaultLedger {
        stalls: 0.0,
        spikes: 0.0,
        panics: 0.0,
        crashes: 0.0,
        restores: 0.0,
        gates_passed: 0.0,
        flips: 0.0,
        malformed: 0.0,
    };
    // Crashed dies awaiting a gate-passing restore, in crash order.
    let mut open_crashes: Vec<f64> = Vec::new();
    for (i, line) in dump.lines().enumerate() {
        let ev = json::parse(line).map_err(|e| format!("flight line {i} unparseable: {e:?}"))?;
        let kind = ev
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("flight line {i} has no kind"))?;
        let num = |key: &str| {
            ev.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("flight {kind} line {i} missing {key}"))
        };
        // Lineage contract: every per-request event names its victims.
        match kind {
            "route" | "answered" | "chaos_stall" | "chaos_spike" | "failover"
            | "unserveable" | "sample_retry" => {
                let rids = ev
                    .get("rids")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("flight {kind} line {i} missing rids"))?;
                if rids.is_empty() {
                    return Err(format!("flight {kind} line {i} names no request ids"));
                }
            }
            "chaos_worker_panic" | "shed" | "expired" => {
                num("rid")?;
            }
            _ => {}
        }
        match kind {
            "chaos_stall" => got.stalls += 1.0,
            "chaos_spike" => got.spikes += 1.0,
            "chaos_worker_panic" => got.panics += 1.0,
            "chaos_flip" => got.flips += num("flips")?,
            "chaos_malformed" => got.malformed += 1.0,
            "die_crash" => {
                got.crashes += 1.0;
                open_crashes.push(num("die")?);
            }
            "die_restore" => {
                got.restores += 1.0;
                let die = num("die")?;
                if ev.get("bist_passed").and_then(Json::as_bool) == Some(true) {
                    got.gates_passed += 1.0;
                    if let Some(pos) = open_crashes.iter().position(|&d| d == die) {
                        open_crashes.remove(pos);
                    }
                }
            }
            _ => {}
        }
    }
    let pairs = [
        ("queue stalls", got.stalls, want.stalls),
        ("latency spikes", got.spikes, want.spikes),
        ("worker panics", got.panics, want.panics),
        ("die crashes", got.crashes, want.crashes),
        ("die restores", got.restores, want.restores),
        ("passed gates", got.gates_passed, want.gates_passed),
        ("weight flips", got.flips, want.flips),
        ("malformed requests", got.malformed, want.malformed),
    ];
    for (what, g, w) in pairs {
        if g != w {
            return Err(format!("dump reconstructs {g} {what}, ledger says {w}"));
        }
    }
    if !open_crashes.is_empty() {
        return Err(format!(
            "crashed dies {open_crashes:?} never restored through a passing gate in the dump"
        ));
    }
    Ok(())
}

fn finite_num(obj: &Json, key: &str) -> Result<f64, String> {
    match obj.get(key).and_then(Json::as_f64) {
        Some(v) if v.is_finite() => Ok(v),
        Some(v) => Err(format!("key {key} is non-finite ({v})")),
        None => Err(format!("missing numeric key {key}")),
    }
}

fn check_results() -> ExitCode {
    let path = results_dir().join("exp_chaos.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check failed: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let value = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("check failed: invalid JSON in {}: {e:?}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let get = |key: &str| finite_num(&value, key);
    let fail = |why: String| {
        eprintln!("check failed: {why}");
        ExitCode::FAILURE
    };

    // 1. The checkpoint round-trip proof held on a latched die.
    for key in ["roundtrip_identical", "roundtrip_latched"] {
        match get(key) {
            Ok(1.0) => {}
            Ok(v) => return fail(format!("{key} must be 1, got {v}")),
            Err(e) => return fail(e),
        }
    }

    // 2. Conservation + zero silent drops, every stage.
    for key in ["dropped", "shed", "unserveable", "deadline_expired"] {
        match get(key) {
            Ok(0.0) => {}
            Ok(v) => return fail(format!("{key} must be 0, got {v}")),
            Err(e) => return fail(e),
        }
    }
    let arr_of = |key: &str| -> Result<Vec<f64>, String> {
        value
            .get(key)
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(Json::as_f64).collect())
            .ok_or_else(|| format!("missing array {key}"))
    };
    for key in ["stage_conserved", "stage_drained"] {
        match arr_of(key) {
            Ok(flags) if !flags.is_empty() && flags.iter().all(|&f| f == 1.0) => {}
            Ok(flags) => return fail(format!("{key} must be all-1, got {flags:?}")),
            Err(e) => return fail(e),
        }
    }
    let dies = get("dies").unwrap_or(0.0);
    match arr_of("stage_eligible_final") {
        Ok(el) if !el.is_empty() && el.iter().all(|&e| e == dies) => {}
        Ok(el) => {
            return fail(format!("fleet must end every stage fully serveable, got {el:?}"))
        }
        Err(e) => return fail(e),
    }
    // Malformed requests were injected and every one was answered 4xx.
    let (bad, malformed) = match (arr_of("stage_bad"), arr_of("stage_malformed")) {
        (Ok(b), Ok(m)) => (b, m),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    if bad != malformed || malformed.iter().sum::<f64>() < 1.0 {
        return fail(format!(
            "every malformed request must 4xx (bad {bad:?} vs sent {malformed:?})"
        ));
    }

    // 3. The faults actually struck: crash, restore, gate, byte-equal.
    let crashes = get("crashes").unwrap_or(0.0);
    let restores = get("restores").unwrap_or(0.0);
    let gates = get("bist_gates_passed").unwrap_or(0.0);
    if crashes < 1.0 || restores != crashes || gates != restores {
        return fail(format!(
            "need >=1 crash with every restore gate-passed \
             (crashes {crashes}, restores {restores}, gates {gates})"
        ));
    }
    match get("restored_byte_equal") {
        Ok(1.0) => {}
        Ok(v) => return fail(format!("restored dies diverged from control (flag {v})")),
        Err(e) => return fail(e),
    }
    for key in ["flips_injected", "chaos_stalls", "chaos_worker_panics"] {
        match get(key) {
            Ok(v) if v >= 1.0 => {}
            Ok(v) => return fail(format!("{key} must be >=1, got {v}")),
            Err(e) => return fail(e),
        }
    }

    // 3b. The black box: the flight dump alone — no counters, no live
    // state — must reconstruct every injected fault with its site,
    // affected request ids, and recovery outcome, and the ring must
    // not have dropped a single event.
    for (key, want) in [("flight_reconstructed", 1.0), ("flight_dropped", 0.0)] {
        match get(key) {
            Ok(v) if v == want => {}
            Ok(v) => return fail(format!("{key} must be {want}, got {v}")),
            Err(e) => return fail(e),
        }
    }
    let flight_path = results_dir().join("exp_chaos_flight.jsonl");
    let dump = match std::fs::read_to_string(&flight_path) {
        Ok(d) => d,
        Err(e) => return fail(format!("cannot read {}: {e}", flight_path.display())),
    };
    let ledger = FaultLedger {
        stalls: get("chaos_stalls").unwrap_or(-1.0),
        spikes: get("chaos_spikes").unwrap_or(-1.0),
        panics: get("chaos_worker_panics").unwrap_or(-1.0),
        crashes,
        restores,
        gates_passed: gates,
        flips: get("flips_injected").unwrap_or(-1.0),
        malformed: malformed.iter().sum::<f64>(),
    };
    if let Err(why) = reconstruct_faults(&dump, &ledger) {
        return fail(format!("flight dump does not reconstruct the campaign: {why}"));
    }

    // 4. Latency bounded despite the injected timing faults.
    let p99 = match get("p99_ms") {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let budget = p99_budget_ms();
    if p99 <= 0.0 || p99 > budget {
        return fail(format!("p99 {p99:.1} ms outside (0, {budget:.0}] budget"));
    }

    println!(
        "exp_chaos.json: round-trip held, {crashes} crashes all restored through the \
         BIST gate byte-equal, conservation exact, flight dump reconstructs the campaign, \
         p99 {p99:.1} ms (budget {budget:.0})",
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--check") {
        return check_results();
    }
    let fast = fast_mode();
    let p = params(fast);
    println!("== Chaos campaign: {DIES} dies, {STAGES} escalating stages ==\n");

    // Injected worker panics are part of the campaign; keep their spam
    // out of stderr while leaving real panics loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.starts_with("chaos:") {
            default_hook(info);
        }
    }));

    telemetry::set_enabled(true, false);
    telemetry::reset();
    let started = Instant::now();

    eprintln!("part 1: checkpoint round-trip proof ...");
    let (roundtrip_identical, roundtrip_latched, checkpoint_bytes) = checkpoint_proof(&p);
    println!(
        "checkpoint round-trip: identical={roundtrip_identical} latched={roundtrip_latched} \
         ({checkpoint_bytes} bytes)"
    );

    // Arm the flight recorder for the campaign: every injection,
    // routing decision, failover, crash, and gated restore lands in
    // one ring, dumped to disk on die crash / drain / panic and again
    // (complete) after the last stage. CI byte-compares the dump
    // across NEUSPIN_THREADS configurations.
    let flight_path = results_dir().join("exp_chaos_flight.jsonl");
    flight::reset();
    flight::set_capacity(1 << 16);
    flight::set_dump_path(Some(flight_path.clone()));
    flight::set_enabled(true);

    let cfgs = stage_cfgs();
    let outcomes: Vec<StageOutcome> =
        cfgs.iter().enumerate().map(|(i, cfg)| run_stage(&p, i, cfg)).collect();

    flight::set_enabled(false);
    let flight_events = flight::len() as f64;
    let flight_dropped = flight::dropped();
    let flight_dump = flight::to_jsonl();
    flight::dump_to(&flight_path).expect("cannot write flight dump");
    println!("[wrote {} ({} events)]", flight_path.display(), flight_events);

    let prometheus = telemetry::prometheus_text();
    telemetry::set_enabled(false, false);
    telemetry::reset();
    let duration_s = started.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> =
        outcomes.iter().flat_map(|o| o.latencies.iter().copied()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (p50, p95, p99) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
    );
    let total: usize = outcomes.iter().map(|o| o.requests).sum();
    println!("\n{total} requests across {STAGES} stages in {duration_s:.2} s");
    println!("  latency p50/p95/p99: {p50:.2}/{p95:.2}/{p99:.2} ms");

    // Black-box proof: the dump alone must reconstruct every injected
    // fault, exactly, with its victims and recovery outcome.
    let ledger = FaultLedger {
        stalls: counter_value(&prometheus, "serve_chaos_stalls_total"),
        spikes: counter_value(&prometheus, "serve_chaos_spikes_total"),
        panics: counter_value(&prometheus, "serve_chaos_worker_panics_total"),
        crashes: outcomes.iter().map(|o| o.crashes as f64).sum(),
        restores: outcomes.iter().map(|o| o.restores as f64).sum(),
        gates_passed: outcomes.iter().map(|o| o.gates_passed as f64).sum(),
        flips: outcomes.iter().map(|o| o.flips as f64).sum(),
        malformed: outcomes.iter().map(|o| o.malformed_sent as f64).sum(),
    };
    let reconstructed = match reconstruct_faults(&flight_dump, &ledger) {
        Ok(()) => {
            println!("flight dump reconstructs every injected fault ({flight_events} events)");
            true
        }
        Err(why) => {
            eprintln!("flight reconstruction FAILED: {why}");
            false
        }
    };

    let report = Report {
        fast_mode: if fast { 1.0 } else { 0.0 },
        host_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            as f64,
        dies: DIES as f64,
        stages: STAGES as f64,
        roundtrip_identical: if roundtrip_identical { 1.0 } else { 0.0 },
        roundtrip_latched: if roundtrip_latched { 1.0 } else { 0.0 },
        checkpoint_bytes: checkpoint_bytes as f64,
        stage_requests: outcomes.iter().map(|o| o.requests as f64).collect(),
        stage_ok: outcomes.iter().map(|o| o.ok as f64).collect(),
        stage_bad: outcomes.iter().map(|o| o.bad as f64).collect(),
        stage_malformed: outcomes.iter().map(|o| o.malformed_sent as f64).collect(),
        stage_conserved: outcomes
            .iter()
            .map(|o| if o.conserved { 1.0 } else { 0.0 })
            .collect(),
        stage_drained: outcomes.iter().map(|o| if o.drained { 1.0 } else { 0.0 }).collect(),
        stage_eligible_final: outcomes.iter().map(|o| o.eligible_final as f64).collect(),
        stage_digests: outcomes.iter().map(|o| o.digest.clone()).collect(),
        crashes: outcomes.iter().map(|o| o.crashes as f64).sum(),
        restores: outcomes.iter().map(|o| o.restores as f64).sum(),
        bist_gates_passed: outcomes.iter().map(|o| o.gates_passed as f64).sum(),
        restored_byte_equal: if outcomes.iter().all(|o| o.restored_equal) { 1.0 } else { 0.0 },
        flips_injected: outcomes.iter().map(|o| o.flips as f64).sum(),
        chaos_stalls: counter_value(&prometheus, "serve_chaos_stalls_total"),
        chaos_spikes: counter_value(&prometheus, "serve_chaos_spikes_total"),
        chaos_worker_panics: counter_value(&prometheus, "serve_chaos_worker_panics_total"),
        flight_events,
        flight_dropped: flight_dropped as f64,
        flight_reconstructed: if reconstructed { 1.0 } else { 0.0 },
        dropped: outcomes.iter().map(|o| o.dropped as f64).sum(),
        shed: outcomes.iter().map(|o| o.shed as f64).sum(),
        unserveable: outcomes.iter().map(|o| o.unserveable as f64).sum(),
        deadline_expired: outcomes.iter().map(|o| o.expired as f64).sum(),
        duration_s,
        p50_ms: p50,
        p95_ms: p95,
        p99_ms: p99,
    };

    write_json("exp_chaos", &report);
    // BENCH_chaos.json carries only the thread-count-invariant fields:
    // CI byte-compares it across NEUSPIN_THREADS configurations.
    let deterministic = match report.to_json() {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| !NONDETERMINISTIC_KEYS.contains(&k.as_str()))
                .collect(),
        ),
        other => other,
    };
    let root = std::env::var("NEUSPIN_BENCH_ROOT").unwrap_or_else(|_| ".".to_string());
    std::fs::create_dir_all(&root).expect("cannot create bench root");
    let bench_path = std::path::Path::new(&root).join("BENCH_chaos.json");
    std::fs::write(&bench_path, deterministic.to_string_pretty())
        .expect("cannot write BENCH_chaos.json");
    println!("[wrote {}]", bench_path.display());

    let fatal = !roundtrip_identical
        || !reconstructed
        || flight_dropped > 0
        || outcomes.iter().any(|o| {
            o.dropped > 0 || !o.conserved || !o.drained || !o.restored_equal
        });
    if fatal {
        eprintln!("chaos gate FAILED (see report)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
