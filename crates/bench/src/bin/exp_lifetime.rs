//! **Lifetime study**: temporal degradation vs. closed-loop
//! self-healing over device-hours of simulated service.
//!
//! Three copies of the same die (identical compile seed, identical
//! aging streams) live through the same retention-flip + drift
//! trajectory at each ambient temperature:
//!
//! * **unmanaged** — calibrated once at t = 0, then left alone;
//! * **scrub-only** — plus a periodic data scrub from the golden image;
//! * **closed-loop** — a [`neuspin_core::Supervisor`] executing the
//!   full policy ladder (scheduled scrub, recalibration, re-BIST +
//!   repair + remap, gated abstention) with every action charged to
//!   the energy model.
//!
//! All three arms share one fixed evaluation seed (common random
//! numbers), so per-step accuracy differences are hardware state, not
//! sampling noise — and the JSON carries no wall-clock numbers, so the
//! artifact is byte-identical for any `NEUSPIN_THREADS`.
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_lifetime
//! NEUSPIN_BENCH_FAST=1 cargo run --release -p neuspin-bench --bin exp_lifetime
//! cargo run --release -p neuspin-bench --bin exp_lifetime -- --check
//! ```
//!
//! Writes `results/exp_lifetime.json` (per-step grid) and
//! `BENCH_lifetime.json` (headline summary at the workspace root;
//! override the root with `NEUSPIN_BENCH_ROOT`). `--check` re-reads
//! the summary and exits non-zero unless the closed loop held the line:
//! unmanaged accuracy collapses at the hot corner while closed-loop
//! stays within 2 pp of its t = 0 accuracy, and at every recorded step
//! closed ≥ `min(unmanaged, unmanaged's t = 0 accuracy)` up to the
//! finite-test-set noise floor `1/n + 1/√n` (one sample quantum plus
//! the conservative two-sigma binomial bound on an accuracy estimated
//! from `n` images). The `min` is deliberate: at mild temperatures an
//! unmanaged die can *transiently score above its own commissioning
//! point* (a benign conductance-drift fluctuation on a finite test
//! set), and the supervisor — whose scrub restores the commissioning
//! state bit for bit — rightly does not chase that luck. Wherever the
//! unmanaged die genuinely degrades below t = 0 by more than sampling
//! noise, dominance is enforced.

use neuspin_bayes::{ece, Method};
use neuspin_bench::scenarios::{faulty_hardware_config, hard_fault_rates};
use neuspin_bench::{write_json, Setup};
use neuspin_cim::{march_test, BistConfig, Crossbar, CrossbarConfig};
use neuspin_core::json::{self, ToJson};
use neuspin_core::rng::stream;
use neuspin_core::{HardwareModel, Supervisor, SupervisorConfig, ThreadPool};
use neuspin_device::{AgingConfig, TemperatureProfile};
use neuspin_nn::Tensor;
use std::process::ExitCode;

/// Hard-fault rate and spare budget of the die under test (kept light:
/// the study isolates *temporal* degradation on a near-healthy die;
/// heavy fabrication defects are `exp_faultmgmt`'s axis).
const DEFECT_RATE: f64 = 0.002;
const SPARE_COLS: usize = 4;
/// Room-temperature thermal stability Δ₀; at 350 K the effective
/// barrier drops to ≈ 31.7, i.e. a ~6 %/hour retention-flip rate.
const DELTA0: f64 = 37.0;
/// Slow conductance relaxation on top of the flips.
const DRIFT_RATE: f64 = 0.01;
/// Scheduled-scrub period (device-hours) for the managed arms.
const SCRUB_INTERVAL: f64 = 2.0;
/// Simulation step (device-hours).
const DT_HOURS: f64 = 1.0;

#[derive(Debug)]
struct LifetimePoint {
    temperature: f64,
    scrub_interval_hours: f64,
    hours: f64,
    accuracy_unmanaged: f64,
    accuracy_scrub_only: f64,
    accuracy_closed: f64,
    ece_unmanaged: f64,
    ece_closed: f64,
    coverage_closed: f64,
    energy_unmanaged_j: f64,
    energy_scrub_only_j: f64,
    energy_closed_j: f64,
    flips_unmanaged: f64,
    actions_closed: f64,
}

neuspin_core::impl_to_json!(LifetimePoint {
    temperature,
    scrub_interval_hours,
    hours,
    accuracy_unmanaged,
    accuracy_scrub_only,
    accuracy_closed,
    ece_unmanaged,
    ece_closed,
    coverage_closed,
    energy_unmanaged_j,
    energy_scrub_only_j,
    energy_closed_j,
    flips_unmanaged,
    actions_closed
});

#[derive(Debug)]
struct LifetimeSummary {
    fast_mode: f64,
    test_images: f64,
    reference_temperature: f64,
    scrub_interval_hours: f64,
    device_hours: f64,
    t0_accuracy_unmanaged: f64,
    final_accuracy_unmanaged: f64,
    unmanaged_drop: f64,
    t0_accuracy_closed: f64,
    final_accuracy_closed: f64,
    closed_regression: f64,
    min_closed_margin: f64,
    recovery_events: f64,
    energy_overhead_ratio: f64,
    bist_detection_rate: f64,
    bist_false_positives: f64,
    points: f64,
}

neuspin_core::impl_to_json!(LifetimeSummary {
    fast_mode,
    test_images,
    reference_temperature,
    scrub_interval_hours,
    device_hours,
    t0_accuracy_unmanaged,
    final_accuracy_unmanaged,
    unmanaged_drop,
    t0_accuracy_closed,
    final_accuracy_closed,
    closed_regression,
    min_closed_margin,
    recovery_events,
    energy_overhead_ratio,
    bist_detection_rate,
    bist_false_positives,
    points
});

const SUMMARY_KEYS: [&str; 17] = [
    "fast_mode",
    "test_images",
    "reference_temperature",
    "scrub_interval_hours",
    "device_hours",
    "t0_accuracy_unmanaged",
    "final_accuracy_unmanaged",
    "unmanaged_drop",
    "t0_accuracy_closed",
    "final_accuracy_closed",
    "closed_regression",
    "min_closed_margin",
    "recovery_events",
    "energy_overhead_ratio",
    "bist_detection_rate",
    "bist_false_positives",
    "points",
];

fn fast_mode() -> bool {
    std::env::var("NEUSPIN_BENCH_FAST").map(|v| v == "1").unwrap_or(false)
}

fn bench_root() -> std::path::PathBuf {
    let root = std::env::var("NEUSPIN_BENCH_ROOT").unwrap_or_else(|_| ".".to_string());
    std::path::PathBuf::from(root)
}

fn aging_config(seed: u64, temperature: f64) -> AgingConfig {
    AgingConfig {
        seed,
        thermal_stability: DELTA0,
        temperature: TemperatureProfile::Constant(temperature),
        drift_rate: DRIFT_RATE,
        ..AgingConfig::default()
    }
}

/// The t = 0 commissioning shared by the manual arms — mirrors
/// [`Supervisor::commission`]'s RNG streams exactly so every arm
/// starts from the identical calibrated state.
fn commission_manual(hw: &mut HardwareModel, calib: &Tensor, master: u64) -> f64 {
    hw.calibrate(calib, 2, &mut stream(master, 1));
    hw.calibrate_abstention(calib, 0.9, &mut stream(master, 2))
}

fn check_results() -> ExitCode {
    let path = bench_root().join("BENCH_lifetime.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check failed: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let value = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("check failed: invalid JSON in {}: {e:?}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let get = |key: &str| -> Option<f64> {
        match value.get(key).and_then(json::Json::as_f64) {
            Some(v) if v.is_finite() => Some(v),
            Some(v) => {
                eprintln!("check failed: key {key} is non-finite ({v})");
                None
            }
            None => {
                eprintln!("check failed: missing numeric key {key}");
                None
            }
        }
    };
    let mut fields = std::collections::HashMap::new();
    for key in SUMMARY_KEYS {
        match get(key) {
            Some(v) => {
                fields.insert(key, v);
            }
            None => return ExitCode::FAILURE,
        }
    }
    let drop = fields["unmanaged_drop"];
    if drop < 0.10 - 1e-9 {
        eprintln!("check failed: unmanaged accuracy only dropped {drop:.3} (< 0.10) at the hot corner");
        return ExitCode::FAILURE;
    }
    let regression = fields["closed_regression"];
    if regression > 0.02 + 1e-9 {
        eprintln!("check failed: closed-loop lost {regression:.3} accuracy vs t=0 (> 0.02)");
        return ExitCode::FAILURE;
    }
    let n = fields["test_images"];
    let slack = 1.0 / n + 1.0 / n.sqrt() + 1e-9;
    let min_gap = fields["min_closed_margin"];
    if min_gap < -slack {
        eprintln!(
            "check failed: closed-loop fell {min_gap:.4} below the degraded unmanaged \
             envelope somewhere (slack {slack:.4})"
        );
        return ExitCode::FAILURE;
    }
    if fields["bist_detection_rate"] < 0.5 {
        eprintln!("check failed: BIST confusion sidebar detection rate below 0.5");
        return ExitCode::FAILURE;
    }
    println!(
        "BENCH_lifetime.json OK: unmanaged dropped {:.1} pp, closed-loop regressed {:.1} pp over {} h, min gap {:+.4}",
        100.0 * drop,
        100.0 * regression,
        fields["device_hours"],
        min_gap
    );
    ExitCode::SUCCESS
}

/// A standalone BIST-quality sidebar: a small crossbar with both
/// fabrication defects and endurance wear-outs, march-tested and
/// scored against its true defect map with [`neuspin_cim::BistReport::confusion`].
fn bist_sidebar(setup: &Setup) -> (f64, f64) {
    let n = 32;
    let weights: Vec<f32> =
        (0..n * n).map(|i| if (i * 7 + 3) % 5 < 2 { 1.0 } else { -1.0 }).collect();
    let config = CrossbarConfig {
        defect_rates: hard_fault_rates(0.05),
        ..CrossbarConfig::default()
    };
    let mut xbar = Crossbar::program(&weights, n, n, &config, &mut setup.rng(0xB157));
    xbar.enable_aging(&AgingConfig {
        seed: setup.seed ^ 0xB157,
        endurance_median: 50.0,
        endurance_sigma: 0.3,
        ..AgingConfig::default()
    });
    // Burn write cycles so a tail of cells wears out on top of the
    // fabrication defects.
    for _ in 0..30 {
        xbar.reprogram(&weights);
        xbar.advance_time(0.1);
    }
    let truth = xbar.defects().clone();
    let report = march_test(&mut xbar, &BistConfig::default(), &mut setup.rng(0xB158));
    let confusion = report.confusion(&truth);
    println!(
        "BIST sidebar (fabrication + wear): detection {:.2}, {} detected / {} misclassified / {} missed / {} false alarms",
        confusion.detection_rate(),
        confusion.total_detected(),
        confusion.total_misclassified(),
        confusion.total_missed(),
        confusion.total_false_positives(),
    );
    (confusion.detection_rate(), confusion.total_false_positives() as f64)
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--check") {
        return check_results();
    }

    let fast = fast_mode();
    let setup = if fast {
        Setup { epochs: 2, train_images: 600, test_images: 96, calib_images: 48, passes: 6, ..Setup::quick() }
    } else {
        Setup::from_env()
    };
    let temperatures: Vec<f64> = if fast { vec![350.0] } else { vec![300.0, 325.0, 350.0] };
    let steps = if fast { 4 } else { 8 };
    let passes = setup.passes.min(8);
    let device_hours = steps as f64 * DT_HOURS;

    println!("== Lifetime: temporal degradation vs closed-loop self-healing ==\n");
    let (train, calib, test) = setup.datasets();
    eprintln!("training SpinDrop backbone ...");
    let mut model = setup.train(Method::SpinDrop, &train);
    let hw_config = faulty_hardware_config(DEFECT_RATE, SPARE_COLS, passes);
    let pool = ThreadPool::from_env();
    // Finite-test-set noise floor for the dominance assertion: one
    // sample quantum plus the conservative two-sigma binomial bound
    // (2·√(p(1−p)/n) ≤ 1/√n) on an accuracy estimated from n images.
    let test_n = test.labels.len() as f64;
    let noise_floor = 1.0 / test_n + 1.0 / test_n.sqrt();

    let mut points: Vec<LifetimePoint> = Vec::new();
    let mut min_gap = f64::INFINITY;
    // Reference-corner trajectory endpoints for the summary gate.
    let mut reference = (0.0, 0.0, 0.0, 0.0); // (t0_un, final_un, t0_cl, final_cl)
    let mut recovery_events = 0usize;
    let mut energy_ratio = 1.0;

    for (ti, &temperature) in temperatures.iter().enumerate() {
        println!("-- ambient {temperature} K, scrub every {SCRUB_INTERVAL} h --");
        let compile_tag = 0x11FE + 16 * ti as u64;
        let master = setup.seed ^ (0x0A61_0000 + ti as u64);
        let aging = aging_config(master ^ 0x000D_ECAF, temperature);

        // Three copies of the same die: identical compile seed.
        let mut compile_die = |_| {
            let mut hw = HardwareModel::compile(
                &mut model,
                Method::SpinDrop,
                &setup.arch,
                &hw_config,
                &mut setup.rng(compile_tag),
            );
            hw.enable_aging(&aging);
            hw
        };
        let mut unmanaged = compile_die(0);
        let mut scrub_only = compile_die(1);
        let closed = compile_die(2);

        let sup_config = SupervisorConfig {
            scrub_interval_hours: SCRUB_INTERVAL,
            seed: master,
            ..SupervisorConfig::default()
        };
        let mut sup = Supervisor::new(closed, sup_config);
        let eval_seed = sup.eval_seed();
        let t0_closed_pred = sup.commission(calib.inputs.clone(), &test.inputs);
        commission_manual(&mut unmanaged, &calib.inputs, master);
        commission_manual(&mut scrub_only, &calib.inputs, master);

        let t0_un = unmanaged.predict_par(&test.inputs, eval_seed, &pool);
        let t0_scrub = scrub_only.predict_par(&test.inputs, eval_seed, &pool);
        let acc0_un = t0_un.accuracy(&test.labels);
        let acc0_cl = t0_closed_pred.accuracy(&test.labels);
        println!(
            "{:>6} {:>11} {:>11} {:>11} {:>9} {:>9} {:>8}",
            "hours", "unmanaged", "scrub-only", "closed", "ECE(cl)", "coverage", "actions"
        );
        points.push(LifetimePoint {
            temperature,
            scrub_interval_hours: SCRUB_INTERVAL,
            hours: 0.0,
            accuracy_unmanaged: acc0_un,
            accuracy_scrub_only: t0_scrub.accuracy(&test.labels),
            accuracy_closed: acc0_cl,
            ece_unmanaged: ece(&t0_un.mean_probs, &test.labels, 10),
            ece_closed: ece(&t0_closed_pred.mean_probs, &test.labels, 10),
            coverage_closed: t0_closed_pred.gate(sup.abstain_threshold()).coverage(),
            energy_unmanaged_j: unmanaged.energy().0,
            energy_scrub_only_j: scrub_only.energy().0,
            energy_closed_j: sup.model().energy().0,
            flips_unmanaged: 0.0,
            actions_closed: 0.0,
        });

        let mut now = 0.0;
        let mut last_scrub = 0.0;
        let mut flips_un = 0u64;
        let (mut acc_un, mut acc_cl) = (acc0_un, acc0_cl);
        for _ in 0..steps {
            // Unmanaged arm: age, then look the other way.
            let rep_un = unmanaged.advance_time(DT_HOURS);
            flips_un += rep_un.total_flips() as u64 + rep_un.wear_outs as u64;
            // Scrub-only arm: age, scrub on schedule.
            scrub_only.advance_time(DT_HOURS);
            now += DT_HOURS;
            if now - last_scrub >= SCRUB_INTERVAL - 1e-9 {
                scrub_only.scrub();
                last_scrub = now;
            }
            // Closed loop: the supervisor runs the whole ladder.
            let report = sup.step(&test.inputs, DT_HOURS);

            let pred_un = unmanaged.predict_par(&test.inputs, eval_seed, &pool);
            let pred_scrub = scrub_only.predict_par(&test.inputs, eval_seed, &pool);
            acc_un = pred_un.accuracy(&test.labels);
            acc_cl = report.predictive.accuracy(&test.labels);
            let gated = report.predictive.gate(sup.abstain_threshold());
            // Dominance is judged against the *degraded* unmanaged
            // envelope min(unmanaged, unmanaged t=0): a mildly drifted
            // die can transiently score above its own commissioning
            // point by finite-test-set luck, and the supervisor (whose
            // scrub restores the commissioning state bit for bit) does
            // not chase that. Wherever unmanaged genuinely degrades
            // beyond sampling noise, closed must hold the line.
            let envelope = acc_un.min(acc0_un);
            min_gap = min_gap.min(acc_cl - envelope);
            assert!(
                acc_cl + noise_floor + 1e-9 >= envelope,
                "closed-loop ({acc_cl:.3}) fell below the degraded unmanaged envelope \
                 ({envelope:.3}) at {now} h, {temperature} K"
            );
            let point = LifetimePoint {
                temperature,
                scrub_interval_hours: SCRUB_INTERVAL,
                hours: now,
                accuracy_unmanaged: acc_un,
                accuracy_scrub_only: pred_scrub.accuracy(&test.labels),
                accuracy_closed: acc_cl,
                ece_unmanaged: ece(&pred_un.mean_probs, &test.labels, 10),
                ece_closed: ece(&report.predictive.mean_probs, &test.labels, 10),
                coverage_closed: gated.coverage(),
                energy_unmanaged_j: unmanaged.energy().0,
                energy_scrub_only_j: scrub_only.energy().0,
                energy_closed_j: sup.model().energy().0,
                flips_unmanaged: flips_un as f64,
                actions_closed: report.actions.len() as f64,
            };
            println!(
                "{:>6.1} {:>10.1}% {:>10.1}% {:>10.1}% {:>9.3} {:>9.2} {:>8}",
                point.hours,
                100.0 * point.accuracy_unmanaged,
                100.0 * point.accuracy_scrub_only,
                100.0 * point.accuracy_closed,
                point.ece_closed,
                point.coverage_closed,
                point.actions_closed,
            );
            points.push(point);
        }
        if (temperature - 350.0).abs() < 1e-9 {
            reference = (acc0_un, acc_un, acc0_cl, acc_cl);
            recovery_events = sup.events().len();
            let e_un = unmanaged.energy().0;
            energy_ratio = if e_un > 0.0 { sup.model().energy().0 / e_un } else { 1.0 };
        }
        println!(
            "  recovery trail: {} events, closed-loop energy {:.1} µJ vs unmanaged {:.1} µJ\n",
            sup.events().len(),
            1e6 * sup.model().energy().0,
            1e6 * unmanaged.energy().0,
        );
    }

    let (bist_detection_rate, bist_false_positives) = bist_sidebar(&setup);

    let (t0_un, final_un, t0_cl, final_cl) = reference;
    let summary = LifetimeSummary {
        fast_mode: if fast { 1.0 } else { 0.0 },
        test_images: test.labels.len() as f64,
        reference_temperature: 350.0,
        scrub_interval_hours: SCRUB_INTERVAL,
        device_hours,
        t0_accuracy_unmanaged: t0_un,
        final_accuracy_unmanaged: final_un,
        unmanaged_drop: t0_un - final_un,
        t0_accuracy_closed: t0_cl,
        final_accuracy_closed: final_cl,
        closed_regression: t0_cl - final_cl,
        min_closed_margin: min_gap,
        recovery_events: recovery_events as f64,
        energy_overhead_ratio: energy_ratio,
        bist_detection_rate,
        bist_false_positives,
        points: points.len() as f64,
    };

    println!(
        "→ at {:.0} K the unmanaged die loses {:.1} pp of accuracy over {device_hours} h of",
        summary.reference_temperature,
        100.0 * summary.unmanaged_drop
    );
    println!(
        "  retention decay; the closed loop ends {:.1} pp from its t=0 accuracy at a",
        100.0 * summary.closed_regression
    );
    println!(
        "  {:.2}× energy overhead — reliability bought in joules, on the ledger.",
        summary.energy_overhead_ratio
    );

    write_json("exp_lifetime", &points);
    let root = bench_root();
    std::fs::create_dir_all(&root).expect("cannot create bench root");
    let bench_path = root.join("BENCH_lifetime.json");
    std::fs::write(&bench_path, summary.to_json().to_string_pretty())
        .expect("cannot write BENCH_lifetime.json");
    println!("[wrote {}]", bench_path.display());
    ExitCode::SUCCESS
}
