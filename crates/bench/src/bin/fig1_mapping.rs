//! **Fig. 1 reproduction** — crossbar designs for MC-SpatialDropout
//! under the two conv mapping strategies:
//!
//! * strategy ① — kernels unfolded into columns of one large array,
//! * strategy ② — a `C_in × C_out` grid of `K×K` sub-arrays.
//!
//! For each strategy and a range of conv shapes, the bench reports the
//! physical arrays, dropout-module counts (SpinDrop vs spatial — the
//! paper's 9× reduction), and the per-inference energy of both dropout
//! designs (the 2.94× energy factor).
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin fig1_mapping
//! ```

use neuspin_bayes::Method;
use neuspin_bench::{row, write_json};
use neuspin_cim::{map_conv, ArrayLimit, ConvMapping, MappingReport};
use neuspin_energy::{estimate_method_energy, NetworkSpec};

#[derive(Debug)]
struct Fig1Entry {
    layer: String,
    strategy: String,
    crossbars: usize,
    shapes: Vec<(usize, usize)>,
    spindrop_modules: usize,
    spatial_modules: usize,
    module_reduction: f64,
}

neuspin_core::impl_to_json!(Fig1Entry { layer, strategy, crossbars, shapes, spindrop_modules, spatial_modules, module_reduction });

fn entry(name: &str, report: &MappingReport) -> Fig1Entry {
    Fig1Entry {
        layer: name.to_string(),
        strategy: report.strategy.map(|s| s.to_string()).unwrap_or_default(),
        crossbars: report.crossbar_count,
        shapes: report.crossbar_shapes.clone(),
        spindrop_modules: report.spindrop_modules,
        spatial_modules: report.spatial_modules,
        module_reduction: report.spatial_reduction(),
    }
}

fn main() {
    println!("== Fig. 1: MC-SpatialDropout crossbar mapping strategies ==\n");
    let limit = ArrayLimit::default();
    let layers = [
        ("conv 3→16 k3", 3, 16, 3),
        ("conv 16→32 k3", 16, 32, 3),
        ("conv 32→64 k3", 32, 64, 3),
        ("conv 6→16 k5 (LeNet)", 6, 16, 5),
        ("conv 64→128 k3", 64, 128, 3),
    ];

    let widths = [22, 34, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "layer".into(),
                "strategy".into(),
                "arrays".into(),
                "SpinDrop".into(),
                "spatial".into(),
                "reduction".into(),
            ],
            &widths
        )
    );
    println!("{}", "-".repeat(100));

    let mut entries = Vec::new();
    for (name, cin, cout, k) in layers {
        for strategy in [ConvMapping::UnfoldedColumns, ConvMapping::KernelTiled] {
            let report = map_conv(cin, cout, k, strategy, &limit);
            let e = entry(name, &report);
            println!(
                "{}",
                row(
                    &[
                        e.layer.clone(),
                        e.strategy.clone(),
                        e.crossbars.to_string(),
                        e.spindrop_modules.to_string(),
                        e.spatial_modules.to_string(),
                        format!("{:.1}×", e.module_reduction),
                    ],
                    &widths
                )
            );
            entries.push(e);
        }
    }

    println!("\n→ per-layer module reduction is K² (9× for 3×3, 25× for 5×5),");
    println!("  independent of the mapping strategy — the spatial module gates");
    println!("  either K·K consecutive word lines (①) or a whole sub-array (②).\n");

    // Energy side of Fig. 1: per-neuron vs per-map dropout on the
    // reference network.
    let spec = NetworkSpec::lenet_reference();
    let sd = estimate_method_energy(&spec, Method::SpinDrop);
    let sp = estimate_method_energy(&spec, Method::SpatialSpinDrop);
    println!("-- energy on {} ({} MC passes each) --", spec.name, sd.profile.passes);
    println!("  SpinDrop          {} / image (RNG share {})", sd.per_image, sd.breakdown.rng);
    println!("  Spatial-SpinDrop  {} / image (RNG share {})", sp.per_image, sp.breakdown.rng);
    println!(
        "  energy factor: {:.2}×  (paper: 2.94×)",
        sd.per_image.0 / sp.per_image.0
    );

    write_json("fig1_mapping", &entries);
}
