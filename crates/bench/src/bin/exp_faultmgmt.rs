//! **Active fault-management campaign**: BIST → spare-column repair →
//! fault-aware remap → uncertainty-gated abstention, swept over defect
//! rate × spare budget × abstention coverage target.
//!
//! For every (defect rate, spare budget) grid point two copies of the
//! same die (same seed) are compiled: one runs the full management
//! pipeline before calibration, the other is the do-nothing baseline.
//! Both are then scored on the test set; the managed copy additionally
//! reports gated accuracy at each abstention coverage target.
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_faultmgmt
//! NEUSPIN_BENCH_FAST=1 cargo run --release -p neuspin-bench --bin exp_faultmgmt
//! cargo run --release -p neuspin-bench --bin exp_faultmgmt -- --check
//! ```
//!
//! `NEUSPIN_BENCH_FAST=1` shrinks training and the sweep grid to a
//! CI-sized smoke run. `--check` re-parses `results/exp_faultmgmt.json`
//! and exits non-zero if the schema is wrong or any value is non-finite
//! (the CI gate).

use neuspin_bayes::Method;
use neuspin_bench::scenarios::faulty_hardware_config;
use neuspin_bench::{results_dir, write_json, Setup};
use neuspin_cim::BistConfig;
use neuspin_core::json;
use neuspin_core::HardwareModel;
use std::process::ExitCode;

#[derive(Debug)]
struct GridPoint {
    defect_rate: f64,
    spare_cols: f64,
    coverage_target: f64,
    accuracy_baseline: f64,
    accuracy_managed: f64,
    accuracy_on_accepted: f64,
    coverage: f64,
    repair_success_rate: f64,
    flagged: f64,
    abstain_threshold: f64,
}

neuspin_core::impl_to_json!(GridPoint {
    defect_rate,
    spare_cols,
    coverage_target,
    accuracy_baseline,
    accuracy_managed,
    accuracy_on_accepted,
    coverage,
    repair_success_rate,
    flagged,
    abstain_threshold
});

/// Keys every grid-point object must carry, all finite numbers.
const SCHEMA_KEYS: [&str; 10] = [
    "defect_rate",
    "spare_cols",
    "coverage_target",
    "accuracy_baseline",
    "accuracy_managed",
    "accuracy_on_accepted",
    "coverage",
    "repair_success_rate",
    "flagged",
    "abstain_threshold",
];

fn fast_mode() -> bool {
    std::env::var("NEUSPIN_BENCH_FAST").map(|v| v == "1").unwrap_or(false)
}

fn check_results() -> ExitCode {
    let path = results_dir().join("exp_faultmgmt.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check failed: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let value = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("check failed: invalid JSON in {}: {e:?}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let Some(points) = value.as_arr() else {
        eprintln!("check failed: top level must be an array of grid points");
        return ExitCode::FAILURE;
    };
    if points.is_empty() {
        eprintln!("check failed: empty campaign — no grid points written");
        return ExitCode::FAILURE;
    }
    for (i, point) in points.iter().enumerate() {
        for key in SCHEMA_KEYS {
            match point.get(key).and_then(json::Json::as_f64) {
                Some(v) if v.is_finite() => {}
                Some(v) => {
                    eprintln!("check failed: point {i} key {key} is non-finite ({v})");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("check failed: point {i} missing numeric key {key}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!("exp_faultmgmt.json: {} grid points, schema OK, all finite", points.len());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--check") {
        return check_results();
    }

    let fast = fast_mode();
    let setup = if fast {
        Setup { epochs: 2, train_images: 600, test_images: 96, calib_images: 48, passes: 6, ..Setup::quick() }
    } else {
        Setup::from_env()
    };
    let (defect_rates, spare_budgets, coverages): (Vec<f64>, Vec<usize>, Vec<f64>) = if fast {
        (vec![0.0, 0.01], vec![0, 4], vec![0.9])
    } else {
        (vec![0.0, 0.005, 0.01, 0.02], vec![0, 2, 4, 8], vec![0.7, 0.85, 0.95])
    };

    println!("== Active fault management: BIST + repair + remap + abstention ==\n");
    let (train, calib, test) = setup.datasets();
    eprintln!("training SpinDrop backbone ...");
    let mut model = setup.train(Method::SpinDrop, &train);

    let bist = BistConfig::default();
    let mut points = Vec::new();
    println!(
        "{:>8} {:>7} {:>9} {:>10} {:>9} {:>11} {:>9} {:>8}",
        "defect", "spares", "baseline", "managed", "gated", "coverage", "repair", "flagged"
    );
    for (di, &defect_rate) in defect_rates.iter().enumerate() {
        for (si, &spare_cols) in spare_budgets.iter().enumerate() {
            let hw_config = faulty_hardware_config(defect_rate, spare_cols, setup.passes);
            let point_tag = 0x10_000 + (di as u64) * 64 + si as u64;

            // Same die twice: identical compile seed, divergent care.
            let mut baseline_hw = HardwareModel::compile(
                &mut model,
                Method::SpinDrop,
                &setup.arch,
                &hw_config,
                &mut setup.rng(point_tag),
            );
            baseline_hw.calibrate(&calib.inputs, 2, &mut setup.rng(point_tag + 1));
            let base_pred = baseline_hw.predict(&test.inputs, &mut setup.rng(point_tag + 2));
            let accuracy_baseline = base_pred.accuracy(&test.labels);

            let mut managed_hw = HardwareModel::compile(
                &mut model,
                Method::SpinDrop,
                &setup.arch,
                &hw_config,
                &mut setup.rng(point_tag),
            );
            let report =
                managed_hw.fault_management(&bist, &mut setup.rng(point_tag + 3));
            managed_hw.calibrate(&calib.inputs, 2, &mut setup.rng(point_tag + 1));
            let managed_pred =
                managed_hw.predict(&test.inputs, &mut setup.rng(point_tag + 2));
            let accuracy_managed = managed_pred.accuracy(&test.labels);

            for (ci, &coverage_target) in coverages.iter().enumerate() {
                let threshold = managed_hw.calibrate_abstention(
                    &calib.inputs,
                    coverage_target,
                    &mut setup.rng(point_tag + 4 + ci as u64),
                );
                let (pred, gated) = managed_hw.predict_gated(
                    &test.inputs,
                    threshold,
                    &mut setup.rng(point_tag + 2),
                );
                let accuracy_on_accepted =
                    pred.accuracy_on_accepted(&test.labels, &gated);
                println!(
                    "{:>8.3} {:>7} {:>9.3} {:>10.3} {:>9.3} {:>11.3} {:>9.2} {:>8}",
                    defect_rate,
                    spare_cols,
                    accuracy_baseline,
                    accuracy_managed,
                    accuracy_on_accepted,
                    gated.coverage(),
                    report.repair_success_rate(),
                    report.total_flagged(),
                );
                points.push(GridPoint {
                    defect_rate,
                    spare_cols: spare_cols as f64,
                    coverage_target,
                    accuracy_baseline,
                    accuracy_managed,
                    accuracy_on_accepted,
                    coverage: gated.coverage(),
                    repair_success_rate: report.repair_success_rate(),
                    flagged: report.total_flagged() as f64,
                    abstain_threshold: threshold,
                });
            }
        }
    }

    println!("\n→ spares pay off once the defect rate reaches the per-column");
    println!("  fault probability; abstention trades coverage for accuracy on");
    println!("  whatever damage repair could not buy back.");
    write_json("exp_faultmgmt", &points);
    ExitCode::SUCCESS
}
