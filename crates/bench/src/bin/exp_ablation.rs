//! **Ablation study** of the deployment-flow design choices documented
//! in DESIGN.md ("Implementation notes and design decisions"):
//!
//! 1. post-training norm-statistics refresh (software),
//! 2. hardware norm calibration,
//! 3. closed-loop dropout-module tuning,
//! 4. SpinBayes 3·RMS quantization clip vs max-|w| clip.
//!
//! Each ablation removes exactly one mechanism and measures the
//! accuracy it was buying.
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_ablation
//! ```

use neuspin_bayes::{build_cnn, Method, SpinBayesConfig};
use neuspin_bench::{write_json, Setup};
use neuspin_cim::CrossbarConfig;
use neuspin_core::{HardwareConfig, HardwareModel};
use neuspin_device::{MtjParams, VariationModel, VariedParams};
use neuspin_nn::{evaluate, fit, refresh_norm_stats, Adam, TrainConfig};

#[derive(Debug)]
struct AblationRow {
    mechanism: String,
    with_pct: f64,
    without_pct: f64,
    delta_pp: f64,
}

neuspin_core::impl_to_json!(AblationRow { mechanism, with_pct, without_pct, delta_pp });

fn main() {
    let setup = Setup::from_env();
    println!("== Ablations of the deployment-flow design choices ==\n");
    let (train, calib, test) = setup.datasets();
    let mut rows: Vec<AblationRow> = Vec::new();

    let typical_corner = CrossbarConfig {
        corner: VariedParams::new(MtjParams::default(), VariationModel::typical()),
        read_noise: 0.01,
        adc_bits: Some(6),
        ..CrossbarConfig::default()
    };

    // ---------------- 1. norm-statistics refresh (software) ----------------
    {
        eprintln!("[1/4] norm-statistics refresh ...");
        // Train WITHOUT the harness's built-in refresh, then measure the
        // effect of applying it. Averaged over three seeds because the
        // failure is bimodal (that is the point of the mechanism).
        let mut with = 0.0;
        let mut without = 0.0;
        for seed_tag in [4u64, 9, 12] {
            let mut rng = setup.rng(seed_tag);
            let mut model = build_cnn(Method::Deterministic, &setup.arch, &mut rng);
            let mut opt = Adam::new(0.003);
            let cfg = TrainConfig { epochs: setup.epochs, batch_size: 64, ..Default::default() };
            fit(&mut model, &train, &mut opt, &cfg, &mut rng);
            without += evaluate(&mut model, &test, &mut rng);
            refresh_norm_stats(&mut model, &train, 2, &mut rng);
            with += evaluate(&mut model, &test, &mut rng);
        }
        rows.push(AblationRow {
            mechanism: "post-training norm refresh (sw, 3 seeds)".into(),
            with_pct: 100.0 * with / 3.0,
            without_pct: 100.0 * without / 3.0,
            delta_pp: 100.0 * (with - without) / 3.0,
        });
    }

    // Shared trained model for the hardware ablations.
    eprintln!("[2/4] hardware calibration ...");
    let mut spatial = setup.train(Method::SpatialSpinDrop, &train);

    // ---------------- 2. hardware norm calibration ----------------
    {
        let run = |calibrate: bool, model: &mut neuspin_nn::Sequential| -> f64 {
            let mut rng = setup.rng(901);
            let config = HardwareConfig {
                crossbar: typical_corner,
                passes: setup.passes.min(12),
                ..HardwareConfig::default()
            };
            let mut hw = HardwareModel::compile(
                model,
                Method::SpatialSpinDrop,
                &setup.arch,
                &config,
                &mut rng,
            );
            if calibrate {
                hw.calibrate(&calib.inputs, 2, &mut rng);
            }
            hw.predict(&test.inputs, &mut rng).accuracy(&test.labels)
        };
        let with = run(true, &mut spatial);
        let without = run(false, &mut spatial);
        rows.push(AblationRow {
            mechanism: "hardware norm calibration".into(),
            with_pct: 100.0 * with,
            without_pct: 100.0 * without,
            delta_pp: 100.0 * (with - without),
        });
    }

    // ---------------- 3. closed-loop module tuning ----------------
    {
        eprintln!("[3/4] module tuning ...");
        let run = |tuning_bits: u32, model: &mut neuspin_nn::Sequential| -> f64 {
            let mut rng = setup.rng(902);
            let config = HardwareConfig {
                crossbar: typical_corner,
                passes: setup.passes.min(12),
                module_tuning_bits: tuning_bits,
                ..HardwareConfig::default()
            };
            let mut hw = HardwareModel::compile(
                model,
                Method::SpatialSpinDrop,
                &setup.arch,
                &config,
                &mut rng,
            );
            hw.calibrate(&calib.inputs, 2, &mut rng);
            hw.predict(&test.inputs, &mut rng).accuracy(&test.labels)
        };
        let with = run(150, &mut spatial);
        let without = run(0, &mut spatial);
        rows.push(AblationRow {
            mechanism: "closed-loop dropout-module tuning".into(),
            with_pct: 100.0 * with,
            without_pct: 100.0 * without,
            delta_pp: 100.0 * (with - without),
        });
    }

    // ---------------- 4. SpinBayes quantization clip ----------------
    {
        eprintln!("[4/4] SpinBayes quantization clip ...");
        let mut backbone = setup.train(Method::SpinBayes, &train);
        // The 3·RMS clip lives inside compile; emulate "without" by
        // raising rel range through levels: compare default levels=9
        // (clip active, built-in) against a ladder that must span the
        // full weight range with the same 9 levels. The built-in clip
        // is exercised by compile; the no-clip variant widens w_max by
        // compiling with a huge rel_sigma=0 and levels such that the
        // step matches max-|w| spacing — emulated via levels=3 coarse.
        // Direct comparison: 9 levels (clip) vs 3 levels (the effective
        // resolution the bulk of the distribution gets without a clip).
        let run = |levels: usize, model: &mut neuspin_nn::Sequential| -> f64 {
            let mut rng = setup.rng(903);
            let config = HardwareConfig {
                crossbar: typical_corner,
                passes: setup.passes.min(12),
                spinbayes: SpinBayesConfig { levels, rel_sigma: 0.1, ..Default::default() },
                ..HardwareConfig::default()
            };
            let mut hw = HardwareModel::compile(
                model,
                Method::SpinBayes,
                &setup.arch,
                &config,
                &mut rng,
            );
            hw.calibrate(&calib.inputs, 2, &mut rng);
            hw.predict(&test.inputs, &mut rng).accuracy(&test.labels)
        };
        let with = run(9, &mut backbone);
        let without = run(3, &mut backbone);
        rows.push(AblationRow {
            mechanism: "SpinBayes 9-level ladder (vs 3-level effective resolution)".into(),
            with_pct: 100.0 * with,
            without_pct: 100.0 * without,
            delta_pp: 100.0 * (with - without),
        });
    }

    println!(
        "\n{:<52} {:>8} {:>9} {:>8}",
        "mechanism", "with", "without", "Δ"
    );
    println!("{}", "-".repeat(82));
    for r in &rows {
        println!(
            "{:<52} {:>7.2}% {:>8.2}% {:>+7.2}",
            r.mechanism, r.with_pct, r.without_pct, r.delta_pp
        );
    }
    println!("\n→ each mechanism pays for itself; the refresh and tuning entries");
    println!("  are the two failure modes a naive port of the algorithms to");
    println!("  binary/spintronic hardware would hit first.");

    write_json("exp_ablation", &rows);
}
