//! **Fig. 3 reproduction** — the SpinBayes layer topology: `N`
//! quantized posterior instances in multi-value SOT crossbars, selected
//! per forward pass by a stochastic one-hot Arbiter.
//!
//! The bench sweeps the two design knobs of the in-memory
//! approximation:
//! * instance count `N` (posterior capacity ↔ area),
//! * conductance levels per cell (quantization ↔ MTJs per cell),
//!
//! and reports hardware accuracy, uncertainty quality (OOD AUROC), and
//! arbiter sampling cost for each point.
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin fig3_spinbayes
//! ```

use neuspin_bayes::{auroc, Method, SpinBayesConfig};
use neuspin_bench::{write_json, Setup};
use neuspin_core::{HardwareConfig, HardwareModel};
use neuspin_data::ood::uniform_noise;

#[derive(Debug)]
struct Fig3Point {
    instances: usize,
    levels: usize,
    arbiter_bits_per_pass: usize,
    hardware_accuracy: f64,
    ood_auroc: f64,
    mean_id_entropy: f64,
}

neuspin_core::impl_to_json!(Fig3Point { instances, levels, arbiter_bits_per_pass, hardware_accuracy, ood_auroc, mean_id_entropy });

fn main() {
    let setup = Setup::from_env();
    println!("== Fig. 3: SpinBayes topology (N instances + Arbiter) ==\n");

    let (train, calib, test) = setup.datasets();
    let mut model = setup.train(Method::SpinBayes, &train);
    let mut rng = setup.rng(33);
    let ood = uniform_noise(test.len(), &mut rng);

    let mut points = Vec::new();

    println!(
        "{:<12} {:<8} {:<14} {:<10} {:<10} {:<10}",
        "instances", "levels", "arbiter bits", "hw acc", "OOD AUROC", "ID entropy"
    );
    println!("{}", "-".repeat(68));

    for &(instances, levels) in
        &[(1usize, 9usize), (2, 9), (4, 9), (8, 9), (16, 9), (8, 3), (8, 5), (8, 17)]
    {
        let mut r = setup.rng(34 + instances as u64 * 100 + levels as u64);
        let config = HardwareConfig {
            spinbayes: SpinBayesConfig {
                instances,
                levels,
                rel_sigma: 0.12,
                ..SpinBayesConfig::default()
            },
            passes: setup.passes,
            ..HardwareConfig::default()
        };
        let mut hw =
            HardwareModel::compile(&mut model, Method::SpinBayes, &setup.arch, &config, &mut r);
        hw.calibrate(&calib.inputs, 2, &mut r);
        let pred = hw.predict(&test.inputs, &mut r);
        let pred_ood = hw.predict(&ood.inputs, &mut r);
        let acc = pred.accuracy(&test.labels);
        let roc = auroc(&pred_ood.entropy, &pred.entropy);
        let id_entropy = pred.entropy.iter().sum::<f64>() / pred.entropy.len() as f64;
        let bits = (usize::BITS - (instances.max(2) - 1).leading_zeros()) as usize
            * if instances > 1 { 1 } else { 0 };
        println!(
            "{:<12} {:<8} {:<14} {:<10.2} {:<10.3} {:<10.3}",
            instances,
            levels,
            bits,
            100.0 * acc,
            roc,
            id_entropy
        );
        points.push(Fig3Point {
            instances,
            levels,
            arbiter_bits_per_pass: bits,
            hardware_accuracy: acc,
            ood_auroc: roc,
            mean_id_entropy: id_entropy,
        });
    }

    println!("\n→ one instance = deterministic quantized net (no epistemic");
    println!("  signal); more instances buy posterior capacity at ⌈log₂N⌉");
    println!("  arbiter bits per layer per pass — the memory-friendly");
    println!("  distribution of the Bayesian in-memory approximation.");
    println!("→ coarse levels (3) hurt accuracy; ≥9 levels recover the");
    println!("  full-precision decision boundary (CIM-aware post-training");
    println!("  quantization with multi-value MTJ cells).");

    write_json("fig3_spinbayes", &points);
}
