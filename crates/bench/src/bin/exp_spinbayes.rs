//! **SpinBayes experiment** (§III-B2): classification + toy semantic
//! segmentation with the Bayesian in-memory approximation, plus OOD
//! detection through the instance ensemble.
//!
//! The segmentation task follows the paper's evaluation pattern
//! (safety-critical segmentation) on the synthetic shapes set: a
//! patch-based per-pixel classifier is trained full-precision, then
//! converted to `N` quantized posterior instances selected by the
//! Arbiter.
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_spinbayes
//! ```

use neuspin_bayes::{
    auroc, calibrate_norm, mc_predict, spinbayes_from_mlp, Method, SpinBayesConfig,
};
use neuspin_bench::{write_json, Setup};
use neuspin_data::ood::uniform_noise;
use neuspin_data::shapes::{self, mean_iou, pixel_accuracy, SegDataset};
use neuspin_nn::{
    cross_entropy, BatchNorm, Flatten, HardTanh, Linear, Mode, Optimizer, Sequential, Tensor,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const PATCH: usize = 5; // 5×5 neighbourhood per pixel
const HIDDEN: usize = 32;

#[derive(Debug)]
struct SpinBayesReport {
    fp_pixel_accuracy: f64,
    spinbayes_pixel_accuracy: f64,
    fp_mean_iou: f64,
    spinbayes_mean_iou: f64,
    ood_auroc_classification: f64,
    classification_accuracy: f64,
}

neuspin_core::impl_to_json!(SpinBayesReport { fp_pixel_accuracy, spinbayes_pixel_accuracy, fp_mean_iou, spinbayes_mean_iou, ood_auroc_classification, classification_accuracy });

/// Extracts the 5×5 patch (zero-padded) around every pixel of every
/// image: `[n·256, 25]` plus per-pixel labels.
fn patches(data: &SegDataset) -> (Tensor, Vec<usize>) {
    let n = data.len();
    let side = shapes::SIDE;
    let half = PATCH / 2;
    let mut out = Vec::with_capacity(n * side * side * PATCH * PATCH);
    for img in 0..n {
        let base = img * side * side;
        for y in 0..side {
            for x in 0..side {
                for dy in 0..PATCH {
                    for dx in 0..PATCH {
                        let sy = y as isize + dy as isize - half as isize;
                        let sx = x as isize + dx as isize - half as isize;
                        let v = if sy >= 0 && sx >= 0 && (sy as usize) < side && (sx as usize) < side
                        {
                            data.inputs.as_slice()[base + sy as usize * side + sx as usize]
                        } else {
                            0.0
                        };
                        out.push(v);
                    }
                }
            }
        }
    }
    let count = n * side * side;
    (
        Tensor::from_vec(out, &[count, 1, PATCH, PATCH]),
        data.pixel_labels.clone(),
    )
}

fn patch_model(rng: &mut StdRng) -> Sequential {
    let mut m = Sequential::new();
    m.push(Flatten::new());
    m.push(Linear::new(PATCH * PATCH, HIDDEN, rng));
    m.push(BatchNorm::new(HIDDEN));
    m.push(HardTanh::new());
    m.push(Linear::new(HIDDEN, shapes::CLASSES, rng));
    m
}

fn main() {
    let setup = Setup::from_env();
    let mut rng = StdRng::seed_from_u64(setup.seed ^ 0x5B);
    println!("== SpinBayes: segmentation + classification with the in-memory posterior ==\n");

    // ---------- segmentation ----------
    let train = shapes::dataset(if setup.epochs < 5 { 40 } else { 120 }, 0.15, &mut rng);
    let test = shapes::dataset(30, 0.15, &mut rng);
    let (x_train, y_train) = patches(&train);
    let (x_test, y_test) = patches(&test);

    eprintln!("training per-pixel patch classifier ({} patches) ...", x_train.shape()[0]);
    let mut model = patch_model(&mut rng);
    let mut opt = neuspin_nn::Adam::new(0.003);
    let n = x_train.shape()[0];
    for _ in 0..3 {
        let order = neuspin_nn::shuffled_indices(n, &mut rng);
        for chunk in order.chunks(256) {
            let mut xs = Vec::with_capacity(chunk.len() * PATCH * PATCH);
            let mut ys = Vec::with_capacity(chunk.len());
            for &i in chunk {
                xs.extend_from_slice(
                    &x_train.as_slice()[i * PATCH * PATCH..(i + 1) * PATCH * PATCH],
                );
                ys.push(y_train[i]);
            }
            let x = Tensor::from_vec(xs, &[chunk.len(), 1, PATCH, PATCH]);
            model.zero_grad();
            let logits = model.forward(&x, Mode::Train, &mut rng);
            let (_, grad) = cross_entropy(&logits, &ys);
            model.backward(&grad);
            opt.step(&mut model);
        }
    }

    // Full-precision evaluation.
    let fp_logits = model.forward(&x_test, Mode::Eval, &mut rng);
    let fp_pred = fp_logits.argmax_rows();
    let fp_acc = pixel_accuracy(&fp_pred, &y_test);
    let fp_iou = mean_iou(&fp_pred, &y_test, shapes::CLASSES);

    // SpinBayes conversion: quantized posterior instances + arbiter.
    let config = SpinBayesConfig { instances: 8, levels: 9, rel_sigma: 0.08, w_max: 1.0 };
    let mut sb = spinbayes_from_mlp(&mut model, HIDDEN, shapes::CLASSES, &config, &mut rng);
    calibrate_norm(&mut sb, &x_test, &mut rng);
    let sb_mc = mc_predict(&mut sb, &x_test, setup.passes.min(12), &mut rng);
    let sb_pred = sb_mc.predictions();
    let sb_acc = pixel_accuracy(&sb_pred, &y_test);
    let sb_iou = mean_iou(&sb_pred, &y_test, shapes::CLASSES);

    println!("-- toy semantic segmentation (3 classes, 16×16) --");
    println!("  full-precision:      pixel acc {:.2}%  mIoU {:.3}", 100.0 * fp_acc, fp_iou);
    println!("  SpinBayes (N=8, 9L): pixel acc {:.2}%  mIoU {:.3}", 100.0 * sb_acc, sb_iou);
    println!(
        "  accuracy gap: {:+.2} pp (paper: within ~1 % of full precision)",
        100.0 * (sb_acc - fp_acc)
    );

    // ---------- classification + OOD ----------
    println!("\n-- digit classification + OOD (via hardware-free SpinBayes MLP) --");
    let (train_d, _c, test_d) = setup.datasets();
    eprintln!("training digit backbone ...");
    let mut backbone = setup.train(Method::SpinBayes, &train_d);
    // The CNN backbone's classification through hardware is covered by
    // table1/fig3; here evaluate the *algorithmic* posterior ensemble on
    // uncertainty quality with the patch-free MLP path.
    let mut rng2 = setup.rng(90);
    let cls = mc_predict(&mut backbone, &test_d.inputs, setup.passes, &mut rng2);
    let acc = cls.accuracy(&test_d.labels);
    let noise = uniform_noise(test_d.len(), &mut rng2);
    let cls_ood = mc_predict(&mut backbone, &noise.inputs, setup.passes, &mut rng2);
    let roc = auroc(&cls_ood.entropy, &cls.entropy);
    println!("  classification accuracy: {:.2}%", 100.0 * acc);
    println!("  uniform-noise OOD AUROC: {roc:.3} (paper: up to 100 % detection)");

    write_json(
        "exp_spinbayes",
        &SpinBayesReport {
            fp_pixel_accuracy: fp_acc,
            spinbayes_pixel_accuracy: sb_acc,
            fp_mean_iou: fp_iou,
            spinbayes_mean_iou: sb_iou,
            ood_auroc_classification: roc,
            classification_accuracy: acc,
        },
    );
}
