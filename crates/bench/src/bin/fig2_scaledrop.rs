//! **Fig. 2 reproduction** — the Scale-Dropout inference architecture:
//! a SOT-MRAM crossbar, an SRAM scale memory, and a *single* stochastic
//! scale-dropout module per layer.
//!
//! The bench characterises the architecture:
//! 1. the Gaussian spread of the module's realized drop probability
//!    under device variation (the paper models p as a fitted Gaussian);
//! 2. RNG-bit and energy comparison against per-neuron and per-map
//!    dropout at equal sampling budget (the >100× saving);
//! 3. the layer-dependent adaptive dropout probability.
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin fig2_scaledrop
//! ```

use neuspin_bayes::Method;
use neuspin_bench::write_json;
use neuspin_cim::ScaleDropModule;
use neuspin_device::{stats::Running, MtjParams, VariationModel, VariedParams};
use neuspin_energy::{
    estimate_method_energy, estimate_method_latency, LatencyModel, MethodProfile, NetworkSpec,
};
use neuspin_nn::ScaleDrop;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug)]
struct Fig2Report {
    realized_p_mean: f64,
    realized_p_std: f64,
    tuned_p_mean: f64,
    tuned_p_std: f64,
    rng_bits_per_pass: Vec<(String, u64)>,
    energy_per_image_uj: Vec<(String, f64)>,
    adaptive_p: Vec<(usize, f32)>,
}

neuspin_core::impl_to_json!(Fig2Report { realized_p_mean, realized_p_std, tuned_p_mean, tuned_p_std, rng_bits_per_pass, energy_per_image_uj, adaptive_p });

fn main() {
    let mut rng = StdRng::seed_from_u64(20_24);
    println!("== Fig. 2: Scale-Dropout inference architecture ==\n");

    // 1. The stochastic module's realized p is a random variable.
    let corner = VariedParams::new(MtjParams::default(), VariationModel::typical());
    let target = 0.25;
    let mut open_loop = Running::new();
    let mut closed_loop = Running::new();
    for _ in 0..200 {
        let mut module = ScaleDropModule::new(target, 64, corner, &mut rng);
        open_loop.push(module.realized_p());
        module.tune(200, 0.01, &mut rng);
        closed_loop.push(module.realized_p());
    }
    println!("-- realized drop probability across 200 fabricated modules (target {target}) --");
    println!(
        "  open loop (design-time bias): mean {:.3}, σ {:.3}  ← the Gaussian p model of the paper",
        open_loop.mean(),
        open_loop.std()
    );
    println!(
        "  closed loop (tuned):          mean {:.3}, σ {:.3}",
        closed_loop.mean(),
        closed_loop.std()
    );

    // 2. RNG bits and energy at the publication sampling budgets.
    let spec = NetworkSpec::lenet_reference();
    println!("\n-- stochastic-unit cost on {} --", spec.name);
    let mut bits = Vec::new();
    let mut energy = Vec::new();
    for method in [Method::SpinDrop, Method::SpatialSpinDrop, Method::SpinScaleDrop] {
        let profile = MethodProfile::of(method);
        let per_pass = profile.rng_bits_per_pass(&spec);
        let est = estimate_method_energy(&spec, method);
        println!(
            "  {:<18} {:>8} RNG bits/pass   {} / image total",
            method.to_string(),
            per_pass,
            est.per_image
        );
        bits.push((method.to_string(), per_pass));
        energy.push((method.to_string(), est.per_image.micro()));
    }
    let reduction = bits[0].1 as f64 / bits[2].1 as f64;
    println!("\n  per-neuron → per-layer RNG reduction: {reduction:.0}×  (paper: >100× energy saving)");

    // 3. Sampling latency (§II-D: the "shear number of dropout modules"
    //    makes per-neuron sampling slow as well as hungry).
    println!("\n-- per-image latency (8 shared RNG banks) --");
    let lat_model = LatencyModel::default();
    for method in [Method::SpinDrop, Method::SpatialSpinDrop, Method::SpinScaleDrop] {
        let l = estimate_method_latency(&spec, method, &lat_model);
        println!(
            "  {:<18} total {:.3} ms (crossbar {:.3} ms, RNG {:.3} ms)",
            method.to_string(),
            l.total() * 1e3,
            l.crossbar * 1e3,
            l.rng * 1e3
        );
    }

    // 4. Layer-dependent adaptive dropout probability.
    println!("\n-- adaptive p = base·min(1, log10(#params)/6), base 0.2 --");
    let mut adaptive = Vec::new();
    for params in [100usize, 1_000, 10_000, 100_000, 1_000_000, 10_000_000] {
        let p = ScaleDrop::adaptive_p(0.2, params);
        println!("  layer with {params:>9} params → p = {p:.3}");
        adaptive.push((params, p));
    }

    write_json(
        "fig2_scaledrop",
        &Fig2Report {
            realized_p_mean: open_loop.mean(),
            realized_p_std: open_loop.std(),
            tuned_p_mean: closed_loop.mean(),
            tuned_p_std: closed_loop.std(),
            rng_bits_per_pass: bits,
            energy_per_image_uj: energy,
            adaptive_p: adaptive,
        },
    );
}
