//! **Device characterization** (§II-A): the spintronic substrate's
//! behaviour as measured by the simulator —
//!
//! 1. the switching-probability sigmoid `P_sw(I)` at several pulse
//!    widths (the tunable-Bernoulli primitive),
//! 2. RNG calibration error: open-loop vs closed-loop across process
//!    variation strengths,
//! 3. crossbar weight-error statistics vs variation and defect rate.
//!
//! ```sh
//! cargo run --release -p neuspin-bench --bin exp_device
//! ```

use neuspin_bench::write_json;
use neuspin_cim::{Crossbar, CrossbarConfig};
use neuspin_core::Series;
use neuspin_device::{
    stats::Running, DefectRates, MtjParams, SpinRng, SwitchingModel, VariationModel, VariedParams,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug)]
struct DeviceReport {
    psw_curves: Vec<Series>,
    calibration_error: Vec<Series>,
    weight_error: Vec<Series>,
}

neuspin_core::impl_to_json!(DeviceReport { psw_curves, calibration_error, weight_error });

fn main() {
    let mut rng = StdRng::seed_from_u64(0xDE71CE);
    let params = MtjParams::default();
    let model = SwitchingModel::from_params(&params);
    println!("== Device characterization ==\n");

    // 1. P_sw(I) sigmoids.
    println!("-- P_sw vs I/Ic at three pulse widths --");
    let fractions: Vec<f64> = (60..=120).step_by(4).map(|f| f as f64 / 100.0).collect();
    let mut psw_curves = Vec::new();
    for (label, width) in [("3 ns", 3e-9), ("10 ns", 10e-9), ("30 ns", 30e-9)] {
        let ps: Vec<f64> = fractions
            .iter()
            .map(|f| model.probability(f * params.critical_current, width))
            .collect();
        let p50 = model.current_for_probability(0.5, width) / params.critical_current;
        println!("  {label}: p=0.5 at I = {p50:.3}·Ic");
        psw_curves.push(Series::new(label, fractions.clone(), ps));
    }

    // 2. Calibration error vs variation strength.
    println!("\n-- |realized p − 0.5| across 100 devices per corner --");
    println!("{:<12} {:>14} {:>14}", "variation σ", "open loop", "closed loop");
    let sigmas = [0.0, 0.02, 0.05, 0.10, 0.15];
    let mut open_series = Vec::new();
    let mut closed_series = Vec::new();
    for &sigma in &sigmas {
        let corner = VariedParams::new(params, VariationModel::uniform(sigma));
        let mut open = Running::new();
        let mut closed = Running::new();
        for _ in 0..100 {
            let mut module = SpinRng::new(corner, &mut rng);
            open.push(module.calibrate_nominal(0.5).abs_error());
            closed.push(module.calibrate_measured(0.5, 300, 0.01, 25, &mut rng).abs_error());
        }
        println!("{:<12} {:>14.4} {:>14.4}", sigma, open.mean(), closed.mean());
        open_series.push(open.mean());
        closed_series.push(closed.mean());
    }
    let calibration_error = vec![
        Series::new("open-loop", sigmas.to_vec(), open_series),
        Series::new("closed-loop", sigmas.to_vec(), closed_series),
    ];

    // 3. Crossbar weight error.
    println!("\n-- crossbar effective-weight RMS error (64×64, |w|=1) --");
    println!("{:<16} {:>12}", "corner", "RMS error");
    let mut we_x = Vec::new();
    let mut we_y = Vec::new();
    for &sigma in &[0.0, 0.02, 0.05, 0.10, 0.15] {
        let config = CrossbarConfig {
            corner: VariedParams::new(params, VariationModel::uniform(sigma)),
            ..CrossbarConfig::ideal()
        };
        let w: Vec<f32> = (0..64 * 64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let xbar = Crossbar::program(&w, 64, 64, &config, &mut rng);
        let mut err = Running::new();
        for r in 0..64 {
            for c in 0..64 {
                let target = w[r * 64 + c] as f64;
                err.push((xbar.effective_weight(r, c) - target).powi(2));
            }
        }
        let val = err.mean().sqrt();
        println!("{:<16} {:>12.4}", format!("variation {sigma}"), val);
        we_x.push(sigma);
        we_y.push(val);
    }
    // Defects at fixed variation.
    let mut defect_x = Vec::new();
    let mut defect_y = Vec::new();
    for &rate in &[0.0, 0.005, 0.01, 0.02, 0.05] {
        let config = CrossbarConfig {
            defect_rates: DefectRates::uniform(rate / 4.0),
            ..CrossbarConfig::ideal()
        };
        let w: Vec<f32> = (0..64 * 64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let xbar = Crossbar::program(&w, 64, 64, &config, &mut rng);
        let mut err = Running::new();
        for r in 0..64 {
            for c in 0..64 {
                let target = w[r * 64 + c] as f64;
                err.push((xbar.effective_weight(r, c) - target).powi(2));
            }
        }
        let val = err.mean().sqrt();
        println!("{:<16} {:>12.4}", format!("defects {rate}"), val);
        defect_x.push(rate);
        defect_y.push(val);
    }
    let weight_error = vec![
        Series::new("variation", we_x, we_y),
        Series::new("defects", defect_x, defect_y),
    ];

    println!("\n→ the Δ≈60 thermal-stability exponent makes open-loop RNG bias");
    println!("  hypersensitive to variation — the reason NeuSpin treats realized");
    println!("  dropout probability as a random variable (Fig. 2) and why");
    println!("  closed-loop tuning is part of the deployment flow.");

    write_json("exp_device", &DeviceReport { psw_curves, calibration_error, weight_error });
}
