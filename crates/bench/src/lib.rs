//! # neuspin-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus
//! built-in micro-benchmarks (see `benches/` and [`timing`]). Every binary prints a
//! human-readable table *and* writes machine-readable JSON under
//! `results/`.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table I — accuracy + energy per method |
//! | `fig1_mapping` | Fig. 1 — conv mapping strategies ① / ② |
//! | `fig2_scaledrop` | Fig. 2 — scale-dropout architecture |
//! | `fig3_spinbayes` | Fig. 3 — SpinBayes topology |
//! | `exp_ood` | §III OOD-detection claims |
//! | `exp_corrupt` | corrupted-data accuracy claims |
//! | `exp_selfheal` | §III-A4 self-healing under variation/drift |
//! | `exp_faultmgmt` | §II-B BIST + repair + remap + abstention campaign |
//! | `exp_lstm` | §III-A4 LSTM time-series RMSE |
//! | `exp_subset_vi` | §III-B1 memory / power ratios, NLL shift |
//! | `exp_spinbayes` | §III-B2 instance-count study + segmentation |
//! | `exp_device` | §II-A device characterization |
//! | `exp_serving` | edge serving: fleet failover under mid-traffic degradation |

use neuspin_bayes::{build_cnn, ArchConfig, Method};
use neuspin_core::json::ToJson;
use neuspin_data::digits::{dataset, DigitStyle};
use neuspin_nn::{fit, refresh_norm_stats, Adam, Dataset, Sequential, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

pub mod allocs;
pub mod scenarios;
pub mod timing;

/// Where result JSON files land (`results/` at the workspace root).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("NEUSPIN_RESULTS").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    std::fs::create_dir_all(&path).expect("cannot create results dir");
    path
}

/// Serializes `value` to `results/<name>.json` (pretty-printed, via the
/// workspace's hand-rolled JSON writer in `neuspin_core::json`).
pub fn write_json<T: ToJson>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = value.to_json().to_string_pretty();
    std::fs::write(&path, json).expect("cannot write result file");
    println!("\n[wrote {}]", path.display());
}

/// The standard experiment setup shared by the training-based benches.
#[derive(Debug, Clone)]
pub struct Setup {
    /// Architecture of the method CNN.
    pub arch: ArchConfig,
    /// Dataset style.
    pub style: DigitStyle,
    /// Training images.
    pub train_images: usize,
    /// Test images.
    pub test_images: usize,
    /// Calibration images for hardware norm statistics.
    pub calib_images: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Monte-Carlo passes for Bayesian evaluation.
    pub passes: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Setup {
    fn default() -> Self {
        Self {
            arch: ArchConfig::default(),
            style: DigitStyle::default(),
            train_images: 4_000,
            test_images: 512,
            calib_images: 256,
            epochs: 10,
            passes: 16,
            seed: 0xBA5E,
        }
    }
}

impl Setup {
    /// A fast setup for smoke-testing the harness.
    pub fn quick() -> Self {
        Self {
            train_images: 800,
            test_images: 128,
            calib_images: 64,
            epochs: 3,
            passes: 6,
            ..Self::default()
        }
    }

    /// Reads `NEUSPIN_QUICK=1` to switch to the quick setup.
    pub fn from_env() -> Self {
        if std::env::var("NEUSPIN_QUICK").map(|v| v == "1").unwrap_or(false) {
            Self::quick()
        } else {
            Self::default()
        }
    }

    /// Seeded RNG for stage `tag`.
    pub fn rng(&self, tag: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ (tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Generates the train/calib/test datasets.
    pub fn datasets(&self) -> (Dataset, Dataset, Dataset) {
        let mut rng = self.rng(1);
        let train = dataset(self.train_images, &self.style, &mut rng);
        let calib = dataset(self.calib_images, &self.style, &mut rng);
        let test = dataset(self.test_images, &self.style, &mut rng);
        (train, calib, test)
    }

    /// Trains the method CNN (SpinBayes trains the deterministic
    /// backbone — its posterior is built at compile time).
    pub fn train(&self, method: Method, train: &Dataset) -> Sequential {
        let software_method =
            if method == Method::SpinBayes { Method::Deterministic } else { method };
        let mut rng = self.rng(2 ^ method as u64);
        let mut model = build_cnn(software_method, &self.arch, &mut rng);
        let mut opt = Adam::new(0.003);
        let reg = match method {
            Method::SpinScaleDrop => 1e-4, // scale centring regularizer
            Method::SubsetVi => 2e-4,      // KL / ELBO weight
            _ => 0.0,
        };
        let cfg = TrainConfig {
            epochs: self.epochs,
            batch_size: 64,
            reg_strength: reg,
            ..Default::default()
        };
        fit(&mut model, train, &mut opt, &cfg, &mut rng);
        // Re-estimate norm statistics under the final (frozen) binary
        // weights; without this, eval accuracy of binary nets is a
        // lottery (running stats lag the last sign flips).
        refresh_norm_stats(&mut model, train, 2, &mut rng);
        model
    }
}

/// Prints a markdown-ish table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:<w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_setup_is_smaller() {
        let q = Setup::quick();
        let d = Setup::default();
        assert!(q.train_images < d.train_images);
        assert!(q.epochs < d.epochs);
    }

    #[test]
    fn rngs_differ_by_tag() {
        use rand::RngExt;
        let s = Setup::default();
        let a: u64 = s.rng(1).random();
        let b: u64 = s.rng(2).random();
        assert_ne!(a, b);
    }

    #[test]
    fn datasets_have_requested_sizes() {
        let s = Setup::quick();
        let (train, calib, test) = s.datasets();
        assert_eq!(train.len(), 800);
        assert_eq!(calib.len(), 64);
        assert_eq!(test.len(), 128);
    }

    #[test]
    fn row_formats_with_widths() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "a    bb  ");
    }
}
