//! SpinBayes: Bayesian in-memory approximation (§III-B2, Fig. 3).
//!
//! The idea: instead of sampling weights on the fly (expensive in CIM),
//! approximate the posterior by `N` *pre-programmed, quantized* weight
//! instances per layer — each instance lives in its own multi-level
//! crossbar — and let a stochastic Arbiter pick one instance per
//! forward pass. Sampling then costs `⌈log₂N⌉` RNG bits per layer per
//! pass instead of one gaussian per weight.
//!
//! [`SpinBayesLinear`] is the software model of such a layer:
//! inference-only (built *post-training* from a trained layer), with
//! CIM-aware post-training quantization baked into each instance.

use neuspin_nn::{Layer, Mode, Param, Tensor};
use rand::rngs::StdRng;
use rand::RngExt;

/// Quantizes a value to `levels` uniform levels over `[-w_max, w_max]`
/// (saturating) — the CIM-aware post-training quantization.
///
/// # Panics
///
/// Panics if `levels < 2` or `w_max <= 0`.
pub fn quantize(w: f32, levels: usize, w_max: f32) -> f32 {
    assert!(levels >= 2, "need at least two levels");
    assert!(w_max > 0.0, "w_max must be positive");
    let steps = (levels - 1) as f32;
    let clipped = w.clamp(-w_max, w_max);
    let frac = (clipped + w_max) / (2.0 * w_max);
    let level = (frac * steps).round();
    (level / steps) * 2.0 * w_max - w_max
}

/// Configuration of the in-memory posterior approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpinBayesConfig {
    /// Number of posterior instances (crossbars) per layer.
    pub instances: usize,
    /// Conductance levels per cell (multi-level MTJ design).
    pub levels: usize,
    /// Relative posterior std: instance weights are sampled from
    /// `N(w, (rel_sigma · rms(W))²)` around the trained weights.
    pub rel_sigma: f32,
    /// Weight clipping range for quantization.
    pub w_max: f32,
}

impl Default for SpinBayesConfig {
    fn default() -> Self {
        Self { instances: 8, levels: 9, rel_sigma: 0.1, w_max: 1.0 }
    }
}

/// An inference-only linear layer whose weight posterior is
/// approximated by `N` quantized instances; each forward pass selects
/// one uniformly at random (the Arbiter's one-hot selection).
///
/// # Examples
///
/// ```
/// use neuspin_bayes::spinbayes::{SpinBayesConfig, SpinBayesLinear};
/// use neuspin_nn::{Layer, Mode, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let w = Tensor::from_vec(vec![0.5, -0.5, 0.25, 0.75], &[2, 2]);
/// let b = Tensor::zeros(&[2]);
/// let layer = SpinBayesLinear::from_weights(&w, &b, &SpinBayesConfig::default(), &mut rng);
/// assert_eq!(layer.instance_count(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct SpinBayesLinear {
    /// Quantized weight instances, each `[out, in]`.
    instances: Vec<Tensor>,
    bias: Tensor,
    in_features: usize,
    out_features: usize,
    selected: usize,
    input: Option<Tensor>,
    draws: u64,
}

impl SpinBayesLinear {
    /// Builds the posterior approximation around trained weights
    /// `[out, in]` and bias `[out]`.
    ///
    /// Instance 0 is the quantized mean itself; instances 1.. are
    /// quantized perturbations `N(w, (rel_sigma·rms)²)`.
    ///
    /// # Panics
    ///
    /// Panics if the weight tensor is not 2-D, the bias length differs,
    /// or the config is degenerate.
    pub fn from_weights(
        weights: &Tensor,
        bias: &Tensor,
        config: &SpinBayesConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(weights.ndim(), 2, "weights must be [out, in]");
        assert!(config.instances >= 1, "need at least one instance");
        let (out_features, in_features) = (weights.shape()[0], weights.shape()[1]);
        assert_eq!(bias.len(), out_features, "bias length mismatch");
        let rms = (weights.norm_sq() / weights.len() as f32).sqrt().max(1e-8);
        let sigma = config.rel_sigma * rms;
        let mut instances = Vec::with_capacity(config.instances);
        for k in 0..config.instances {
            let mut inst = weights.clone();
            for w in inst.as_mut_slice() {
                let perturbed = if k == 0 {
                    *w
                } else {
                    *w + sigma * neuspin_device::stats::standard_normal(rng) as f32
                };
                *w = quantize(perturbed, config.levels, config.w_max);
            }
            instances.push(inst);
        }
        Self {
            instances,
            bias: bias.clone(),
            in_features,
            out_features,
            selected: 0,
            input: None,
            draws: 0,
        }
    }

    /// Number of posterior instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The instance the last forward pass used.
    pub fn last_selected(&self) -> usize {
        self.selected
    }

    /// Arbiter draws so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Borrow instance `k`'s quantized weights.
    pub fn instance(&self, k: usize) -> &Tensor {
        &self.instances[k]
    }
}

impl Layer for SpinBayesLinear {
    fn forward(&mut self, input: &Tensor, mode: Mode, rng: &mut StdRng) -> Tensor {
        assert_eq!(input.ndim(), 2, "SpinBayesLinear expects [N, in]");
        assert_eq!(input.shape()[1], self.in_features, "feature mismatch");
        self.selected = if mode.stochastic() && self.instances.len() > 1 {
            self.draws += 1;
            rng.random_range(0..self.instances.len())
        } else {
            0 // Eval: the quantized-mean instance
        };
        self.input = Some(input.clone());
        let w = &self.instances[self.selected];
        let mut out = input.matmul(&w.transpose());
        let (n, f) = (out.shape()[0], out.shape()[1]);
        for i in 0..n {
            for j in 0..f {
                out[i * f + j] += self.bias[j];
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // Inference-only layer: weights are frozen posterior samples.
        // Gradients flow to the input through the selected instance so
        // the layer composes inside larger (partly trainable) models.
        let _ = self.input.as_ref().expect("backward before forward");
        grad_out.matmul(&self.instances[self.selected])
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&str, &mut Param)) {
        // Frozen — no trainable parameters.
    }

    fn name(&self) -> &'static str {
        "SpinBayesLinear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(808)
    }

    #[test]
    fn quantize_endpoints_and_middle() {
        assert_eq!(quantize(1.0, 5, 1.0), 1.0);
        assert_eq!(quantize(-1.0, 5, 1.0), -1.0);
        assert_eq!(quantize(0.0, 5, 1.0), 0.0);
        assert_eq!(quantize(0.6, 5, 1.0), 0.5);
        assert_eq!(quantize(2.0, 5, 1.0), 1.0, "saturates");
    }

    #[test]
    fn quantize_error_bounded() {
        let levels = 9;
        let step = 2.0 / (levels - 1) as f32;
        for i in -20..=20 {
            let w = i as f32 * 0.05;
            let q = quantize(w, levels, 1.0);
            assert!((q - w).abs() <= step / 2.0 + 1e-6);
        }
    }

    #[test]
    fn instance_zero_is_quantized_mean() {
        let mut r = rng();
        let w = Tensor::from_vec(vec![0.3, -0.8, 0.55, 0.0], &[2, 2]);
        let layer = SpinBayesLinear::from_weights(
            &w,
            &Tensor::zeros(&[2]),
            &SpinBayesConfig { instances: 4, levels: 5, rel_sigma: 0.2, w_max: 1.0 },
            &mut r,
        );
        for i in 0..4 {
            assert_eq!(layer.instance(0)[i], quantize(w[i], 5, 1.0));
        }
    }

    #[test]
    fn instances_differ_but_cluster_around_mean() {
        let mut r = rng();
        let w = Tensor::from_fn(&[8, 8], |i| ((i * 13 % 17) as f32 / 8.5) - 1.0);
        let layer = SpinBayesLinear::from_weights(
            &w,
            &Tensor::zeros(&[8]),
            &SpinBayesConfig::default(),
            &mut r,
        );
        let mean_inst = layer.instance(0);
        let mut any_diff = false;
        for k in 1..layer.instance_count() {
            let d = (layer.instance(k) - mean_inst).map(f32::abs).max();
            if d > 0.0 {
                any_diff = true;
            }
            assert!(d < 1.0, "perturbations stay local");
        }
        assert!(any_diff, "posterior must have spread");
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let mut r = rng();
        let w = Tensor::from_fn(&[4, 4], |i| (i as f32 * 0.37).sin());
        let mut layer = SpinBayesLinear::from_weights(
            &w,
            &Tensor::zeros(&[4]),
            &SpinBayesConfig::default(),
            &mut r,
        );
        let x = Tensor::ones(&[1, 4]);
        let y1 = layer.forward(&x, Mode::Eval, &mut r);
        let y2 = layer.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y1, y2);
        assert_eq!(layer.last_selected(), 0);
        assert_eq!(layer.draws(), 0);
    }

    #[test]
    fn sample_mode_varies_instances() {
        let mut r = rng();
        let w = Tensor::from_fn(&[4, 8], |i| ((i * 7 % 13) as f32 / 6.0) - 1.0);
        let mut layer = SpinBayesLinear::from_weights(
            &w,
            &Tensor::zeros(&[4]),
            &SpinBayesConfig { instances: 8, rel_sigma: 0.3, ..Default::default() },
            &mut r,
        );
        let x = Tensor::ones(&[1, 8]);
        let outs: Vec<Tensor> = (0..20).map(|_| layer.forward(&x, Mode::Sample, &mut r)).collect();
        let distinct = outs.iter().any(|o| (o - &outs[0]).map(f32::abs).max() > 1e-6);
        assert!(distinct, "different instances must give different outputs");
        assert_eq!(layer.draws(), 20);
    }

    #[test]
    fn backward_flows_through_selected_instance() {
        let mut r = rng();
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let mut layer = SpinBayesLinear::from_weights(
            &w,
            &Tensor::zeros(&[2]),
            &SpinBayesConfig { instances: 1, levels: 3, rel_sigma: 0.0, w_max: 1.0 },
            &mut r,
        );
        let x = Tensor::ones(&[1, 2]);
        let _ = layer.forward(&x, Mode::Eval, &mut r);
        let g = layer.backward(&Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
        assert_eq!(g.as_slice(), &[1.0, 2.0], "identity instance passes grads");
    }
}
