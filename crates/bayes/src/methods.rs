//! The NeuSpin method zoo: one builder per approach of §III, all on a
//! shared binary CNN backbone so Table I compares like with like.
//!
//! Backbone (for 1×16×16 inputs, 10 classes):
//!
//! ```text
//! BinaryConv2d(1→8, 3×3, pad 1) · Norm · HardTanh · [dropout] · MaxPool2
//! BinaryConv2d(8→16, 3×3, pad 1) · Norm · HardTanh · [dropout] · MaxPool2
//! Flatten · BinaryLinear(256→64) · Norm · HardTanh · [dropout]
//! Linear(64→10)
//! ```
//!
//! where `Norm` is [`BatchNorm`] (or [`InvertedNorm`] for the affine-
//! dropout method) and `[dropout]` is the method's stochastic element.

use crate::spinbayes::{SpinBayesConfig, SpinBayesLinear};
use crate::vi::ViScale;
use neuspin_nn::{
    BatchNorm, BinaryConv2d, BinaryLinear, Dropout, Flatten, HardTanh, InvertedNorm, Layer,
    Linear, MaxPool2d, Mode, ScaleDrop, Sequential, SpatialDropout,
};
use rand::rngs::StdRng;
use std::fmt;

/// The Bayesian (or baseline) method a model is built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Deterministic binary network (non-Bayesian baseline).
    Deterministic,
    /// SpinDrop: per-neuron MC-dropout (§III-A1).
    SpinDrop,
    /// Spatial-SpinDrop: per-feature-map MC-dropout (§III-A2).
    SpatialSpinDrop,
    /// SpinScaleDrop: learnable scale vector, one RNG per layer (§III-A3).
    SpinScaleDrop,
    /// Inverted normalization + affine dropout (§III-A4).
    AffineDropout,
    /// Bayesian sub-set parameter inference (VI on scales, §III-B1).
    SubsetVi,
    /// SpinBayes in-memory approximation (§III-B2); built post-training
    /// via [`spinbayes_from_mlp`].
    SpinBayes,
}

impl Method {
    /// All methods in Table I order (plus the deterministic baseline
    /// first).
    pub const ALL: [Method; 7] = [
        Method::Deterministic,
        Method::SpinDrop,
        Method::SpatialSpinDrop,
        Method::SpinScaleDrop,
        Method::AffineDropout,
        Method::SubsetVi,
        Method::SpinBayes,
    ];

    /// Whether MC sampling at inference is meaningful for this method.
    pub fn is_bayesian(self) -> bool {
        self != Method::Deterministic
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::Deterministic => "Deterministic",
            Method::SpinDrop => "SpinDrop",
            Method::SpatialSpinDrop => "Spatial-SpinDrop",
            Method::SpinScaleDrop => "SpinScaleDropout",
            Method::AffineDropout => "InvertedNorm+AffineDropout",
            Method::SubsetVi => "Bayesian Sub-Set Parameter",
            Method::SpinBayes => "SpinBayes",
        };
        f.write_str(s)
    }
}

/// Architecture hyper-parameters of the shared backbone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchConfig {
    /// Conv-1 output channels.
    pub c1: usize,
    /// Conv-2 output channels.
    pub c2: usize,
    /// Hidden width of the FC stage.
    pub hidden: usize,
    /// Output classes.
    pub classes: usize,
    /// Dropout probability for the dropout-family methods.
    pub p: f32,
    /// Input image side (assumed square, single channel).
    pub side: usize,
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self { c1: 8, c2: 16, hidden: 64, classes: 10, p: 0.15, side: 16 }
    }
}

impl ArchConfig {
    /// Flattened feature count entering the FC stage
    /// (`c2 · (side/4)²` after two 2× pools).
    pub fn flat_features(&self) -> usize {
        self.c2 * (self.side / 4) * (self.side / 4)
    }
}

fn norm_for(method: Method, features: usize, p: f32) -> Box<dyn Layer> {
    match method {
        Method::AffineDropout => Box::new(InvertedNorm::new(features, p)),
        _ => Box::new(BatchNorm::new(features)),
    }
}

fn push_stochastic(model: &mut Sequential, method: Method, features: usize, p: f32) {
    match method {
        Method::SpinDrop => model.push(Dropout::new(p)),
        Method::SpatialSpinDrop => model.push(SpatialDropout::new(p)),
        Method::SpinScaleDrop => model.push(ScaleDrop::new(features, p)),
        Method::SubsetVi => model.push(ViScale::new(features)),
        // Deterministic / AffineDropout (in the norm) / SpinBayes
        // (post-training) add nothing here.
        _ => {}
    }
}

/// Builds the digit-classification CNN for a method.
///
/// For [`Method::SpinBayes`] this returns the deterministic backbone —
/// convert it after training with [`spinbayes_from_mlp`].
pub fn build_cnn(method: Method, arch: &ArchConfig, rng: &mut StdRng) -> Sequential {
    let mut m = Sequential::new();
    m.push(BinaryConv2d::new(1, arch.c1, 3, 1, 1, rng));
    m.push_boxed(norm_for(method, arch.c1, arch.p));
    m.push(HardTanh::new());
    push_stochastic(&mut m, method, arch.c1, arch.p);
    m.push(MaxPool2d::new(2));

    m.push(BinaryConv2d::new(arch.c1, arch.c2, 3, 1, 1, rng));
    m.push_boxed(norm_for(method, arch.c2, arch.p));
    m.push(HardTanh::new());
    push_stochastic(&mut m, method, arch.c2, arch.p);
    m.push(MaxPool2d::new(2));

    m.push(Flatten::new());
    m.push(BinaryLinear::new(arch.flat_features(), arch.hidden, rng));
    m.push_boxed(norm_for(method, arch.hidden, arch.p));
    m.push(HardTanh::new());
    push_stochastic(&mut m, method, arch.hidden, arch.p);

    m.push(Linear::new(arch.hidden, arch.classes, rng));
    m
}

/// Builds a compact MLP variant (256 → hidden → classes) — used by the
/// fast tests and the quickstart example.
pub fn build_mlp(method: Method, hidden: usize, classes: usize, rng: &mut StdRng) -> Sequential {
    let p = 0.2;
    let input = 256;
    let mut m = Sequential::new();
    m.push(Flatten::new());
    m.push(BinaryLinear::new(input, hidden, rng));
    m.push_boxed(norm_for(method, hidden, p));
    m.push(HardTanh::new());
    push_stochastic(&mut m, method, hidden, p);
    m.push(BinaryLinear::new(hidden, classes, rng));
    m
}

/// Builds the *full-precision* MLP twin (Flatten · Linear · BatchNorm ·
/// HardTanh · Linear) that serves as the SpinBayes base model — the
/// SpinBayes paper quantizes a trained full-precision network
/// post-training into multi-value cells.
pub fn build_fp_mlp(hidden: usize, classes: usize, rng: &mut StdRng) -> Sequential {
    let mut m = Sequential::new();
    m.push(Flatten::new());
    m.push(Linear::new(256, hidden, rng));
    m.push(BatchNorm::new(hidden));
    m.push(HardTanh::new());
    m.push(Linear::new(hidden, classes, rng));
    m
}

/// Converts a trained model (from [`build_fp_mlp`] or [`build_mlp`])
/// into its SpinBayes approximation: each weight matrix becomes a
/// [`SpinBayesLinear`] with `config.instances` quantized posterior
/// instances (`w_max` is taken per layer as the max |w| so the level
/// ladder covers the actual weight range); the norm layer's affine
/// parameters are carried over.
///
/// # Panics
///
/// Panics if the model does not contain exactly two weight matrices and
/// one gamma/beta pair in the expected `Sequential` order.
pub fn spinbayes_from_mlp(
    trained: &mut Sequential,
    hidden: usize,
    classes: usize,
    config: &SpinBayesConfig,
    rng: &mut StdRng,
) -> Sequential {
    let state = trained.state_dict();
    let weights: Vec<&(String, Vec<f32>)> =
        state.iter().filter(|(k, _)| k.ends_with(".weight")).collect();
    let biases: Vec<&(String, Vec<f32>)> =
        state.iter().filter(|(k, _)| k.ends_with(".bias")).collect();
    assert_eq!(weights.len(), 2, "expected two weight matrices, got {}", weights.len());
    assert_eq!(biases.len(), 2, "expected two bias vectors");
    let gamma = &state.iter().find(|(k, _)| k.ends_with(".gamma")).expect("missing gamma").1;
    let beta = &state.iter().find(|(k, _)| k.ends_with(".beta")).expect("missing beta").1;

    let input = weights[0].1.len() / hidden;
    let w1 = neuspin_nn::Tensor::from_vec(weights[0].1.clone(), &[hidden, input]);
    let b1 = neuspin_nn::Tensor::from_vec(biases[0].1.clone(), &[hidden]);
    let w2 = neuspin_nn::Tensor::from_vec(weights[1].1.clone(), &[classes, hidden]);
    let b2 = neuspin_nn::Tensor::from_vec(biases[1].1.clone(), &[classes]);

    let per_layer = |w: &neuspin_nn::Tensor| {
        let rms = (w.norm_sq() / w.len() as f32).sqrt();
        SpinBayesConfig {
            // 3·rms clip: don't spend quantization levels on the tail.
            w_max: (3.0 * rms).min(w.map(f32::abs).max()).max(1e-6),
            ..*config
        }
    };

    let mut m = Sequential::new();
    m.push(Flatten::new());
    m.push(SpinBayesLinear::from_weights(&w1, &b1, &per_layer(&w1), rng));
    // Re-create the norm layer and transfer its affine parameters; the
    // running statistics are re-estimated by a calibration pass.
    let mut bn = BatchNorm::new(hidden);
    bn.visit_params(&mut |name, p| {
        let src = if name == "gamma" { gamma } else { beta };
        for (i, &v) in src.iter().enumerate() {
            p.value[i] = v;
        }
    });
    m.push(bn);
    m.push(HardTanh::new());
    m.push(SpinBayesLinear::from_weights(&w2, &b2, &per_layer(&w2), rng));
    m
}

/// Runs `calibration` batches through the converted model in train mode
/// (no gradient step) so its BatchNorm running statistics match the
/// quantized weights.
pub fn calibrate_norm(model: &mut Sequential, inputs: &neuspin_nn::Tensor, rng: &mut StdRng) {
    for _ in 0..20 {
        let _ = model.forward(inputs, Mode::Train, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuspin_nn::{Mode, Tensor};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2718)
    }

    #[test]
    fn all_cnn_methods_forward_and_backward() {
        let arch = ArchConfig::default();
        let x = Tensor::from_fn(&[2, 1, 16, 16], |i| ((i * 31 % 97) as f32 / 48.5) - 1.0);
        for method in Method::ALL {
            if method == Method::SpinBayes {
                continue; // built post-training
            }
            let mut r = rng();
            let mut m = build_cnn(method, &arch, &mut r);
            let y = m.forward(&x, Mode::Train, &mut r);
            assert_eq!(y.shape(), &[2, 10], "{method}");
            assert!(y.all_finite(), "{method}");
            let (_, grad) = neuspin_nn::cross_entropy(&y, &[3, 7]);
            let gx = m.backward(&grad);
            assert_eq!(gx.shape(), x.shape(), "{method}");
        }
    }

    #[test]
    fn stochastic_methods_vary_in_sample_mode() {
        let arch = ArchConfig::default();
        let x = Tensor::from_fn(&[1, 1, 16, 16], |i| (i as f32 * 0.05).sin());
        for method in [
            Method::SpinDrop,
            Method::SpatialSpinDrop,
            Method::SpinScaleDrop,
            Method::AffineDropout,
            Method::SubsetVi,
        ] {
            let mut r = rng();
            let mut m = build_cnn(method, &arch, &mut r);
            // At init the scale vectors and affine params are exactly
            // identity, which makes scale/affine dropout a no-op; nudge
            // every parameter deterministically to emulate a trained
            // state before probing stochasticity.
            m.visit_params(&mut |_, p| {
                for i in 0..p.value.len() {
                    p.value[i] += 0.2 * ((i as f32) * 0.7).sin();
                }
            });
            let outs: Vec<Tensor> =
                (0..16).map(|_| m.forward(&x, Mode::Sample, &mut r)).collect();
            let distinct = outs.iter().any(|o| (o - &outs[0]).map(f32::abs).max() > 1e-7);
            assert!(distinct, "{method} must be stochastic in Sample mode");
        }
    }

    #[test]
    fn deterministic_method_is_deterministic() {
        let arch = ArchConfig::default();
        let x = Tensor::from_fn(&[1, 1, 16, 16], |i| (i as f32 * 0.07).cos());
        let mut r = rng();
        let mut m = build_cnn(Method::Deterministic, &arch, &mut r);
        let y1 = m.forward(&x, Mode::Sample, &mut r);
        let y2 = m.forward(&x, Mode::Sample, &mut r);
        assert_eq!(y1, y2);
    }

    #[test]
    fn method_display_matches_table1_names() {
        assert_eq!(Method::SpinDrop.to_string(), "SpinDrop");
        assert_eq!(Method::SpatialSpinDrop.to_string(), "Spatial-SpinDrop");
        assert_eq!(Method::SpinScaleDrop.to_string(), "SpinScaleDropout");
        assert_eq!(Method::SubsetVi.to_string(), "Bayesian Sub-Set Parameter");
    }

    #[test]
    fn mlp_builder_and_spinbayes_conversion() {
        let mut r = rng();
        let mut det = build_fp_mlp(32, 10, &mut r);
        let x = Tensor::from_fn(&[2, 1, 16, 16], |i| ((i % 7) as f32) / 7.0);
        // Compare in Train mode so both models normalize with the same
        // batch statistics (running stats differ by construction).
        let y_det = det.forward(&x, Mode::Train, &mut r);
        // One instance, no perturbation, very fine ladder → conversion
        // is numerically faithful to the trained weights.
        let config = SpinBayesConfig { instances: 1, levels: 1025, rel_sigma: 0.0, w_max: 1.0 };
        let mut sb = spinbayes_from_mlp(&mut det, 32, 10, &config, &mut r);
        let y_sb = sb.forward(&x, Mode::Train, &mut r);
        assert_eq!(y_sb.shape(), &[2, 10]);
        assert!(y_sb.all_finite());
        let diff = (&y_det - &y_sb).map(f32::abs).max();
        assert!(diff < 0.05, "fine quantization must track the base model, diff {diff}");
        // And the norm-calibration helper runs.
        calibrate_norm(&mut sb, &x, &mut r);
    }

    #[test]
    fn spinbayes_sample_mode_is_stochastic() {
        let mut r = rng();
        let mut det = build_fp_mlp(16, 10, &mut r);
        let config = SpinBayesConfig { instances: 8, levels: 17, rel_sigma: 0.3, w_max: 1.0 };
        let mut sb = spinbayes_from_mlp(&mut det, 16, 10, &config, &mut r);
        let x = Tensor::from_fn(&[1, 1, 16, 16], |i| (i as f32 * 0.11).sin());
        let outs: Vec<Tensor> = (0..10).map(|_| sb.forward(&x, Mode::Sample, &mut r)).collect();
        let distinct = outs.iter().any(|o| (o - &outs[0]).map(f32::abs).max() > 1e-7);
        assert!(distinct);
    }

    #[test]
    fn arch_flat_features() {
        let arch = ArchConfig::default();
        assert_eq!(arch.flat_features(), 16 * 4 * 4);
    }
}
