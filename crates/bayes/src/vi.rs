//! Bayesian sub-set parameter inference (§III-B1): variational
//! inference applied to the *scale vector only*.
//!
//! The weights stay deterministic (binary, maximum-likelihood trained);
//! Bayesian treatment is reserved for the small per-feature scale
//! vector, whose Gaussian posterior `q(s) = N(μ, σ²)` is learned by the
//! reparameterization trick. This is what makes the method's memory
//! footprint ~2 distribution parameters per *feature* instead of 2 per
//! *weight* — the source of the paper's 158.7× memory saving.

use neuspin_nn::{Layer, Mode, Param, Tensor};
use rand::rngs::StdRng;

fn softplus(x: f32) -> f32 {
    // Numerically stable: log(1 + e^x) = max(x, 0) + log1p(e^{-|x|}).
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Gaussian prior over the scale entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePrior {
    /// Prior mean (1.0: scales centred at identity).
    pub mean: f32,
    /// Prior standard deviation.
    pub std: f32,
}

impl Default for ScalePrior {
    fn default() -> Self {
        Self { mean: 1.0, std: 0.25 }
    }
}

/// A variational scale layer: `y = x ⊙ s`, `s ~ N(μ, softplus(ρ)²)`.
///
/// One posterior sample is drawn per forward pass (shared across the
/// batch — this mirrors the hardware, which programs one sampled scale
/// into the scale memory per inference pass). In [`Mode::Eval`] the
/// posterior mean is used.
///
/// [`Layer::reg_loss`] returns the KL divergence to the prior
/// (scaled by `strength`), accumulating its gradients — add it to the
/// data loss for the ELBO.
#[derive(Debug, Clone)]
pub struct ViScale {
    mu: Param,
    rho: Param,
    prior: ScalePrior,
    features: usize,
    // Caches.
    input: Option<Tensor>,
    epsilon: Vec<f32>,
    sampled: Vec<f32>,
    stochastic: bool,
}

impl ViScale {
    /// Creates the layer over `features` features/channels with the
    /// default prior; μ initialises to 1, σ to ≈ 0.05.
    ///
    /// # Panics
    ///
    /// Panics if `features == 0`.
    pub fn new(features: usize) -> Self {
        Self::with_prior(features, ScalePrior::default())
    }

    /// Creates the layer with an explicit prior.
    ///
    /// # Panics
    ///
    /// Panics if `features == 0` or the prior std is not positive.
    pub fn with_prior(features: usize, prior: ScalePrior) -> Self {
        assert!(features > 0, "features must be positive");
        assert!(prior.std > 0.0 && prior.std.is_finite(), "prior std must be positive");
        // softplus(ρ0) = 0.05.
        let rho0 = (0.05f32.exp() - 1.0).ln();
        Self {
            mu: Param::new(Tensor::ones(&[features])),
            rho: Param::new(Tensor::full(&[features], rho0)),
            prior,
            features,
            input: None,
            epsilon: vec![],
            sampled: vec![],
            stochastic: false,
        }
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Posterior means.
    pub fn mu(&self) -> &Tensor {
        &self.mu.value
    }

    /// Posterior standard deviations (`softplus(ρ)`).
    pub fn sigma(&self) -> Vec<f32> {
        self.rho.value.as_slice().iter().map(|&r| softplus(r)).collect()
    }

    /// The prior.
    pub fn prior(&self) -> ScalePrior {
        self.prior
    }

    /// Distribution-parameter count (μ and ρ): the "Bayesian memory"
    /// this method pays for, versus two per *weight* in full VI.
    pub fn bayesian_params(&self) -> usize {
        2 * self.features
    }

    /// RNG draws per stochastic pass: one gaussian per feature.
    pub fn rng_draws_per_pass(&self) -> usize {
        self.features
    }

    fn layout(&self, shape: &[usize]) -> (usize, usize) {
        match shape.len() {
            2 => (shape[1], 1),
            4 => (shape[1], shape[2] * shape[3]),
            _ => panic!("ViScale expects [N,F] or [N,C,H,W], got {shape:?}"),
        }
    }
}

impl Layer for ViScale {
    fn forward(&mut self, input: &Tensor, mode: Mode, rng: &mut StdRng) -> Tensor {
        let (f, spatial) = self.layout(input.shape());
        assert_eq!(f, self.features, "feature mismatch: {f} vs {}", self.features);
        let n = input.shape()[0];
        self.stochastic = mode.stochastic();
        self.epsilon = if self.stochastic {
            (0..f)
                .map(|_| neuspin_device::stats::standard_normal(rng) as f32)
                .collect()
        } else {
            vec![0.0; f]
        };
        self.sampled = (0..f)
            .map(|j| self.mu.value[j] + softplus(self.rho.value[j]) * self.epsilon[j])
            .collect();
        self.input = Some(input.clone());
        let mut out = Tensor::zeros(input.shape());
        for ni in 0..n {
            for fi in 0..f {
                let s = self.sampled[fi];
                for si in 0..spatial {
                    let i = (ni * f + fi) * spatial + si;
                    out[i] = input[i] * s;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.input.as_ref().expect("backward before forward");
        let (f, spatial) = self.layout(grad_out.shape());
        let n = grad_out.shape()[0];
        let mut grad_in = Tensor::zeros(grad_out.shape());
        for fi in 0..f {
            let s = self.sampled[fi];
            let mut ds = 0.0f32;
            for ni in 0..n {
                for si in 0..spatial {
                    let i = (ni * f + fi) * spatial + si;
                    ds += grad_out[i] * input[i];
                    grad_in[i] = grad_out[i] * s;
                }
            }
            // Reparameterization: s = μ + softplus(ρ)·ε.
            self.mu.grad[fi] += ds;
            self.rho.grad[fi] += ds * self.epsilon[fi] * sigmoid(self.rho.value[fi]);
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        f("mu", &mut self.mu);
        f("rho", &mut self.rho);
    }

    fn reg_loss(&mut self, strength: f32) -> f32 {
        // KL(N(μ,σ²) ‖ N(m, p²)) = ln(p/σ) + (σ² + (μ−m)²)/(2p²) − ½.
        let (m, p) = (self.prior.mean, self.prior.std);
        let p_sq = p * p;
        let mut total = 0.0f32;
        for j in 0..self.features {
            let mu = self.mu.value[j];
            let rho = self.rho.value[j];
            let sigma = softplus(rho);
            total += (p / sigma).ln() + (sigma * sigma + (mu - m) * (mu - m)) / (2.0 * p_sq) - 0.5;
            let d_mu = (mu - m) / p_sq;
            let d_sigma = -1.0 / sigma + sigma / p_sq;
            self.mu.grad[j] += strength * d_mu;
            self.rho.grad[j] += strength * d_sigma * sigmoid(rho);
        }
        strength * total
    }

    fn name(&self) -> &'static str {
        "ViScale"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuspin_nn::grad_check_input;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(23)
    }

    #[test]
    fn eval_uses_posterior_mean() {
        let mut r = rng();
        let mut layer = ViScale::new(3);
        layer.mu.value = Tensor::from_vec(vec![2.0, 0.5, 1.0], &[3]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = layer.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.as_slice(), &[2.0, 1.0, 3.0]);
        // Deterministic across calls.
        let y2 = layer.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y, y2);
    }

    #[test]
    fn sample_mode_is_stochastic_with_correct_spread() {
        let mut r = rng();
        let mut layer = ViScale::new(1);
        layer.rho.value = Tensor::full(&[1], (0.5f32.exp() - 1.0).ln()); // σ = 0.5
        let x = Tensor::ones(&[1, 1]);
        let samples: Vec<f32> =
            (0..3000).map(|_| layer.forward(&x, Mode::Sample, &mut r)[0]).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f32>() / samples.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn grad_check_eval_mode() {
        let mut layer = ViScale::new(4);
        layer.mu.value = Tensor::from_vec(vec![1.2, 0.8, 1.5, 0.9], &[4]);
        let x = Tensor::from_fn(&[3, 4], |i| (i as f32 * 0.57).sin());
        assert!(grad_check_input(&mut layer, &x, Mode::Eval, 1, 1e-2) < 1e-2);
    }

    #[test]
    fn grad_check_sample_mode_seeded() {
        let mut layer = ViScale::new(3);
        let x = Tensor::from_fn(&[2, 3], |i| (i as f32 * 0.43).cos());
        assert!(grad_check_input(&mut layer, &x, Mode::Sample, 5, 1e-2) < 1e-2);
    }

    #[test]
    fn kl_zero_at_prior() {
        let mut layer = ViScale::with_prior(2, ScalePrior { mean: 1.0, std: 0.05 });
        // μ = 1 (init), σ = 0.05 (init) == prior → KL ≈ 0.
        let kl = layer.reg_loss(1.0);
        assert!(kl.abs() < 1e-4, "kl {kl}");
    }

    #[test]
    fn kl_positive_away_from_prior() {
        let mut layer = ViScale::new(2);
        layer.mu.value = Tensor::from_vec(vec![3.0, -1.0], &[2]);
        let kl = layer.reg_loss(1.0);
        assert!(kl > 1.0, "kl {kl}");
        // Gradients pull μ back toward 1.
        assert!(layer.mu.grad[0] > 0.0);
        assert!(layer.mu.grad[1] < 0.0);
    }

    #[test]
    fn kl_training_recovers_prior() {
        // Pure-KL gradient descent shrinks the divergence.
        let mut layer = ViScale::new(4);
        layer.mu.value = Tensor::from_vec(vec![2.0, 0.2, 1.7, 0.5], &[4]);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..300 {
            layer.zero_grad();
            last = layer.reg_loss(1.0);
            first.get_or_insert(last);
            let (g_mu, g_rho) = (layer.mu.grad.clone(), layer.rho.grad.clone());
            layer.mu.value.axpy(-0.05, &g_mu);
            layer.rho.value.axpy(-0.05, &g_rho);
        }
        assert!(last < 0.05 * first.unwrap(), "{last} vs {first:?}");
    }

    #[test]
    fn memory_accounting() {
        let layer = ViScale::new(64);
        assert_eq!(layer.bayesian_params(), 128);
        assert_eq!(layer.rng_draws_per_pass(), 64);
    }
}
