//! # neuspin-bayes — Bayesian methods and uncertainty metrics
//!
//! The algorithmic half of the NeuSpin co-design: Monte-Carlo
//! predictive inference ([`mc`]), the paper's method zoo ([`methods`]),
//! variational sub-set inference ([`vi`]), the SpinBayes in-memory
//! posterior approximation ([`spinbayes`]), and the uncertainty-quality
//! metrics the experiments report ([`metrics`]).
//!
//! ## Example
//!
//! ```
//! use neuspin_bayes::{build_mlp, mc_predict, Method};
//! use neuspin_nn::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut model = build_mlp(Method::SpinDrop, 32, 10, &mut rng);
//! let x = Tensor::ones(&[4, 1, 16, 16]);
//! let pred = mc_predict(&mut model, &x, 10, &mut rng);
//! assert_eq!(pred.mean_probs.shape(), &[4, 10]);
//! assert!(pred.entropy.iter().all(|&h| h >= 0.0));
//! ```

pub mod ensemble;
pub mod mc;
pub mod methods;
pub mod metrics;
pub mod spinbayes;
pub mod vi;

pub use ensemble::Ensemble;
pub use mc::{
    eval_predict, mc_aggregate, mc_predict, mc_predict_seeded, mc_predict_with, pass_seeds,
    Gated, McAccumulator, Predictive,
};
pub use methods::{
    build_cnn, build_fp_mlp, build_mlp, calibrate_norm, spinbayes_from_mlp, ArchConfig, Method,
};
pub use metrics::{
    auroc, brier, detection_rate_at_95, ece, entropy_threshold_for_coverage, rmse,
};
pub use spinbayes::{quantize, SpinBayesConfig, SpinBayesLinear};
pub use vi::{ScalePrior, ViScale};
