//! Deep-ensemble baseline.
//!
//! The "traditional" uncertainty method the paper's memory comparisons
//! weigh against (an ensemble stores E full model copies — the 10×32-bit
//! baseline of the 158.7× claim). Provided so the uncertainty-quality
//! experiments can compare the NeuSpin methods against the strongest
//! software baseline.

use crate::mc::{mc_predict_with, Predictive};
use neuspin_nn::{Mode, Sequential, Tensor};
use rand::rngs::StdRng;

/// An ensemble of independently trained models, predicted by averaging
/// member softmax outputs.
///
/// # Examples
///
/// ```
/// use neuspin_bayes::{build_mlp, Ensemble, Method};
/// use neuspin_nn::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let members = (0..3)
///     .map(|_| build_mlp(Method::Deterministic, 16, 10, &mut rng))
///     .collect();
/// let mut ensemble = Ensemble::new(members);
/// let x = Tensor::ones(&[2, 1, 16, 16]);
/// let pred = ensemble.predict(&x, &mut rng);
/// assert_eq!(pred.mean_probs.shape(), &[2, 10]);
/// assert_eq!(pred.passes, 3);
/// ```
#[derive(Default)]
pub struct Ensemble {
    members: Vec<Sequential>,
}

impl std::fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ensemble({} members)", self.members.len())
    }
}

impl Ensemble {
    /// Wraps independently trained members.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Sequential>) -> Self {
        assert!(!members.is_empty(), "an ensemble needs at least one member");
        Self { members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Borrows member `i`.
    pub fn member_mut(&mut self, i: usize) -> &mut Sequential {
        &mut self.members[i]
    }

    /// Ensemble prediction: one `Eval` pass per member, averaged by the
    /// shared MC machinery (each member counts as one "pass", so the
    /// epistemic signal is the across-member disagreement).
    pub fn predict(&mut self, inputs: &Tensor, rng: &mut StdRng) -> Predictive {
        let members = &mut self.members;
        mc_predict_with(members.len(), |k| members[k].forward(inputs, Mode::Eval, rng))
    }

    /// Total stored parameters across members (the memory cost the
    /// sub-set VI comparison charges this baseline for).
    pub fn total_params(&mut self) -> usize {
        self.members.iter_mut().map(|m| m.param_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{build_mlp, Method};
    use neuspin_nn::{cross_entropy, Adam, Optimizer};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(555)
    }

    #[test]
    fn ensemble_disagreement_gives_epistemic_signal() {
        let mut r = rng();
        // Independently initialised (untrained) members disagree.
        let members: Vec<Sequential> =
            (0..4).map(|_| build_mlp(Method::Deterministic, 16, 10, &mut r)).collect();
        let mut ens = Ensemble::new(members);
        let x = Tensor::from_fn(&[3, 1, 16, 16], |i| (i as f32 * 0.013).sin());
        let pred = ens.predict(&x, &mut r);
        assert!(
            pred.mutual_information.iter().any(|&mi| mi > 1e-3),
            "disagreeing members must produce epistemic uncertainty: {:?}",
            pred.mutual_information
        );
    }

    #[test]
    fn trained_members_agree_more_than_untrained() {
        let mut r = rng();
        let x = Tensor::from_fn(&[8, 1, 16, 16], |i| ((i * 13 % 7) as f32) / 7.0);
        let labels = vec![0usize, 1, 2, 3, 0, 1, 2, 3];
        let train = |r: &mut StdRng| {
            let mut m = build_mlp(Method::Deterministic, 16, 10, r);
            let mut opt = Adam::new(0.01);
            for _ in 0..60 {
                m.zero_grad();
                let logits = m.forward(&x, Mode::Train, r);
                let (_, grad) = cross_entropy(&logits, &labels);
                m.backward(&grad);
                opt.step(&mut m);
            }
            m
        };
        let mut untrained = Ensemble::new(
            (0..3).map(|_| build_mlp(Method::Deterministic, 16, 10, &mut r)).collect(),
        );
        let mut trained = Ensemble::new((0..3).map(|_| train(&mut r)).collect());
        let mi = |p: &Predictive| p.mutual_information.iter().sum::<f64>();
        let p_untrained = untrained.predict(&x, &mut r);
        let p_trained = trained.predict(&x, &mut r);
        assert!(
            mi(&p_trained) < mi(&p_untrained),
            "fitting the same data must shrink disagreement: {} vs {}",
            mi(&p_trained),
            mi(&p_untrained)
        );
    }

    #[test]
    fn param_accounting_scales_with_members() {
        let mut r = rng();
        let one = build_mlp(Method::Deterministic, 16, 10, &mut r);
        let mut single = Ensemble::new(vec![one]);
        let base = single.total_params();
        let mut five = Ensemble::new(
            (0..5).map(|_| build_mlp(Method::Deterministic, 16, 10, &mut r)).collect(),
        );
        assert_eq!(five.total_params(), 5 * base);
        assert_eq!(five.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        let _ = Ensemble::new(vec![]);
    }
}
