//! Uncertainty-quality metrics: calibration (ECE, Brier), OOD
//! separability (AUROC, detection rate at 95 % TPR), and regression
//! RMSE.

use neuspin_nn::Tensor;

/// Expected calibration error over `bins` equal-width confidence bins.
///
/// # Panics
///
/// Panics if shapes disagree or `bins == 0`.
///
/// # Examples
///
/// ```
/// use neuspin_bayes::metrics::ece;
/// use neuspin_nn::Tensor;
///
/// // Perfectly confident and correct → zero calibration error.
/// let probs = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// assert!(ece(&probs, &[0, 1], 10) < 1e-9);
/// ```
pub fn ece(mean_probs: &Tensor, labels: &[usize], bins: usize) -> f64 {
    assert!(bins > 0, "need at least one bin");
    let (n, c) = (mean_probs.shape()[0], mean_probs.shape()[1]);
    assert_eq!(labels.len(), n, "label count mismatch");
    let mut bin_conf = vec![0.0f64; bins];
    let mut bin_acc = vec![0.0f64; bins];
    let mut bin_count = vec![0usize; bins];
    for (i, &label) in labels.iter().enumerate() {
        let row = mean_probs.row(i);
        let (pred, conf) = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(j, &p)| (j, p as f64))
            .unwrap_or((0, 0.0));
        let b = ((conf * bins as f64) as usize).min(bins - 1);
        bin_conf[b] += conf;
        bin_acc[b] += f64::from(pred == label);
        bin_count[b] += 1;
        let _ = c;
    }
    let mut total = 0.0;
    for b in 0..bins {
        if bin_count[b] > 0 {
            let conf = bin_conf[b] / bin_count[b] as f64;
            let acc = bin_acc[b] / bin_count[b] as f64;
            total += (bin_count[b] as f64 / n as f64) * (conf - acc).abs();
        }
    }
    total
}

/// Brier score: mean squared error between the probability vector and
/// the one-hot label.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn brier(mean_probs: &Tensor, labels: &[usize]) -> f64 {
    let (n, c) = (mean_probs.shape()[0], mean_probs.shape()[1]);
    assert_eq!(labels.len(), n, "label count mismatch");
    let mut total = 0.0;
    for i in 0..n {
        for j in 0..c {
            let target = f64::from(labels[i] == j);
            let p = mean_probs[i * c + j] as f64;
            total += (p - target).powi(2);
        }
    }
    total / n as f64
}

/// Area under the ROC curve for separating `positive` scores (should be
/// high) from `negative` scores, computed by the Mann–Whitney statistic
/// with tie correction.
///
/// Returns 0.5 when either side is empty.
pub fn auroc(positive: &[f64], negative: &[f64]) -> f64 {
    if positive.is_empty() || negative.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0f64;
    for &p in positive {
        for &n in negative {
            if p > n {
                wins += 1.0;
            } else if (p - n).abs() < 1e-15 {
                wins += 0.5;
            }
        }
    }
    wins / (positive.len() * negative.len()) as f64
}

/// OOD detection rate at the 95 %-TPR operating point: the threshold is
/// the 5th percentile of the in-distribution scores (so 95 % of ID
/// samples score above it when higher = more OOD is flipped; here
/// *higher score = more OOD*, so the threshold keeps 95 % of ID below),
/// and the detection rate is the fraction of OOD samples above it.
///
/// Returns 0 when either slice is empty.
pub fn detection_rate_at_95(id_scores: &[f64], ood_scores: &[f64]) -> f64 {
    if id_scores.is_empty() || ood_scores.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = id_scores.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let idx = ((sorted.len() as f64) * 0.95).floor() as usize;
    let threshold = sorted[idx.min(sorted.len() - 1)];
    let detected = ood_scores.iter().filter(|&&s| s > threshold).count();
    detected as f64 / ood_scores.len() as f64
}

/// Calibrates an entropy abstention threshold from a held-out set: the
/// smallest entropy value that keeps at least `coverage` of the samples
/// (so gating at the returned threshold accepts ≥ `coverage` of data
/// statistically similar to `entropies`).
///
/// # Panics
///
/// Panics if `entropies` is empty, contains non-finite values, or
/// `coverage` is outside `(0, 1]`.
pub fn entropy_threshold_for_coverage(entropies: &[f64], coverage: f64) -> f64 {
    assert!(!entropies.is_empty(), "need calibration entropies");
    assert!(coverage > 0.0 && coverage <= 1.0, "coverage must be in (0, 1], got {coverage}");
    assert!(entropies.iter().all(|h| h.is_finite()), "entropies must be finite");
    let mut sorted: Vec<f64> = entropies.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let keep = ((coverage * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[keep - 1]
}

/// Root-mean-square error between predictions and targets.
///
/// # Panics
///
/// Panics if shapes disagree or inputs are empty.
pub fn rmse(pred: &Tensor, target: &Tensor) -> f64 {
    assert_eq!(pred.shape(), target.shape(), "shape mismatch");
    assert!(!pred.is_empty(), "empty tensors");
    let sum: f64 = pred
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&a, &b)| ((a - b) as f64).powi(2))
        .sum();
    (sum / pred.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ece_zero_for_perfect_calibration() {
        let probs = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]);
        assert!(ece(&probs, &[0, 1, 0], 15) < 1e-9);
    }

    #[test]
    fn ece_high_for_confident_errors() {
        let probs = Tensor::from_vec(vec![0.99, 0.01, 0.99, 0.01], &[2, 2]);
        // Always predicts 0, always wrong.
        let e = ece(&probs, &[1, 1], 10);
        assert!(e > 0.9, "ece {e}");
    }

    #[test]
    fn brier_bounds() {
        let perfect = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
        assert!(brier(&perfect, &[0]) < 1e-12);
        let worst = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        assert!((brier(&worst, &[0]) - 2.0).abs() < 1e-12);
        let uniform = Tensor::from_vec(vec![0.5, 0.5], &[1, 2]);
        assert!((brier(&uniform, &[0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auroc_separable() {
        let pos = [0.9, 0.8, 0.95];
        let neg = [0.1, 0.2, 0.3];
        assert_eq!(auroc(&pos, &neg), 1.0);
        assert_eq!(auroc(&neg, &pos), 0.0);
    }

    #[test]
    fn auroc_random_is_half() {
        let a = [0.5, 0.5];
        assert_eq!(auroc(&a, &a), 0.5);
        assert_eq!(auroc(&[], &a), 0.5);
    }

    #[test]
    fn detection_rate_perfect_separation() {
        let id: Vec<f64> = (0..100).map(|i| i as f64 / 1000.0).collect(); // 0..0.1
        let ood: Vec<f64> = (0..50).map(|i| 1.0 + i as f64).collect();
        assert_eq!(detection_rate_at_95(&id, &ood), 1.0);
    }

    #[test]
    fn detection_rate_overlapping() {
        let id: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let ood = id.clone();
        let rate = detection_rate_at_95(&id, &ood);
        assert!(rate < 0.1, "identical distributions detect ~5 %, got {rate}");
    }

    #[test]
    fn rmse_known_value() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![0.0, 4.0], &[2]);
        // sqrt((1 + 4)/2) = sqrt(2.5)
        assert!((rmse(&a, &b) - 2.5f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn ece_rejects_bad_labels() {
        let probs = Tensor::zeros(&[2, 2]);
        let _ = ece(&probs, &[0], 10);
    }

    #[test]
    fn entropy_threshold_keeps_requested_coverage() {
        let entropies: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let t = entropy_threshold_for_coverage(&entropies, 0.7);
        let kept = entropies.iter().filter(|&&h| h <= t).count();
        assert!(kept >= 70, "kept {kept}");
        assert!(kept <= 71, "threshold must be tight, kept {kept}");
        // Full coverage → max entropy.
        assert_eq!(entropy_threshold_for_coverage(&entropies, 1.0), 0.99);
    }

    #[test]
    #[should_panic(expected = "coverage must be in (0, 1]")]
    fn entropy_threshold_rejects_bad_coverage() {
        let _ = entropy_threshold_for_coverage(&[0.1], 0.0);
    }
}
