//! Monte-Carlo Bayesian prediction.
//!
//! All NeuSpin methods share the same inference recipe: run `T`
//! stochastic forward passes (dropout / scale / affine masks or
//! posterior samples active), average the softmax outputs, and derive
//! uncertainty from the spread. [`mc_predict`] runs it on a software
//! [`Sequential`]; [`mc_predict_with`] runs it on *any* forward function
//! — that is how the hardware-in-the-loop runtime in `neuspin-core`
//! reuses this code path unchanged.

use neuspin_nn::{softmax, Mode, Sequential, Tensor};
use rand::rngs::StdRng;
use rand::{SeedableRng, SplitMix64};

/// The output of a Monte-Carlo predictive pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Predictive {
    /// Mean softmax probabilities `[N, C]`.
    pub mean_probs: Tensor,
    /// Predictive entropy per sample (total uncertainty), nats.
    pub entropy: Vec<f64>,
    /// Mutual information per sample (epistemic part):
    /// `H(mean) − mean(H(sample))`.
    pub mutual_information: Vec<f64>,
    /// Mean over classes of the across-pass probability variance.
    pub variance: Vec<f64>,
    /// Number of MC passes.
    pub passes: usize,
}

impl Predictive {
    /// Argmax class per sample.
    pub fn predictions(&self) -> Vec<usize> {
        self.mean_probs.argmax_rows()
    }

    /// Classification accuracy against labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the batch size.
    pub fn accuracy(&self, labels: &[usize]) -> f64 {
        let preds = self.predictions();
        assert_eq!(preds.len(), labels.len(), "label count mismatch");
        if preds.is_empty() {
            return 0.0;
        }
        let hits = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        hits as f64 / preds.len() as f64
    }

    /// Confidence (max mean probability) per sample.
    pub fn confidence(&self) -> Vec<f64> {
        let (n, c) = (self.mean_probs.shape()[0], self.mean_probs.shape()[1]);
        (0..n)
            .map(|i| {
                (0..c)
                    .map(|j| self.mean_probs[i * c + j] as f64)
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }

    /// FNV-1a-64 digest over the exact bit patterns of every field
    /// (mean probabilities, entropies, mutual information, variances,
    /// pass count). Two predictives digest equal iff they are
    /// bit-identical — the cheap equality that chaos campaigns use to
    /// compare a restored die's outputs against the no-crash control.
    pub fn bits_digest(&self) -> u64 {
        const BASIS: u64 = 0xCBF2_9CE4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = BASIS;
        let eat64 = |h: &mut u64, word: u64| {
            for byte in word.to_le_bytes() {
                *h ^= u64::from(byte);
                *h = h.wrapping_mul(PRIME);
            }
        };
        for &dim in self.mean_probs.shape() {
            eat64(&mut h, dim as u64);
        }
        for &p in self.mean_probs.as_slice() {
            eat64(&mut h, u64::from(p.to_bits()));
        }
        for xs in [&self.entropy, &self.mutual_information, &self.variance] {
            for &x in xs {
                eat64(&mut h, x.to_bits());
            }
        }
        eat64(&mut h, self.passes as u64);
        h
    }

    /// Entropy-gates the batch: samples whose predictive entropy
    /// exceeds `threshold` are abstained (graceful degradation — the
    /// system says "I don't know" instead of emitting a garbage label).
    pub fn gate(&self, threshold: f64) -> Gated {
        Gated {
            accepted: self.entropy.iter().map(|&h| h <= threshold).collect(),
            threshold,
        }
    }

    /// Gathers the given sample rows into a new sub-batch
    /// [`Predictive`] (same pass count; per-sample uncertainty carried
    /// over row by row). This is the batched-serving primitive: a
    /// request batch answered by one die can be split — accepted rows
    /// responded to, abstained rows re-batched onto a failover die —
    /// without ever re-running the passes that produced them.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select(&self, indices: &[usize]) -> Predictive {
        let (n, c) = (self.mean_probs.shape()[0], self.mean_probs.shape()[1]);
        for &i in indices {
            assert!(i < n, "sample index {i} out of range for batch of {n}");
        }
        let mean_probs = Tensor::from_fn(&[indices.len(), c], |flat| {
            let (row, col) = (flat / c, flat % c);
            self.mean_probs[indices[row] * c + col]
        });
        Predictive {
            mean_probs,
            entropy: indices.iter().map(|&i| self.entropy[i]).collect(),
            mutual_information: indices.iter().map(|&i| self.mutual_information[i]).collect(),
            variance: indices.iter().map(|&i| self.variance[i]).collect(),
            passes: self.passes,
        }
    }

    /// Accuracy over the samples a gate accepted. Returns 0 when the
    /// gate accepted nothing (full abstention — no claims, no credit).
    ///
    /// # Panics
    ///
    /// Panics if `labels` or the gate disagree with the batch size.
    pub fn accuracy_on_accepted(&self, labels: &[usize], gated: &Gated) -> f64 {
        let preds = self.predictions();
        assert_eq!(preds.len(), labels.len(), "label count mismatch");
        assert_eq!(preds.len(), gated.accepted.len(), "gate size mismatch");
        let mut accepted = 0usize;
        let mut hits = 0usize;
        for ((p, l), &keep) in preds.iter().zip(labels).zip(&gated.accepted) {
            if keep {
                accepted += 1;
                hits += usize::from(p == l);
            }
        }
        if accepted == 0 {
            0.0
        } else {
            hits as f64 / accepted as f64
        }
    }
}

/// An abstention decision per sample, from [`Predictive::gate`].
#[derive(Debug, Clone, PartialEq)]
pub struct Gated {
    /// `true` = prediction accepted, `false` = abstained.
    pub accepted: Vec<bool>,
    /// The entropy threshold that produced the decisions.
    pub threshold: f64,
}

impl Gated {
    /// Fraction of samples accepted (1 = no abstentions).
    pub fn coverage(&self) -> f64 {
        if self.accepted.is_empty() {
            return 1.0;
        }
        self.accepted.iter().filter(|&&a| a).count() as f64 / self.accepted.len() as f64
    }

    /// Number of abstained samples.
    pub fn abstained(&self) -> usize {
        self.accepted.iter().filter(|&&a| !a).count()
    }
}

fn entropy_of(row: &[f32]) -> f64 {
    -row.iter()
        .map(|&p| {
            let p = p as f64;
            if p > 1e-12 {
                p * p.ln()
            } else {
                0.0
            }
        })
        .sum::<f64>()
}

/// Runs `passes` stochastic forward passes of an arbitrary logit
/// function and aggregates them into a [`Predictive`].
///
/// The closure receives the pass index and must return logits `[N, C]`
/// for the whole batch with fresh stochasticity each call.
///
/// # Panics
///
/// Panics if `passes == 0` or the closure returns inconsistent shapes.
pub fn mc_predict_with(passes: usize, mut forward: impl FnMut(usize) -> Tensor) -> Predictive {
    mc_aggregate(passes, |t| softmax(&forward(t)))
}

/// Reduces `passes` per-pass softmax probability tensors (requested in
/// ascending pass order) into a [`Predictive`].
///
/// The accumulation order is part of the contract: pass 0 seeds the
/// sums and passes `1..` are added in order, so any producer that
/// supplies bit-identical per-pass probabilities gets a bit-identical
/// report — the invariant the parallel engine in `neuspin-core::pool`
/// relies on to make results thread-count-invariant.
///
/// # Panics
///
/// Panics if `passes == 0` or the closure returns inconsistent shapes.
pub fn mc_aggregate(passes: usize, mut probs_at: impl FnMut(usize) -> Tensor) -> Predictive {
    assert!(passes > 0, "need at least one MC pass");
    let mut acc = McAccumulator::new();
    for t in 0..passes {
        acc.push(&probs_at(t));
    }
    acc.finish()
}

/// Incremental, push-based form of [`mc_aggregate`]: feed each pass's
/// `[N, C]` softmax probabilities as they are produced, then [`finish`]
/// once. The accumulation arithmetic is element-for-element identical
/// to [`mc_aggregate`] (pass 0 seeds the sums, later passes fold in as
/// `acc += 1.0 * x`), so a producer supplying bit-identical per-pass
/// probabilities gets a bit-identical [`Predictive`].
///
/// This is the allocation-free MC primitive: after the first [`push`]
/// sizes the internal buffers, subsequent pushes of the same batch
/// shape touch the heap zero times. Only [`finish`] allocates (it
/// builds the output report).
///
/// [`push`]: McAccumulator::push
/// [`finish`]: McAccumulator::finish
#[derive(Debug, Clone, Default)]
pub struct McAccumulator {
    passes: usize,
    sum: Tensor,
    sum_sq: Tensor,
    sum_entropy: Vec<f64>,
}

impl McAccumulator {
    /// An empty accumulator (no passes folded in yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of passes pushed so far.
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// Folds one pass's `[N, C]` probabilities into the running sums.
    ///
    /// # Panics
    ///
    /// Panics if the shape differs from earlier passes.
    pub fn push(&mut self, probs: &Tensor) {
        let n = probs.shape()[0];
        if self.passes == 0 {
            self.sum.copy_from(probs);
            self.sum_sq.resize_to(probs.shape());
            for (s, &p) in self.sum_sq.as_mut_slice().iter_mut().zip(probs.as_slice()) {
                *s = p * p;
            }
            self.sum_entropy.clear();
            self.sum_entropy.extend((0..n).map(|i| entropy_of(probs.row(i))));
        } else {
            assert_eq!(
                probs.shape(),
                self.sum.shape(),
                "inconsistent logit shapes across passes"
            );
            self.sum.axpy(1.0, probs);
            for (s, &p) in self.sum_sq.as_mut_slice().iter_mut().zip(probs.as_slice()) {
                *s += 1.0 * (p * p);
            }
            for (i, acc) in self.sum_entropy.iter_mut().enumerate() {
                *acc += entropy_of(probs.row(i));
            }
        }
        self.passes += 1;
    }

    /// Reduces everything pushed so far into a [`Predictive`]. The
    /// accumulator is left untouched, so more passes can still be
    /// folded in afterwards (running reports).
    ///
    /// # Panics
    ///
    /// Panics if no pass was pushed — "need at least one MC pass".
    pub fn finish(&self) -> Predictive {
        assert!(self.passes > 0, "need at least one MC pass");
        let passes = self.passes;
        let (n, c) = (self.sum.shape()[0], self.sum.shape()[1]);
        let tf = passes as f32;
        let mean_probs = self.sum.map(|v| v / tf);
        let entropy: Vec<f64> = (0..n).map(|i| entropy_of(mean_probs.row(i))).collect();
        let mutual_information: Vec<f64> = (0..n)
            .map(|i| (entropy[i] - self.sum_entropy[i] / passes as f64).max(0.0))
            .collect();
        let variance: Vec<f64> = (0..n)
            .map(|i| {
                (0..c)
                    .map(|j| {
                        let m = mean_probs[i * c + j] as f64;
                        (self.sum_sq[i * c + j] as f64 / passes as f64) - m * m
                    })
                    .sum::<f64>()
                    .max(0.0)
                    / c as f64
            })
            .collect();
        Predictive { mean_probs, entropy, mutual_information, variance, passes }
    }
}

/// Derives the per-pass RNG seeds for seeded MC inference: a
/// [`SplitMix64`] stream over the caller's master seed, one output per
/// pass. This schedule is shared by [`mc_predict_seeded`] and the
/// parallel engine in `neuspin-core::pool`, so a pass draws the same
/// noise no matter which worker (or how many) executes it.
pub fn pass_seeds(seed: u64, passes: usize) -> Vec<u64> {
    let mut sm = SplitMix64::new(seed);
    (0..passes).map(|_| sm.next_u64()).collect()
}

/// Sequential reference for seeded MC inference: runs `passes` forward
/// passes, each on its own RNG stream derived from `seed` via
/// [`pass_seeds`], reduced in ascending pass order. The parallel engine
/// is bit-identical to this function at any thread count.
///
/// The closure receives the pass index and that pass's private RNG and
/// must return logits `[N, C]`.
///
/// # Panics
///
/// Panics if `passes == 0` or the closure returns inconsistent shapes.
pub fn mc_predict_seeded(
    passes: usize,
    seed: u64,
    mut forward: impl FnMut(usize, &mut StdRng) -> Tensor,
) -> Predictive {
    let seeds = pass_seeds(seed, passes);
    mc_predict_with(passes, |t| {
        let mut rng = StdRng::seed_from_u64(seeds[t]);
        forward(t, &mut rng)
    })
}

/// Monte-Carlo prediction of a software model: `passes` forward passes
/// in [`Mode::Sample`].
pub fn mc_predict(
    model: &mut Sequential,
    inputs: &Tensor,
    passes: usize,
    rng: &mut StdRng,
) -> Predictive {
    mc_predict_with(passes, |_| model.forward(inputs, Mode::Sample, rng))
}

/// Deterministic (single `Eval` pass) prediction wrapped in the same
/// report type, for baseline comparisons.
pub fn eval_predict(model: &mut Sequential, inputs: &Tensor, rng: &mut StdRng) -> Predictive {
    mc_predict_with(1, |_| model.forward(inputs, Mode::Eval, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuspin_nn::{Dropout, Linear};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    fn dropout_model(r: &mut StdRng) -> Sequential {
        let mut m = Sequential::new();
        m.push(Linear::new(4, 16, r));
        m.push(Dropout::new(0.5));
        m.push(Linear::new(16, 3, r));
        m
    }

    #[test]
    fn shapes_and_bounds() {
        let mut r = rng();
        let mut m = dropout_model(&mut r);
        let x = Tensor::ones(&[5, 4]);
        let p = mc_predict(&mut m, &x, 8, &mut r);
        assert_eq!(p.mean_probs.shape(), &[5, 3]);
        assert_eq!(p.entropy.len(), 5);
        assert_eq!(p.passes, 8);
        for i in 0..5 {
            let row_sum: f32 = p.mean_probs.row(i).iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-4);
            assert!(p.entropy[i] >= 0.0 && p.entropy[i] <= (3.0f64).ln() + 1e-9);
            assert!(p.mutual_information[i] >= 0.0);
            assert!(p.mutual_information[i] <= p.entropy[i] + 1e-9);
            assert!(p.variance[i] >= 0.0);
        }
    }

    #[test]
    fn bits_digest_separates_bit_level_differences() {
        let mut r = rng();
        let mut m = dropout_model(&mut r);
        let x = Tensor::ones(&[3, 4]);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a = mc_predict(&mut m, &x, 8, &mut r1);
        let b = mc_predict(&mut m, &x, 8, &mut r2);
        assert_eq!(a.bits_digest(), b.bits_digest(), "same seed → same digest");
        let mut c = mc_predict(&mut m, &x, 8, &mut StdRng::seed_from_u64(6));
        assert_ne!(a.bits_digest(), c.bits_digest(), "different passes → different digest");
        // A single ULP flip in one probability must change the digest.
        c = a.clone();
        let flat = c.mean_probs.as_mut_slice();
        flat[0] = f32::from_bits(flat[0].to_bits() ^ 1);
        assert_ne!(a.bits_digest(), c.bits_digest());
    }

    #[test]
    fn deterministic_model_has_zero_mi() {
        let mut r = rng();
        let mut m = Sequential::new();
        m.push(Linear::new(4, 3, &mut r));
        let x = Tensor::ones(&[2, 4]);
        let p = mc_predict(&mut m, &x, 6, &mut r);
        for mi in &p.mutual_information {
            assert!(*mi < 1e-6, "no stochastic layers → no epistemic uncertainty");
        }
        for v in &p.variance {
            assert!(*v < 1e-6, "f32 rounding only");
        }
    }

    #[test]
    fn stochastic_model_has_positive_mi() {
        let mut r = rng();
        let mut m = dropout_model(&mut r);
        let x = Tensor::from_fn(&[3, 4], |i| (i as f32 * 0.61).sin() * 2.0);
        let p = mc_predict(&mut m, &x, 32, &mut r);
        assert!(p.mutual_information.iter().any(|&mi| mi > 1e-4), "{:?}", p.mutual_information);
    }

    #[test]
    fn accuracy_and_confidence() {
        let probs = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2]);
        let p = Predictive {
            mean_probs: probs,
            entropy: vec![0.0; 2],
            mutual_information: vec![0.0; 2],
            variance: vec![0.0; 2],
            passes: 1,
        };
        assert_eq!(p.predictions(), vec![0, 1]);
        assert_eq!(p.accuracy(&[0, 1]), 1.0);
        assert_eq!(p.accuracy(&[1, 1]), 0.5);
        assert!((p.confidence()[0] - 0.9).abs() < 1e-6);
    }

    #[test]
    fn more_passes_stabilize_mean() {
        let mut r = rng();
        let mut m = dropout_model(&mut r);
        let x = Tensor::ones(&[1, 4]);
        let reference = mc_predict(&mut m, &x, 600, &mut r);
        let small_a = mc_predict(&mut m, &x, 4, &mut r);
        let big_a = mc_predict(&mut m, &x, 200, &mut r);
        let dev =
            |p: &Predictive| (&p.mean_probs - &reference.mean_probs).map(f32::abs).max();
        assert!(dev(&big_a) < dev(&small_a) + 0.05, "law of large numbers");
    }

    #[test]
    #[should_panic(expected = "at least one MC pass")]
    fn zero_passes_rejected() {
        let _ = mc_predict_with(0, |_| Tensor::zeros(&[1, 2]));
    }

    #[test]
    #[should_panic(expected = "at least one MC pass")]
    fn empty_accumulator_rejected() {
        let _ = McAccumulator::new().finish();
    }

    #[test]
    fn accumulator_matches_mc_aggregate_bitwise() {
        let mut r = rng();
        let mut m = dropout_model(&mut r);
        let x = Tensor::from_fn(&[4, 4], |i| (i as f32 * 0.43).sin());
        // Pre-generate the per-pass probabilities so both reducers see
        // bit-identical inputs.
        let per_pass: Vec<Tensor> =
            (0..7).map(|_| softmax(&m.forward(&x, Mode::Sample, &mut r))).collect();
        let want = mc_aggregate(7, |t| per_pass[t].clone());
        let mut acc = McAccumulator::new();
        for p in &per_pass {
            acc.push(p);
        }
        assert_eq!(acc.passes(), 7);
        let got = acc.finish();
        assert_eq!(got.passes, want.passes);
        for (a, b) in got.mean_probs.as_slice().iter().zip(want.mean_probs.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in got.entropy.iter().zip(&want.entropy) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in got.mutual_information.iter().zip(&want.mutual_information) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in got.variance.iter().zip(&want.variance) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "inconsistent logit shapes")]
    fn accumulator_rejects_shape_drift() {
        let mut acc = McAccumulator::new();
        acc.push(&Tensor::from_vec(vec![0.5, 0.5], &[1, 2]));
        acc.push(&Tensor::from_vec(vec![0.5, 0.5, 0.0], &[1, 3]));
    }

    #[test]
    fn pass_seeds_deterministic_distinct_and_prefix_stable() {
        let a = pass_seeds(42, 8);
        assert_eq!(a, pass_seeds(42, 8));
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8, "per-pass seeds must be distinct");
        assert_ne!(pass_seeds(43, 8), a);
        assert_eq!(pass_seeds(42, 4)[..], a[..4], "shorter runs share the prefix");
    }

    #[test]
    fn mc_predict_seeded_is_reproducible_and_isolated() {
        let mut r = rng();
        let mut m = dropout_model(&mut r);
        let x = Tensor::ones(&[3, 4]);
        let a = mc_predict_seeded(6, 9, |_, pass_rng| m.forward(&x, Mode::Sample, pass_rng));
        // A detour on the ambient RNG must not affect seeded prediction.
        let _ = m.forward(&x, Mode::Sample, &mut r);
        let b = mc_predict_seeded(6, 9, |_, pass_rng| m.forward(&x, Mode::Sample, pass_rng));
        assert_eq!(a, b);
        let c = mc_predict_seeded(6, 10, |_, pass_rng| m.forward(&x, Mode::Sample, pass_rng));
        assert_ne!(a.mean_probs, c.mean_probs, "different seed, different draws");
    }

    #[test]
    fn gate_abstains_on_high_entropy() {
        let probs = Tensor::from_vec(vec![0.99, 0.01, 0.5, 0.5, 0.95, 0.05], &[3, 2]);
        let p = Predictive {
            mean_probs: probs,
            entropy: vec![0.056, 0.693, 0.199],
            mutual_information: vec![0.0; 3],
            variance: vec![0.0; 3],
            passes: 1,
        };
        let g = p.gate(0.3);
        assert_eq!(g.accepted, vec![true, false, true]);
        assert!((g.coverage() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.abstained(), 1);
        // Labels: sample 0 right, sample 1 wrong (abstained), sample 2 right.
        assert_eq!(p.accuracy(&[0, 0, 0]), 2.0 / 3.0);
        assert_eq!(p.accuracy_on_accepted(&[0, 0, 0], &g), 1.0);
    }

    #[test]
    fn select_gathers_rows_bit_for_bit() {
        let mut r = rng();
        let mut m = dropout_model(&mut r);
        let x = Tensor::from_fn(&[5, 4], |i| (i as f32 * 0.37).cos());
        let p = mc_predict(&mut m, &x, 8, &mut r);
        let sub = p.select(&[3, 0, 3]);
        assert_eq!(sub.mean_probs.shape(), &[3, 3]);
        assert_eq!(sub.passes, p.passes);
        for (out_row, &src_row) in [3usize, 0, 3].iter().enumerate() {
            assert_eq!(sub.mean_probs.row(out_row), p.mean_probs.row(src_row));
            assert_eq!(sub.entropy[out_row].to_bits(), p.entropy[src_row].to_bits());
            assert_eq!(
                sub.mutual_information[out_row].to_bits(),
                p.mutual_information[src_row].to_bits()
            );
            assert_eq!(sub.variance[out_row].to_bits(), p.variance[src_row].to_bits());
        }
        let empty = p.select(&[]);
        assert_eq!(empty.mean_probs.shape(), &[0, 3]);
        assert!(empty.entropy.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn select_rejects_out_of_range_rows() {
        let p = Predictive {
            mean_probs: Tensor::from_vec(vec![0.5, 0.5], &[1, 2]),
            entropy: vec![0.0],
            mutual_information: vec![0.0],
            variance: vec![0.0],
            passes: 1,
        };
        let _ = p.select(&[1]);
    }

    #[test]
    fn full_abstention_scores_zero() {
        let probs = Tensor::from_vec(vec![0.5, 0.5], &[1, 2]);
        let p = Predictive {
            mean_probs: probs,
            entropy: vec![0.693],
            mutual_information: vec![0.0],
            variance: vec![0.0],
            passes: 1,
        };
        let g = p.gate(0.1);
        assert_eq!(g.coverage(), 0.0);
        assert_eq!(p.accuracy_on_accepted(&[0], &g), 0.0);
    }
}
