//! # neuspin-data — synthetic datasets
//!
//! Procedural datasets standing in for the paper's MNIST-class /
//! segmentation / time-series benchmarks (none of which are available
//! offline). Each generator is fully seeded and parameterised so the
//! experiments control difficulty, corruption, and distribution shift
//! exactly:
//!
//! * [`digits`] — 16×16 stroke-rendered ten-class digit images;
//! * [`corrupt`] — five corruption families at severities 1–5;
//! * [`ood`] — uniform-noise / heavy-rotation / texture OOD probes;
//! * [`moons`] — two-moons and gaussian blobs (quickstart demos);
//! * [`series`] — sine-mixture time series for the LSTM experiment;
//! * [`shapes`] — a toy semantic-segmentation task (SpinBayes).
//!
//! ## Example
//!
//! ```
//! use neuspin_data::digits::{dataset, DigitStyle};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let train = dataset(200, &DigitStyle::default(), &mut rng);
//! assert_eq!(train.inputs.shape(), &[200, 1, 16, 16]);
//! ```

pub mod corrupt;
pub mod digits;
pub mod moons;
pub mod ood;
pub mod series;
pub mod shapes;
pub mod util;

pub use corrupt::{corrupt_dataset, corrupt_image, Corruption};
pub use digits::DigitStyle;
pub use series::SeriesDataset;
pub use shapes::SegDataset;
pub use util::Image;
