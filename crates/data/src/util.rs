//! Shared image utilities for the dataset generators.

/// A single-channel float image.
///
/// # Examples
///
/// ```
/// use neuspin_data::util::Image;
///
/// let mut img = Image::zeros(4, 4);
/// img.set(1, 2, 0.5);
/// assert_eq!(img.get(1, 2), 0.5);
/// assert_eq!(img.pixels().len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<f32>,
}

impl Image {
    /// A black image.
    pub fn zeros(width: usize, height: usize) -> Self {
        Self { width, height, pixels: vec![0.0; width * height] }
    }

    /// Wraps existing row-major pixel data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_slice(data: &[f32], width: usize, height: usize) -> Self {
        assert_eq!(data.len(), width * height, "pixel count mismatch");
        Self { width, height, pixels: data.to_vec() }
    }

    /// Image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major pixel data.
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Mutable pixel data.
    pub fn pixels_mut(&mut self) -> &mut [f32] {
        &mut self.pixels
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height, "({x},{y}) out of range");
        self.pixels[y * self.width + x]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        assert!(x < self.width && y < self.height, "({x},{y}) out of range");
        self.pixels[y * self.width + x] = v;
    }

    /// Bilinear sample at fractional coordinates (0 outside the image).
    pub fn sample(&self, x: f32, y: f32) -> f32 {
        if x < 0.0 || y < 0.0 {
            return 0.0;
        }
        let x0 = x.floor() as usize;
        let y0 = y.floor() as usize;
        if x0 + 1 >= self.width || y0 + 1 >= self.height {
            if x0 < self.width && y0 < self.height {
                return self.get(x0, y0);
            }
            return 0.0;
        }
        let fx = x - x0 as f32;
        let fy = y - y0 as f32;
        let p00 = self.get(x0, y0);
        let p10 = self.get(x0 + 1, y0);
        let p01 = self.get(x0, y0 + 1);
        let p11 = self.get(x0 + 1, y0 + 1);
        p00 * (1.0 - fx) * (1.0 - fy) + p10 * fx * (1.0 - fy) + p01 * (1.0 - fx) * fy + p11 * fx * fy
    }

    /// Renders the image as ASCII art (for terminal inspection).
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let v = self.get(x, y).clamp(0.0, 1.0);
                let idx = (v * (RAMP.len() - 1) as f32).round() as usize;
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

/// Rotates an image by `angle` radians around its centre (bilinear
/// resampling, zero fill).
pub fn rotate_image(img: &Image, angle: f32) -> Image {
    let (w, h) = (img.width(), img.height());
    let (cx, cy) = (w as f32 / 2.0 - 0.5, h as f32 / 2.0 - 0.5);
    let (sin_t, cos_t) = angle.sin_cos();
    let mut out = Image::zeros(w, h);
    for y in 0..h {
        for x in 0..w {
            // Inverse-rotate the destination pixel into source coords.
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            let sx = cx + dx * cos_t + dy * sin_t;
            let sy = cy - dx * sin_t + dy * cos_t;
            out.set(x, y, img.sample(sx, sy));
        }
    }
    out
}

/// 3×3 box blur, applied `iterations` times (edges clamp).
pub fn box_blur(img: &Image, iterations: usize) -> Image {
    let (w, h) = (img.width(), img.height());
    let mut current = img.clone();
    for _ in 0..iterations {
        let mut next = Image::zeros(w, h);
        for y in 0..h {
            for x in 0..w {
                let mut sum = 0.0;
                let mut count = 0.0;
                for dy in -1i32..=1 {
                    for dx in -1i32..=1 {
                        let nx = x as i32 + dx;
                        let ny = y as i32 + dy;
                        if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                            sum += current.get(nx as usize, ny as usize);
                            count += 1.0;
                        }
                    }
                }
                next.set(x, y, sum / count);
            }
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_accessors() {
        let mut img = Image::zeros(3, 2);
        img.set(2, 1, 0.7);
        assert_eq!(img.get(2, 1), 0.7);
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
    }

    #[test]
    fn bilinear_sample_interpolates() {
        let mut img = Image::zeros(2, 2);
        img.set(0, 0, 0.0);
        img.set(1, 0, 1.0);
        assert!((img.sample(0.5, 0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sample_outside_is_zero() {
        let img = Image::from_slice(&[1.0; 4], 2, 2);
        assert_eq!(img.sample(-1.0, 0.0), 0.0);
        assert_eq!(img.sample(0.0, 10.0), 0.0);
    }

    #[test]
    fn rotation_by_zero_is_identity_ish() {
        let mut img = Image::zeros(8, 8);
        img.set(3, 4, 1.0);
        let rot = rotate_image(&img, 0.0);
        assert!((rot.get(3, 4) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn rotation_by_pi_flips() {
        let mut img = Image::zeros(8, 8);
        img.set(1, 1, 1.0);
        let rot = rotate_image(&img, std::f32::consts::PI);
        // (1,1) maps to (6,6) for an 8×8 grid centred at 3.5.
        assert!(rot.get(6, 6) > 0.9, "got {}", rot.get(6, 6));
    }

    #[test]
    fn blur_spreads_mass() {
        let mut img = Image::zeros(5, 5);
        img.set(2, 2, 1.0);
        let blurred = box_blur(&img, 1);
        assert!(blurred.get(2, 2) < 1.0);
        assert!(blurred.get(1, 2) > 0.0);
        // Total mass approximately conserved in the interior.
        let total: f32 = blurred.pixels().iter().sum();
        assert!((total - 1.0).abs() < 0.05);
    }

    #[test]
    fn ascii_rendering_has_rows() {
        let img = Image::zeros(4, 3);
        let art = img.to_ascii();
        assert_eq!(art.lines().count(), 3);
        assert_eq!(art.lines().next().unwrap().len(), 4);
    }
}
