//! A toy semantic-segmentation task (the SpinBayes paper evaluates on
//! segmentation; this is the synthetic stand-in).
//!
//! Each 16×16 image contains one filled shape — a rectangle or a disc —
//! over a noisy background; the label map assigns every pixel one of
//! three classes: background (0), rectangle (1), disc (2).

use crate::util::Image;
use neuspin_nn::Tensor;
use rand::rngs::StdRng;
use rand::RngExt;

/// Image side for the segmentation task.
pub const SIDE: usize = 16;
/// Number of per-pixel classes (background, rectangle, disc).
pub const CLASSES: usize = 3;

/// A segmentation dataset: images `[n, 1, 16, 16]` and per-pixel labels
/// `[n, 16·16]` (row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct SegDataset {
    /// Input images.
    pub inputs: Tensor,
    /// Per-pixel class labels, `n × (16·16)` flattened.
    pub pixel_labels: Vec<usize>,
}

impl SegDataset {
    /// Number of images.
    pub fn len(&self) -> usize {
        self.inputs.shape()[0]
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The label map of image `i`.
    pub fn labels_of(&self, i: usize) -> &[usize] {
        &self.pixel_labels[i * SIDE * SIDE..(i + 1) * SIDE * SIDE]
    }
}

/// Generates `n` images, alternating rectangle / disc shapes.
pub fn dataset(n: usize, noise: f32, rng: &mut StdRng) -> SegDataset {
    let mut inputs = Vec::with_capacity(n * SIDE * SIDE);
    let mut labels = Vec::with_capacity(n * SIDE * SIDE);
    for i in 0..n {
        let is_disc = i % 2 == 1;
        let (img, lab) = render(is_disc, noise, rng);
        inputs.extend_from_slice(img.pixels());
        labels.extend_from_slice(&lab);
    }
    SegDataset {
        inputs: Tensor::from_vec(inputs, &[n, 1, SIDE, SIDE]),
        pixel_labels: labels,
    }
}

fn render(is_disc: bool, noise: f32, rng: &mut StdRng) -> (Image, Vec<usize>) {
    let mut img = Image::zeros(SIDE, SIDE);
    let mut labels = vec![0usize; SIDE * SIDE];
    // Background speckle.
    for p in img.pixels_mut() {
        *p = rng.random::<f32>() * noise;
    }
    let cx = 4.0 + rng.random::<f32>() * 8.0;
    let cy = 4.0 + rng.random::<f32>() * 8.0;
    let r = 2.5 + rng.random::<f32>() * 2.5;
    let class = if is_disc { 2 } else { 1 };
    let intensity = 0.75 + rng.random::<f32>() * 0.25;
    for y in 0..SIDE {
        for x in 0..SIDE {
            let (fx, fy) = (x as f32 + 0.5, y as f32 + 0.5);
            let inside = if is_disc {
                (fx - cx).powi(2) + (fy - cy).powi(2) <= r * r
            } else {
                (fx - cx).abs() <= r && (fy - cy).abs() <= r
            };
            if inside {
                img.set(x, y, (intensity + rng.random::<f32>() * noise).min(1.0));
                labels[y * SIDE + x] = class;
            }
        }
    }
    (img, labels)
}

/// Per-pixel accuracy between predicted and true label maps.
///
/// # Panics
///
/// Panics if lengths differ or are zero.
pub fn pixel_accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty label maps");
    let hits = pred.iter().zip(truth).filter(|(a, b)| a == b).count();
    hits as f64 / pred.len() as f64
}

/// Mean intersection-over-union across classes (ignoring classes absent
/// from both maps).
pub fn mean_iou(pred: &[usize], truth: &[usize], classes: usize) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    let mut total = 0.0;
    let mut counted = 0;
    for c in 0..classes {
        let mut inter = 0usize;
        let mut union = 0usize;
        for (&p, &t) in pred.iter().zip(truth) {
            let pp = p == c;
            let tt = t == c;
            if pp && tt {
                inter += 1;
            }
            if pp || tt {
                union += 1;
            }
        }
        if union > 0 {
            total += inter as f64 / union as f64;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31337)
    }

    #[test]
    fn dataset_shapes_and_alternation() {
        let mut r = rng();
        let d = dataset(10, 0.1, &mut r);
        assert_eq!(d.inputs.shape(), &[10, 1, 16, 16]);
        assert_eq!(d.pixel_labels.len(), 10 * 256);
        // Even images contain class 1 (rectangle), odd class 2 (disc).
        assert!(d.labels_of(0).contains(&1));
        assert!(!d.labels_of(0).contains(&2));
        assert!(d.labels_of(1).contains(&2));
    }

    #[test]
    fn shape_pixels_are_bright() {
        let mut r = rng();
        let d = dataset(4, 0.1, &mut r);
        for i in 0..4 {
            let labels = d.labels_of(i);
            for (pi, &l) in labels.iter().enumerate() {
                let v = d.inputs.as_slice()[i * 256 + pi];
                if l != 0 {
                    assert!(v > 0.5, "shape pixel must be bright, got {v}");
                }
            }
        }
    }

    #[test]
    fn pixel_accuracy_basics() {
        assert_eq!(pixel_accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(pixel_accuracy(&[0, 0, 0], &[0, 1, 2]), 1.0 / 3.0);
    }

    #[test]
    fn iou_perfect_is_one() {
        let labels = vec![0, 0, 1, 1, 2];
        assert!((mean_iou(&labels, &labels, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iou_penalizes_mislabels() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 1, 1];
        let iou = mean_iou(&pred, &truth, 2);
        // class 0: inter 1, union 2 → 0.5 ; class 1: inter 2, union 3 → 2/3.
        assert!((iou - (0.5 + 2.0 / 3.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatch() {
        let _ = pixel_accuracy(&[0], &[0, 1]);
    }
}
