//! Out-of-distribution probe sets.
//!
//! The paper's OOD-detection experiments feed the trained classifier
//! inputs from a different distribution and count how many are flagged
//! by the uncertainty estimate. Three probes, matching the paper's
//! choices:
//!
//! * [`uniform_noise`] — i.i.d. uniform pixels (§III-A4's
//!   "uniform noise" probe),
//! * [`rotated_ood`] — digits rotated by 90°–270° ("random rotation"),
//! * [`textures`] — structured checkerboard/stripe patterns (an
//!   "other dataset" stand-in with strong spatial correlations).

use crate::digits::{self, DigitStyle};
use crate::util::Image;
use neuspin_nn::{Dataset, Tensor};
use rand::rngs::StdRng;
use rand::RngExt;

/// `n` images of i.i.d. uniform noise in `[0, 1]`, shaped like the
/// digit set (`[n, 1, 16, 16]`). Labels are all zero (unused by OOD
/// scoring).
pub fn uniform_noise(n: usize, rng: &mut StdRng) -> Dataset {
    let side = digits::SIDE;
    let data: Vec<f32> = (0..n * side * side).map(|_| rng.random::<f32>()).collect();
    Dataset::new(Tensor::from_vec(data, &[n, 1, side, side]), vec![0; n])
}

/// `n` digit images rotated by a uniformly random angle in
/// `[90°, 270°]` — far outside the training distribution's ±10° jitter.
pub fn rotated_ood(n: usize, style: &DigitStyle, rng: &mut StdRng) -> Dataset {
    use std::f32::consts::PI;
    let side = digits::SIDE;
    let mut data = Vec::with_capacity(n * side * side);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = i % digits::CLASSES;
        let img = digits::render_digit(digit, style, rng);
        let angle = PI / 2.0 + rng.random::<f32>() * PI; // 90°..270°
        let rot = crate::util::rotate_image(&img, angle);
        data.extend_from_slice(rot.pixels());
        labels.push(digit);
    }
    Dataset::new(Tensor::from_vec(data, &[n, 1, side, side]), labels)
}

/// `n` structured texture images: random-phase checkerboards and
/// stripes with random period 2–5 pixels.
pub fn textures(n: usize, rng: &mut StdRng) -> Dataset {
    let side = digits::SIDE;
    let mut data = Vec::with_capacity(n * side * side);
    for _ in 0..n {
        let period = 2 + rng.random_range(0..4usize);
        let phase_x = rng.random_range(0..period);
        let phase_y = rng.random_range(0..period);
        let stripes_only = rng.random::<bool>();
        let mut img = Image::zeros(side, side);
        for y in 0..side {
            for x in 0..side {
                let cx = (x + phase_x) / period % 2;
                let cy = (y + phase_y) / period % 2;
                let v = if stripes_only {
                    cx as f32
                } else {
                    ((cx + cy) % 2) as f32
                };
                img.set(x, y, v * 0.9 + 0.05);
            }
        }
        data.extend_from_slice(img.pixels());
    }
    Dataset::new(Tensor::from_vec(data, &[n, 1, side, side]), vec![0; n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(808)
    }

    #[test]
    fn uniform_noise_statistics() {
        let mut r = rng();
        let d = uniform_noise(20, &mut r);
        assert_eq!(d.inputs.shape(), &[20, 1, 16, 16]);
        let mean = d.inputs.mean();
        assert!((mean - 0.5).abs() < 0.05, "uniform mean ≈ 0.5, got {mean}");
    }

    #[test]
    fn rotated_ood_differs_from_in_distribution() {
        let mut r1 = rng();
        let mut r2 = rng();
        let style = DigitStyle::default();
        let id = digits::dataset(20, &style, &mut r1);
        let ood = rotated_ood(20, &style, &mut r2);
        assert_eq!(ood.inputs.shape(), id.inputs.shape());
        let diff: f32 = id
            .inputs
            .as_slice()
            .iter()
            .zip(ood.inputs.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 100.0, "heavy rotation must move substantial mass");
    }

    #[test]
    fn textures_are_binaryish_patterns() {
        let mut r = rng();
        let d = textures(10, &mut r);
        // Values concentrate at the two pattern levels.
        let extreme = d
            .inputs
            .as_slice()
            .iter()
            .filter(|&&v| (v - 0.05).abs() < 1e-4 || (v - 0.95).abs() < 1e-4)
            .count();
        assert_eq!(extreme, d.inputs.len());
    }

    #[test]
    fn textures_vary_between_samples() {
        let mut r = rng();
        let d = textures(8, &mut r);
        let per = 16 * 16;
        let first = &d.inputs.as_slice()[..per];
        let distinct = (1..8).any(|i| &d.inputs.as_slice()[i * per..(i + 1) * per] != first);
        assert!(distinct);
    }
}
