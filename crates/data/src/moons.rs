//! Low-dimensional toy datasets: two-moons and gaussian blobs
//! (quickstart material and uncertainty-visualisation demos).

use neuspin_nn::{Dataset, Tensor};
use rand::rngs::StdRng;
use rand::RngExt;

/// The classic two-moons binary classification set: two interleaved
/// half-circles with additive noise.
///
/// # Examples
///
/// ```
/// use neuspin_data::moons::two_moons;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let d = two_moons(100, 0.1, &mut rng);
/// assert_eq!(d.inputs.shape(), &[100, 2]);
/// assert_eq!(d.labels.iter().filter(|&&l| l == 0).count(), 50);
/// ```
pub fn two_moons(n: usize, noise: f32, rng: &mut StdRng) -> Dataset {
    use std::f32::consts::PI;
    let mut data = Vec::with_capacity(n * 2);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 2;
        let t = rng.random::<f32>() * PI;
        let (mut x, mut y) = if label == 0 {
            (t.cos(), t.sin())
        } else {
            (1.0 - t.cos(), 0.5 - t.sin())
        };
        x += (rng.random::<f32>() * 2.0 - 1.0) * noise;
        y += (rng.random::<f32>() * 2.0 - 1.0) * noise;
        data.push(x);
        data.push(y);
        labels.push(label);
    }
    Dataset::new(Tensor::from_vec(data, &[n, 2]), labels)
}

/// `k` gaussian blobs evenly spaced on a circle of radius `spread`,
/// each with the given `sigma`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn gaussian_blobs(n: usize, k: usize, spread: f32, sigma: f32, rng: &mut StdRng) -> Dataset {
    use std::f32::consts::TAU;
    assert!(k > 0, "need at least one blob");
    let mut data = Vec::with_capacity(n * 2);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % k;
        let angle = TAU * label as f32 / k as f32;
        let gaussian = |rng: &mut StdRng| {
            // Sum of 4 uniforms ≈ gaussian, scaled to unit variance.
            let s: f32 = (0..4).map(|_| rng.random::<f32>()).sum::<f32>() - 2.0;
            s * (12.0f32 / 4.0).sqrt()
        };
        data.push(spread * angle.cos() + sigma * gaussian(rng));
        data.push(spread * angle.sin() + sigma * gaussian(rng));
        labels.push(label);
    }
    Dataset::new(Tensor::from_vec(data, &[n, 2]), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn moons_are_separated_at_low_noise() {
        let mut r = rng();
        let d = two_moons(200, 0.02, &mut r);
        // Mean y of class 0 above mean y of class 1.
        let mut y0 = 0.0;
        let mut y1 = 0.0;
        for i in 0..200 {
            let y = d.inputs[i * 2 + 1];
            if d.labels[i] == 0 {
                y0 += y;
            } else {
                y1 += y;
            }
        }
        assert!(y0 / 100.0 > y1 / 100.0);
    }

    #[test]
    fn blobs_center_on_circle() {
        let mut r = rng();
        let d = gaussian_blobs(300, 3, 5.0, 0.3, &mut r);
        for class in 0..3 {
            let pts: Vec<(f32, f32)> = (0..300)
                .filter(|&i| d.labels[i] == class)
                .map(|i| (d.inputs[i * 2], d.inputs[i * 2 + 1]))
                .collect();
            let cx: f32 = pts.iter().map(|p| p.0).sum::<f32>() / pts.len() as f32;
            let cy: f32 = pts.iter().map(|p| p.1).sum::<f32>() / pts.len() as f32;
            let radius = (cx * cx + cy * cy).sqrt();
            assert!((radius - 5.0).abs() < 0.5, "class {class} radius {radius}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one blob")]
    fn zero_blobs_rejected() {
        let mut r = rng();
        let _ = gaussian_blobs(10, 0, 1.0, 0.1, &mut r);
    }
}
