//! Procedurally generated digit images ("synth-digits").
//!
//! The paper's classification results are on MNIST-class image tasks,
//! which are not available offline. This generator renders ten digit
//! classes as seven-segment stroke patterns on a 16×16 grid with random
//! translation, rotation, per-endpoint jitter, stroke-width variation,
//! and pixel noise — a ten-class image problem in the same difficulty
//! band (simple models reach ~90 %, matching Table I's accuracy range),
//! with full control over corruption and distribution shift.

use crate::util::{rotate_image, Image};
use neuspin_nn::{Dataset, Tensor};
use rand::rngs::StdRng;
use rand::RngExt;

/// Image side length of the generated digits.
pub const SIDE: usize = 16;
/// Number of classes.
pub const CLASSES: usize = 10;

/// Segment endpoints in unit coordinates (x right, y down).
/// Standard seven-segment layout: A top, B top-right, C bottom-right,
/// D bottom, E bottom-left, F top-left, G middle.
const SEGMENTS: [((f32, f32), (f32, f32)); 7] = [
    ((0.15, 0.05), (0.85, 0.05)), // A
    ((0.85, 0.05), (0.85, 0.50)), // B
    ((0.85, 0.50), (0.85, 0.95)), // C
    ((0.15, 0.95), (0.85, 0.95)), // D
    ((0.15, 0.50), (0.15, 0.95)), // E
    ((0.15, 0.05), (0.15, 0.50)), // F
    ((0.15, 0.50), (0.85, 0.50)), // G
];

/// Which segments each digit lights (A..G).
const DIGIT_SEGMENTS: [[bool; 7]; 10] = [
    [true, true, true, true, true, true, false],    // 0
    [false, true, true, false, false, false, false], // 1
    [true, true, false, true, true, false, true],   // 2
    [true, true, true, true, false, false, true],   // 3
    [false, true, true, false, false, true, true],  // 4
    [true, false, true, true, false, true, true],   // 5
    [true, false, true, true, true, true, true],    // 6
    [true, true, true, false, false, false, false], // 7
    [true, true, true, true, true, true, true],     // 8
    [true, true, true, true, false, true, true],    // 9
];

/// Generation knobs for the digit renderer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitStyle {
    /// Max random translation in pixels (uniform each axis).
    pub jitter_translate: f32,
    /// Max random rotation in radians.
    pub jitter_rotate: f32,
    /// Per-endpoint positional jitter in pixels.
    pub jitter_endpoints: f32,
    /// Gaussian stroke radius in pixels (stroke "thickness").
    pub stroke_sigma: f32,
    /// Additive gaussian pixel noise sigma.
    pub pixel_noise: f32,
    /// Probability that a lit segment renders faint (ink fade).
    pub segment_fade: f32,
    /// Number of random distractor strokes drawn over the image.
    pub distractors: usize,
}

impl Default for DigitStyle {
    /// The difficulty is tuned so that the small binary networks of the
    /// experiments land in the paper's ~90 % accuracy band.
    fn default() -> Self {
        Self {
            jitter_translate: 1.3,
            jitter_rotate: 0.16,
            jitter_endpoints: 0.7,
            stroke_sigma: 0.85,
            pixel_noise: 0.10,
            segment_fade: 0.08,
            distractors: 1,
        }
    }
}

impl DigitStyle {
    /// A clean, noise-free style (for visual inspection and tests).
    pub fn clean() -> Self {
        Self {
            jitter_translate: 0.0,
            jitter_rotate: 0.0,
            jitter_endpoints: 0.0,
            stroke_sigma: 0.8,
            pixel_noise: 0.0,
            segment_fade: 0.0,
            distractors: 0,
        }
    }

    /// An easier variant (mild jitter, light noise) for quick demos.
    pub fn easy() -> Self {
        Self {
            jitter_translate: 1.2,
            jitter_rotate: 0.16,
            jitter_endpoints: 0.6,
            stroke_sigma: 0.85,
            pixel_noise: 0.08,
            segment_fade: 0.0,
            distractors: 0,
        }
    }
}

fn gaussian_jitter(rng: &mut StdRng, scale: f32) -> f32 {
    if scale == 0.0 {
        return 0.0;
    }
    (rng.random::<f32>() * 2.0 - 1.0) * scale
}

/// Renders one digit image in `[0, 1]` (before noise; noise can push
/// values slightly outside).
pub fn render_digit(digit: usize, style: &DigitStyle, rng: &mut StdRng) -> Image {
    assert!(digit < CLASSES, "digit {digit} out of range");
    let margin = 2.5f32;
    let span = SIDE as f32 - 2.0 * margin;
    let (dx, dy) = (
        gaussian_jitter(rng, style.jitter_translate),
        gaussian_jitter(rng, style.jitter_translate),
    );
    let theta = gaussian_jitter(rng, style.jitter_rotate);
    let (sin_t, cos_t) = theta.sin_cos();
    let center = SIDE as f32 / 2.0;

    // Collect jittered, rotated, translated segment endpoints in pixels,
    // each with its own intensity (faded segments emulate weak ink).
    type Stroke = ((f32, f32), (f32, f32), f32);
    let mut strokes: Vec<Stroke> = Vec::new();
    for (si, &((x0, y0), (x1, y1))) in SEGMENTS.iter().enumerate() {
        if !DIGIT_SEGMENTS[digit][si] {
            continue;
        }
        let transform = |x: f32, y: f32, rng: &mut StdRng| {
            let px = margin + x * span + gaussian_jitter(rng, style.jitter_endpoints) + dx;
            let py = margin + y * span + gaussian_jitter(rng, style.jitter_endpoints) + dy;
            // Rotate around the image centre.
            let (rx, ry) = (px - center, py - center);
            (center + rx * cos_t - ry * sin_t, center + rx * sin_t + ry * cos_t)
        };
        let a = transform(x0, y0, rng);
        let b = transform(x1, y1, rng);
        let intensity = if style.segment_fade > 0.0 && rng.random::<f32>() < style.segment_fade {
            0.35 + 0.25 * rng.random::<f32>()
        } else {
            1.0
        };
        strokes.push((a, b, intensity));
    }
    // Distractor strokes: short random segments at moderate intensity.
    for _ in 0..style.distractors {
        let ax = rng.random::<f32>() * SIDE as f32;
        let ay = rng.random::<f32>() * SIDE as f32;
        let bx = (ax + gaussian_jitter(rng, 5.0)).clamp(0.0, SIDE as f32);
        let by = (ay + gaussian_jitter(rng, 5.0)).clamp(0.0, SIDE as f32);
        strokes.push(((ax, ay), (bx, by), 0.45 + 0.3 * rng.random::<f32>()));
    }

    let two_sigma_sq = 2.0 * style.stroke_sigma * style.stroke_sigma;
    let mut img = Image::zeros(SIDE, SIDE);
    for py in 0..SIDE {
        for px in 0..SIDE {
            let (fx, fy) = (px as f32 + 0.5, py as f32 + 0.5);
            let mut v = 0.0f32;
            for &((ax, ay), (bx, by), intensity) in &strokes {
                let d2 = dist_sq_to_segment(fx, fy, ax, ay, bx, by);
                v = v.max(intensity * (-d2 / two_sigma_sq).exp());
            }
            if style.pixel_noise > 0.0 {
                // Cheap gaussian-ish noise: sum of two uniforms.
                let n = (rng.random::<f32>() + rng.random::<f32>() - 1.0) * style.pixel_noise * 1.7;
                v += n;
            }
            img.set(px, py, v.clamp(0.0, 1.0));
        }
    }
    img
}

fn dist_sq_to_segment(px: f32, py: f32, ax: f32, ay: f32, bx: f32, by: f32) -> f32 {
    let (abx, aby) = (bx - ax, by - ay);
    let (apx, apy) = (px - ax, py - ay);
    let len_sq = abx * abx + aby * aby;
    let t = if len_sq > 0.0 { ((apx * abx + apy * aby) / len_sq).clamp(0.0, 1.0) } else { 0.0 };
    let (cx, cy) = (ax + t * abx, ay + t * aby);
    let (dx, dy) = (px - cx, py - cy);
    dx * dx + dy * dy
}

/// Generates a balanced dataset of `n` digit images as a
/// `[n, 1, 16, 16]` NCHW tensor with labels `0..10` cycling.
pub fn dataset(n: usize, style: &DigitStyle, rng: &mut StdRng) -> Dataset {
    let mut data = Vec::with_capacity(n * SIDE * SIDE);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = i % CLASSES;
        let img = render_digit(digit, style, rng);
        data.extend_from_slice(img.pixels());
        labels.push(digit);
    }
    Dataset::new(Tensor::from_vec(data, &[n, 1, SIDE, SIDE]), labels)
}

/// Generates the dataset with every image rotated by a fixed angle
/// (radians) — the paper's "random rotation" distribution-shift /
/// OOD probe when the angle is large.
pub fn rotated_dataset(n: usize, angle: f32, style: &DigitStyle, rng: &mut StdRng) -> Dataset {
    let base = dataset(n, style, rng);
    let mut data = Vec::with_capacity(n * SIDE * SIDE);
    for i in 0..n {
        let start = i * SIDE * SIDE;
        let img = Image::from_slice(&base.inputs.as_slice()[start..start + SIDE * SIDE], SIDE, SIDE);
        let rot = rotate_image(&img, angle);
        data.extend_from_slice(rot.pixels());
    }
    Dataset::new(Tensor::from_vec(data, &[n, 1, SIDE, SIDE]), base.labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn render_produces_ink_in_range() {
        let mut r = rng();
        for d in 0..10 {
            let img = render_digit(d, &DigitStyle::default(), &mut r);
            let ink: f32 = img.pixels().iter().sum();
            assert!(ink > 5.0, "digit {d} too faint: {ink}");
            assert!(img.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn eight_has_more_ink_than_one() {
        let mut r = rng();
        let style = DigitStyle::clean();
        let one: f32 = render_digit(1, &style, &mut r).pixels().iter().sum();
        let eight: f32 = render_digit(8, &style, &mut r).pixels().iter().sum();
        assert!(eight > 2.0 * one, "8 lights 7 segments vs 2 for 1");
    }

    #[test]
    fn clean_digits_are_deterministic() {
        let mut r1 = rng();
        let mut r2 = rng();
        let a = render_digit(5, &DigitStyle::clean(), &mut r1);
        let b = render_digit(5, &DigitStyle::clean(), &mut r2);
        assert_eq!(a.pixels(), b.pixels());
    }

    #[test]
    fn noisy_digits_vary() {
        let mut r = rng();
        let a = render_digit(3, &DigitStyle::default(), &mut r);
        let b = render_digit(3, &DigitStyle::default(), &mut r);
        assert_ne!(a.pixels(), b.pixels());
    }

    #[test]
    fn digit_classes_are_distinguishable() {
        // Mean clean templates must differ pairwise by a sensible margin.
        let mut r = rng();
        let style = DigitStyle::clean();
        let imgs: Vec<Image> = (0..10).map(|d| render_digit(d, &style, &mut r)).collect();
        for a in 0..10 {
            for b in (a + 1)..10 {
                let dist: f32 = imgs[a]
                    .pixels()
                    .iter()
                    .zip(imgs[b].pixels())
                    .map(|(x, y)| (x - y).powi(2))
                    .sum();
                assert!(dist > 1.0, "digits {a} and {b} are too similar ({dist})");
            }
        }
    }

    #[test]
    fn dataset_is_balanced_nchw() {
        let mut r = rng();
        let d = dataset(100, &DigitStyle::default(), &mut r);
        assert_eq!(d.inputs.shape(), &[100, 1, 16, 16]);
        for c in 0..10 {
            assert_eq!(d.labels.iter().filter(|&&l| l == c).count(), 10);
        }
    }

    #[test]
    fn rotated_dataset_changes_pixels_not_labels() {
        let mut r1 = rng();
        let mut r2 = rng();
        let base = dataset(20, &DigitStyle::default(), &mut r1);
        let rot = rotated_dataset(20, std::f32::consts::FRAC_PI_2, &DigitStyle::default(), &mut r2);
        assert_eq!(base.labels, rot.labels);
        assert_ne!(base.inputs.as_slice(), rot.inputs.as_slice());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_digit_rejected() {
        let mut r = rng();
        let _ = render_digit(10, &DigitStyle::default(), &mut r);
    }
}
