//! Input corruptions at graded severity (the "corrupted data"
//! experiments: Bayesian methods should degrade more gracefully than
//! deterministic networks).

use crate::util::{box_blur, rotate_image, Image};
use neuspin_nn::{Dataset, Tensor};
use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt;

/// The corruption families, mirroring the common "-C" benchmark suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corruption {
    /// Additive gaussian pixel noise.
    GaussianNoise,
    /// Salt-and-pepper impulse noise.
    SaltPepper,
    /// Repeated box blur.
    Blur,
    /// Contrast compression toward mid-grey.
    Contrast,
    /// Rotation by a severity-scaled angle.
    Rotation,
}

impl Corruption {
    /// All corruption kinds in a stable order.
    pub const ALL: [Corruption; 5] = [
        Corruption::GaussianNoise,
        Corruption::SaltPepper,
        Corruption::Blur,
        Corruption::Contrast,
        Corruption::Rotation,
    ];
}

impl fmt::Display for Corruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Corruption::GaussianNoise => "gaussian-noise",
            Corruption::SaltPepper => "salt-pepper",
            Corruption::Blur => "blur",
            Corruption::Contrast => "contrast",
            Corruption::Rotation => "rotation",
        };
        f.write_str(s)
    }
}

/// Applies a corruption at `severity` 1..=5 to one image.
///
/// # Panics
///
/// Panics if `severity` is outside `1..=5`.
pub fn corrupt_image(img: &Image, kind: Corruption, severity: u8, rng: &mut StdRng) -> Image {
    assert!((1..=5).contains(&severity), "severity must be 1..=5, got {severity}");
    let s = severity as f32;
    match kind {
        Corruption::GaussianNoise => {
            let sigma = 0.06 * s;
            let mut out = img.clone();
            for p in out.pixels_mut() {
                let n = (rng.random::<f32>() + rng.random::<f32>() - 1.0) * sigma * 1.7;
                *p = (*p + n).clamp(0.0, 1.0);
            }
            out
        }
        Corruption::SaltPepper => {
            let rate = 0.03 * s;
            let mut out = img.clone();
            for p in out.pixels_mut() {
                let u: f32 = rng.random();
                if u < rate / 2.0 {
                    *p = 0.0;
                } else if u < rate {
                    *p = 1.0;
                }
            }
            out
        }
        Corruption::Blur => box_blur(img, severity as usize),
        Corruption::Contrast => {
            let factor = 1.0 - 0.17 * s; // severity 5 → 15 % contrast left
            let mean: f32 = img.pixels().iter().sum::<f32>() / img.pixels().len() as f32;
            let mut out = img.clone();
            for p in out.pixels_mut() {
                *p = mean + (*p - mean) * factor;
            }
            out
        }
        Corruption::Rotation => {
            let angle = 0.12 * s * if rng.random::<bool>() { 1.0 } else { -1.0 };
            rotate_image(img, angle)
        }
    }
}

/// Corrupts every image of an NCHW single-channel dataset, preserving
/// labels.
///
/// # Panics
///
/// Panics if the dataset is not `[N, 1, H, W]` or severity is invalid.
pub fn corrupt_dataset(data: &Dataset, kind: Corruption, severity: u8, rng: &mut StdRng) -> Dataset {
    let shape = data.inputs.shape();
    assert_eq!(shape.len(), 4, "expected NCHW dataset");
    assert_eq!(shape[1], 1, "expected single-channel images");
    let (n, h, w) = (shape[0], shape[2], shape[3]);
    let mut out = Vec::with_capacity(n * h * w);
    for i in 0..n {
        let img = Image::from_slice(&data.inputs.as_slice()[i * h * w..(i + 1) * h * w], w, h);
        out.extend_from_slice(corrupt_image(&img, kind, severity, rng).pixels());
    }
    Dataset::new(Tensor::from_vec(out, shape), data.labels.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digits::{dataset, DigitStyle};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(555)
    }

    fn test_image() -> Image {
        let mut img = Image::zeros(8, 8);
        for i in 2..6 {
            img.set(i, 3, 1.0);
            img.set(i, 4, 1.0);
        }
        img
    }

    #[test]
    fn noise_severity_scales_distortion() {
        let mut r = rng();
        let img = test_image();
        let d1: f32 = corrupt_image(&img, Corruption::GaussianNoise, 1, &mut r)
            .pixels()
            .iter()
            .zip(img.pixels())
            .map(|(a, b)| (a - b).abs())
            .sum();
        let d5: f32 = corrupt_image(&img, Corruption::GaussianNoise, 5, &mut r)
            .pixels()
            .iter()
            .zip(img.pixels())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d5 > 2.0 * d1, "severity must scale distortion: {d1} vs {d5}");
    }

    #[test]
    fn salt_pepper_creates_extremes() {
        let mut r = rng();
        let mut img = Image::zeros(16, 16);
        for p in img.pixels_mut() {
            *p = 0.5;
        }
        let out = corrupt_image(&img, Corruption::SaltPepper, 5, &mut r);
        assert!(out.pixels().contains(&0.0));
        assert!(out.pixels().contains(&1.0));
    }

    #[test]
    fn blur_reduces_peak() {
        let mut r = rng();
        let img = test_image();
        let out = corrupt_image(&img, Corruption::Blur, 3, &mut r);
        let peak_in = img.pixels().iter().cloned().fold(0.0f32, f32::max);
        let peak_out = out.pixels().iter().cloned().fold(0.0f32, f32::max);
        assert!(peak_out < peak_in);
    }

    #[test]
    fn contrast_compresses_toward_mean() {
        let mut r = rng();
        let img = test_image();
        let out = corrupt_image(&img, Corruption::Contrast, 5, &mut r);
        let spread =
            |i: &Image| i.pixels().iter().cloned().fold(0.0f32, f32::max) - i.pixels().iter().cloned().fold(1.0f32, f32::min);
        assert!(spread(&out) < 0.3 * spread(&img));
    }

    #[test]
    fn corrupt_dataset_preserves_shape_and_labels() {
        let mut r = rng();
        let base = dataset(30, &DigitStyle::default(), &mut r);
        for kind in Corruption::ALL {
            let c = corrupt_dataset(&base, kind, 3, &mut r);
            assert_eq!(c.inputs.shape(), base.inputs.shape(), "{kind}");
            assert_eq!(c.labels, base.labels);
            assert_ne!(c.inputs.as_slice(), base.inputs.as_slice(), "{kind} must change pixels");
        }
    }

    #[test]
    #[should_panic(expected = "severity must be 1..=5")]
    fn severity_zero_rejected() {
        let mut r = rng();
        let _ = corrupt_image(&test_image(), Corruption::Blur, 0, &mut r);
    }
}
