//! Synthetic time series for the LSTM regression experiment
//! (§III-A4: inverted normalization + affine dropout reduce RMSE on
//! LSTM-based time-series prediction).

use neuspin_nn::Tensor;
use rand::rngs::StdRng;
use rand::RngExt;

/// A windowed time-series regression set: inputs `[n, window, 1]`,
/// targets `[n, 1]` (the next value after each window).
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesDataset {
    /// Input windows, `[n, window, 1]`.
    pub inputs: Tensor,
    /// Next-step targets, `[n, 1]`.
    pub targets: Tensor,
}

impl SeriesDataset {
    /// Number of windows.
    pub fn len(&self) -> usize {
        self.inputs.shape()[0]
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the windows at `indices` into a batch.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Tensor) {
        let window = self.inputs.shape()[1];
        let mut xs = Vec::with_capacity(indices.len() * window);
        let mut ys = Vec::with_capacity(indices.len());
        for &i in indices {
            xs.extend_from_slice(&self.inputs.as_slice()[i * window..(i + 1) * window]);
            ys.push(self.targets[i]);
        }
        (
            Tensor::from_vec(xs, &[indices.len(), window, 1]),
            Tensor::from_vec(ys, &[indices.len(), 1]),
        )
    }
}

/// Generates the underlying signal: a mixture of three sines plus an AR
/// drift term and observation noise.
pub fn signal(len: usize, noise: f32, rng: &mut StdRng) -> Vec<f32> {
    let mut out = Vec::with_capacity(len);
    let mut drift = 0.0f32;
    for t in 0..len {
        let tf = t as f32;
        drift = 0.95 * drift + 0.05 * (rng.random::<f32>() * 2.0 - 1.0);
        let v = 0.6 * (0.13 * tf).sin() + 0.3 * (0.047 * tf).sin() + 0.2 * (0.31 * tf + 1.0).sin()
            + 0.5 * drift
            + noise * (rng.random::<f32>() * 2.0 - 1.0);
        out.push(v);
    }
    out
}

/// Windows a signal into a [`SeriesDataset`] with the given lookback
/// `window`.
///
/// # Panics
///
/// Panics if the signal is shorter than `window + 1`.
pub fn windowed(signal: &[f32], window: usize) -> SeriesDataset {
    assert!(signal.len() > window, "signal too short for window {window}");
    let n = signal.len() - window;
    let mut xs = Vec::with_capacity(n * window);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        xs.extend_from_slice(&signal[i..i + window]);
        ys.push(signal[i + window]);
    }
    SeriesDataset {
        inputs: Tensor::from_vec(xs, &[n, window, 1]),
        targets: Tensor::from_vec(ys, &[n, 1]),
    }
}

/// Convenience: generate a signal and window it in one call.
pub fn dataset(len: usize, window: usize, noise: f32, rng: &mut StdRng) -> SeriesDataset {
    windowed(&signal(len, noise, rng), window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(4242)
    }

    #[test]
    fn signal_is_bounded_and_nontrivial() {
        let mut r = rng();
        let s = signal(500, 0.05, &mut r);
        assert_eq!(s.len(), 500);
        let max = s.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let min = s.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(max < 4.0 && min > -4.0, "signal range sane");
        assert!(max - min > 0.5, "signal must actually vary");
    }

    #[test]
    fn windowing_aligns_targets() {
        let s: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let d = windowed(&s, 3);
        assert_eq!(d.len(), 7);
        // First window [0,1,2] → target 3.
        assert_eq!(&d.inputs.as_slice()[..3], &[0.0, 1.0, 2.0]);
        assert_eq!(d.targets[0], 3.0);
        // Last window [6,7,8] → target 9.
        assert_eq!(d.targets[6], 9.0);
    }

    #[test]
    fn gather_returns_batch_shapes() {
        let mut r = rng();
        let d = dataset(100, 8, 0.02, &mut r);
        let (x, y) = d.gather(&[0, 5, 10]);
        assert_eq!(x.shape(), &[3, 8, 1]);
        assert_eq!(y.shape(), &[3, 1]);
    }

    #[test]
    #[should_panic(expected = "signal too short")]
    fn short_signal_rejected() {
        let _ = windowed(&[1.0, 2.0], 5);
    }

    #[test]
    fn series_is_predictable() {
        // The deterministic sine component dominates, so consecutive
        // values correlate strongly — the LSTM has something to learn.
        let mut r = rng();
        let s = signal(400, 0.02, &mut r);
        let mean = s.iter().sum::<f32>() / s.len() as f32;
        let var: f32 = s.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / s.len() as f32;
        let lag1: f32 = s
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f32>()
            / (s.len() - 1) as f32;
        assert!(lag1 / var > 0.8, "lag-1 autocorrelation {}", lag1 / var);
    }
}
