//! 2-D convolution layers (real-valued and binary) via im2col.
//!
//! Tensors are NCHW. The im2col lowering is also exactly how the CIM
//! compiler maps convolutions onto crossbars (mapping strategy ① of
//! Fig. 1 unrolls each `K×K×C_in` kernel into one crossbar column), so
//! the same code path documents both the software and the hardware view.

use crate::init::kaiming_uniform;
use crate::layer::{Layer, Mode, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Spatial geometry of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel side K.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each side.
    pub padding: usize,
}

impl ConvGeometry {
    /// Output spatial size for an input of side `h`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit.
    pub fn out_size(&self, h: usize) -> usize {
        let padded = h + 2 * self.padding;
        assert!(padded >= self.kernel, "kernel {} larger than padded input {}", self.kernel, padded);
        (padded - self.kernel) / self.stride + 1
    }

    /// Unrolled patch length `C_in · K · K` (the crossbar column height
    /// under mapping strategy ①).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Lowers NCHW input `[n, c, h, w]` to a patch matrix
/// `[n·oh·ow, c·k·k]` (im2col).
pub fn im2col(input: &Tensor, geo: &ConvGeometry) -> Tensor {
    let mut col = Tensor::default();
    im2col_into(input, geo, &mut col);
    col
}

/// [`im2col`] into a caller-provided patch matrix: `col` is resized and
/// re-zeroed in place (the zero fill is load-bearing — padding
/// positions are never written), so repeated calls at one input shape
/// are allocation-free and bit-identical to `im2col`.
pub fn im2col_into(input: &Tensor, geo: &ConvGeometry, col: &mut Tensor) {
    let (n, c, h, w) = shape4(input);
    assert_eq!(c, geo.in_channels, "channel mismatch");
    let (oh, ow) = (geo.out_size(h), geo.out_size(w));
    let (k, s, p) = (geo.kernel, geo.stride, geo.padding);
    let patch = geo.patch_len();
    col.resize_to(&[n * oh * ow, patch]);
    col.as_mut_slice().fill(0.0);
    let data = input.as_slice();
    let out = col.as_mut_slice();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * patch;
                for ci in 0..c {
                    for ky in 0..k {
                        let iy = (oy * s + ky) as isize - p as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * s + kx) as isize - p as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let src = ((ni * c + ci) * h + iy as usize) * w + ix as usize;
                            let dst = row + (ci * k + ky) * k + kx;
                            out[dst] = data[src];
                        }
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatters patch-matrix gradients back to an
/// NCHW gradient of shape `[n, c, h, w]`.
pub fn col2im(grad_col: &Tensor, geo: &ConvGeometry, n: usize, h: usize, w: usize) -> Tensor {
    let c = geo.in_channels;
    let (oh, ow) = (geo.out_size(h), geo.out_size(w));
    let (k, s, p) = (geo.kernel, geo.stride, geo.padding);
    let patch = geo.patch_len();
    assert_eq!(grad_col.shape(), &[n * oh * ow, patch], "grad_col shape mismatch");
    let mut grad_in = Tensor::zeros(&[n, c, h, w]);
    let src = grad_col.as_slice();
    let dst = grad_in.as_mut_slice();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * patch;
                for ci in 0..c {
                    for ky in 0..k {
                        let iy = (oy * s + ky) as isize - p as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * s + kx) as isize - p as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let d = ((ni * c + ci) * h + iy as usize) * w + ix as usize;
                            dst[d] += src[row + (ci * k + ky) * k + kx];
                        }
                    }
                }
            }
        }
    }
    grad_in
}

fn shape4(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(t.ndim(), 4, "expected NCHW tensor, got {:?}", t.shape());
    (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3])
}

/// Rearranges a `[n·oh·ow, cout]` matrix to NCHW `[n, cout, oh, ow]`.
fn mat_to_nchw(mat: &Tensor, n: usize, cout: usize, oh: usize, ow: usize) -> Tensor {
    let mut out = Tensor::zeros(&[n, cout, oh, ow]);
    let src = mat.as_slice();
    let dst = out.as_mut_slice();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((ni * oh + oy) * ow + ox) * cout;
                for co in 0..cout {
                    dst[((ni * cout + co) * oh + oy) * ow + ox] = src[row + co];
                }
            }
        }
    }
    out
}

/// Rearranges NCHW `[n, cout, oh, ow]` to a `[n·oh·ow, cout]` matrix.
fn nchw_to_mat(t: &Tensor) -> Tensor {
    let (n, cout, oh, ow) = shape4(t);
    let mut out = Tensor::zeros(&[n * oh * ow, cout]);
    let src = t.as_slice();
    let dst = out.as_mut_slice();
    for ni in 0..n {
        for co in 0..cout {
            for oy in 0..oh {
                for ox in 0..ow {
                    dst[((ni * oh + oy) * ow + ox) * cout + co] =
                        src[((ni * cout + co) * oh + oy) * ow + ox];
                }
            }
        }
    }
    out
}

/// A real-valued 2-D convolution.
///
/// # Examples
///
/// ```
/// use neuspin_nn::{Conv2d, Layer, Mode, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut conv = Conv2d::new(1, 4, 3, 1, 1, &mut rng);
/// let x = Tensor::ones(&[2, 1, 8, 8]);
/// let y = conv.forward(&x, Mode::Eval, &mut rng);
/// assert_eq!(y.shape(), &[2, 4, 8, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    geo: ConvGeometry,
    weight: Param,
    bias: Param,
    col: Option<Tensor>,
    in_hw: (usize, usize, usize),
}

impl Conv2d {
    /// Creates a convolution `in_channels → out_channels` with a square
    /// `kernel`, `stride` and `padding`.
    ///
    /// # Panics
    ///
    /// Panics on zero channels, kernel, or stride.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0);
        let geo = ConvGeometry { in_channels, out_channels, kernel, stride, padding };
        let fan_in = geo.patch_len();
        Self {
            weight: Param::new(kaiming_uniform(&[out_channels, fan_in], fan_in, rng)),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            geo,
            col: None,
            in_hw: (0, 0, 0),
        }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geo
    }

    /// The weight matrix `[out_channels, in_channels·K·K]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    fn forward_with(&mut self, input: &Tensor, weight: &Tensor) -> Tensor {
        let (n, _c, h, w) = shape4(input);
        self.in_hw = (n, h, w);
        let col = im2col(input, &self.geo);
        let mut mat = col.matmul(&weight.transpose());
        let cout = self.geo.out_channels;
        let rows = mat.shape()[0];
        for r in 0..rows {
            for co in 0..cout {
                mat[r * cout + co] += self.bias.value[co];
            }
        }
        self.col = Some(col);
        mat_to_nchw(&mat, n, cout, self.geo.out_size(h), self.geo.out_size(w))
    }

    fn backward_with(&mut self, grad_out: &Tensor, weight_for_input: &Tensor) -> (Tensor, Tensor) {
        let col = self.col.as_ref().expect("backward before forward");
        let g_mat = nchw_to_mat(grad_out);
        let grad_w = g_mat.transpose().matmul(col);
        let cout = self.geo.out_channels;
        let rows = g_mat.shape()[0];
        for co in 0..cout {
            let mut s = 0.0;
            for r in 0..rows {
                s += g_mat[r * cout + co];
            }
            self.bias.grad[co] += s;
        }
        let grad_col = g_mat.matmul(weight_for_input);
        let (n, h, w) = self.in_hw;
        (grad_w, col2im(&grad_col, &self.geo, n, h, w))
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode, _rng: &mut StdRng) -> Tensor {
        let w = self.weight.value.clone();
        self.forward_with(input, &w)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let w = self.weight.value.clone();
        let (grad_w, grad_in) = self.backward_with(grad_out, &w);
        self.weight.grad.axpy(1.0, &grad_w);
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        f("weight", &mut self.weight);
        f("bias", &mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

/// A binary-weight convolution (XNOR-style): kernels are binarized to
/// `α_o · sign(W_o)` per output channel, gradients flow through the
/// straight-through estimator. The sign kernels are what a NeuSpin
/// crossbar stores.
#[derive(Debug, Clone)]
pub struct BinaryConv2d {
    inner: Conv2d,
    alphas: Vec<f32>,
    binarized: Option<Tensor>,
}

impl BinaryConv2d {
    /// Creates the layer; arguments as [`Conv2d::new`].
    ///
    /// # Panics
    ///
    /// Panics on zero channels, kernel, or stride.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            inner: Conv2d::new(in_channels, out_channels, kernel, stride, padding, rng),
            alphas: vec![0.0; out_channels],
            binarized: None,
        }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.inner.geo
    }

    /// Latent (full-precision) kernel matrix.
    pub fn latent_weight(&self) -> &Tensor {
        &self.inner.weight.value
    }

    /// Sign pattern of the kernels (+1 / −1) — the crossbar bits.
    pub fn sign_weights(&self) -> Tensor {
        self.inner.weight.value.map(|w| if w >= 0.0 { 1.0 } else { -1.0 })
    }

    /// Per-output-channel binarization scales.
    pub fn scales(&self) -> Vec<f32> {
        let (o, i) = (self.inner.geo.out_channels, self.inner.geo.patch_len());
        (0..o)
            .map(|r| {
                let row = &self.inner.weight.value.as_slice()[r * i..(r + 1) * i];
                row.iter().map(|w| w.abs()).sum::<f32>() / i as f32
            })
            .collect()
    }
}

impl Layer for BinaryConv2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode, _rng: &mut StdRng) -> Tensor {
        self.alphas = self.scales();
        let (o, i) = (self.inner.geo.out_channels, self.inner.geo.patch_len());
        let mut wb = self.sign_weights();
        for r in 0..o {
            for c in 0..i {
                wb[r * i + c] *= self.alphas[r];
            }
        }
        let out = self.inner.forward_with(input, &wb);
        self.binarized = Some(wb);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let wb = self.binarized.clone().expect("backward before forward");
        let (grad_wb, grad_in) = self.inner.backward_with(grad_out, &wb);
        let (o, i) = (self.inner.geo.out_channels, self.inner.geo.patch_len());
        for r in 0..o {
            let a = self.alphas[r];
            for c in 0..i {
                let w = self.inner.weight.value[r * i + c];
                if w.abs() <= 1.0 {
                    self.inner.weight.grad[r * i + c] += grad_wb[r * i + c] * a;
                }
            }
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.inner.visit_params(f);
    }

    fn name(&self) -> &'static str {
        "BinaryConv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{grad_check_input, grad_check_params};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(23)
    }

    #[test]
    fn geometry_output_sizes() {
        let g = ConvGeometry { in_channels: 3, out_channels: 8, kernel: 3, stride: 1, padding: 1 };
        assert_eq!(g.out_size(16), 16);
        let g2 = ConvGeometry { kernel: 3, stride: 2, padding: 0, ..g };
        assert_eq!(g2.out_size(7), 3);
        assert_eq!(g.patch_len(), 27);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1×1 kernel, stride 1: col equals a channel-last reshuffle.
        let geo = ConvGeometry { in_channels: 2, out_channels: 1, kernel: 1, stride: 1, padding: 0 };
        let x = Tensor::from_fn(&[1, 2, 2, 2], |i| i as f32);
        let col = im2col(&x, &geo);
        assert_eq!(col.shape(), &[4, 2]);
        // Pixel (0,0): channels 0 and 4.
        assert_eq!(col.row(0), &[0.0, 4.0]);
        assert_eq!(col.row(3), &[3.0, 7.0]);
    }

    #[test]
    fn im2col_into_rezeros_dirty_buffer() {
        let geo = ConvGeometry { in_channels: 2, out_channels: 1, kernel: 3, stride: 1, padding: 1 };
        let x = Tensor::from_fn(&[1, 2, 5, 5], |i| (i as f32 * 0.7).sin());
        let expect = im2col(&x, &geo);
        // A dirty buffer of the wrong shape: _into must resize and
        // re-zero so padding positions read 0, not stale data.
        let mut col = Tensor::full(&[3, 3], 9.0);
        im2col_into(&x, &geo, &mut col);
        assert_eq!(col, expect);
        let cap = col.as_slice().len();
        im2col_into(&x, &geo, &mut col);
        assert_eq!(col, expect);
        assert_eq!(col.as_slice().len(), cap);
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint identity.
        let geo = ConvGeometry { in_channels: 2, out_channels: 1, kernel: 3, stride: 1, padding: 1 };
        let x = Tensor::from_fn(&[1, 2, 5, 5], |i| (i as f32 * 0.7).sin());
        let col = im2col(&x, &geo);
        let y = Tensor::from_fn(col.shape(), |i| (i as f32 * 0.3).cos());
        let lhs: f32 = col.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &geo, 1, 5, 5);
        let rhs: f32 = x.as_slice().iter().zip(back.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_known_values() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut r);
        conv.weight.value = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[1, 4]);
        conv.bias.value = Tensor::zeros(&[1]);
        let x = Tensor::from_fn(&[1, 1, 3, 3], |i| i as f32);
        let y = conv.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        // Sums of 2×2 patches of [[0..2],[3..5],[6..8]].
        assert_eq!(y.as_slice(), &[8.0, 12.0, 20.0, 24.0]);
    }

    #[test]
    fn conv_grad_check() {
        let mut r = rng();
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut r);
        let x = Tensor::from_fn(&[1, 2, 4, 4], |i| (i as f32 * 0.13).sin());
        assert!(grad_check_input(&mut conv, &x, Mode::Eval, 1, 1e-2) < 2e-2);
        assert!(grad_check_params(&mut conv, &x, Mode::Eval, 1, 1e-2) < 2e-2);
    }

    #[test]
    fn conv_stride_grad_check() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 2, 3, 2, 1, &mut r);
        let x = Tensor::from_fn(&[2, 1, 5, 5], |i| ((i * 7 % 11) as f32 / 5.0) - 1.0);
        assert!(grad_check_input(&mut conv, &x, Mode::Eval, 1, 1e-2) < 2e-2);
    }

    #[test]
    fn binary_conv_output_uses_signs() {
        let mut r = rng();
        let mut conv = BinaryConv2d::new(1, 1, 2, 1, 0, &mut r);
        conv.inner.weight.value = Tensor::from_vec(vec![0.4, -0.2, 0.6, -0.8], &[1, 4]);
        conv.inner.bias.value = Tensor::zeros(&[1]);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv.forward(&x, Mode::Eval, &mut r);
        // α = 0.5, signs (+,−,+,−) → y = 0.5·(1−1+1−1) = 0.
        assert!((y[0]).abs() < 1e-6);
        assert_eq!(conv.sign_weights().as_slice(), &[1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn binary_conv_backward_runs_and_clips() {
        let mut r = rng();
        let mut conv = BinaryConv2d::new(1, 1, 2, 1, 0, &mut r);
        conv.inner.weight.value = Tensor::from_vec(vec![0.4, -3.0, 0.6, -0.8], &[1, 4]);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let _ = conv.forward(&x, Mode::Train, &mut r);
        let _ = conv.backward(&Tensor::ones(&[1, 1, 1, 1]));
        assert_eq!(conv.inner.weight.grad[1], 0.0, "|w|>1 clipped");
        assert_ne!(conv.inner.weight.grad[0], 0.0);
    }

    #[test]
    fn param_count_matches() {
        let mut r = rng();
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut r);
        assert_eq!(conv.param_count(), 8 * 27 + 8);
    }
}
