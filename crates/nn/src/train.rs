//! Mini-batch training utilities.

use crate::layer::Mode;
use crate::loss::cross_entropy;
use crate::model::Sequential;
use crate::optim::Optimizer;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::RngExt;

/// A labelled classification dataset: flattened samples plus integer
/// labels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// Sample tensor; first dimension is the sample index.
    pub inputs: Tensor,
    /// One integer label per sample.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Bundles inputs and labels.
    ///
    /// # Panics
    ///
    /// Panics if the counts disagree.
    pub fn new(inputs: Tensor, labels: Vec<usize>) -> Self {
        assert_eq!(inputs.shape()[0], labels.len(), "sample/label count mismatch");
        Self { inputs, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Copies the samples at `indices` into a new batch.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let per = self.inputs.len() / self.len().max(1);
        let mut shape = self.inputs.shape().to_vec();
        shape[0] = indices.len();
        let mut data = Vec::with_capacity(indices.len() * per);
        for &i in indices {
            data.extend_from_slice(&self.inputs.as_slice()[i * per..(i + 1) * per]);
        }
        (Tensor::from_vec(data, &shape), indices.iter().map(|&i| self.labels[i]).collect())
    }

    /// A new dataset with only the samples at `indices`.
    pub fn subset(&self, indices: &[usize]) -> Self {
        let (inputs, labels) = self.gather(indices);
        Self { inputs, labels }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Strength of layer regularizers (scale-dropout centring, etc.).
    pub reg_strength: f32,
    /// Multiply the optimizer LR by this factor after each epoch.
    pub lr_decay: f32,
    /// Print a line per epoch when true.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 10, batch_size: 32, reg_strength: 0.0, lr_decay: 1.0, verbose: false }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean cross-entropy over the epoch.
    pub loss: f32,
    /// Training accuracy over the epoch.
    pub accuracy: f64,
}

/// Fisher–Yates shuffle of `0..n` driven by the given RNG.
pub fn shuffled_indices(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Trains `model` on `data` with cross-entropy; returns per-epoch stats.
///
/// The optimizer's learning rate is decayed by `config.lr_decay` after
/// each epoch (set 1.0 for a constant rate). Regularizer gradients (e.g.
/// the scale-dropout centring term) are added when
/// `config.reg_strength > 0`.
pub fn fit<O: Optimizer>(
    model: &mut Sequential,
    data: &Dataset,
    opt: &mut O,
    config: &TrainConfig,
    rng: &mut StdRng,
) -> Vec<EpochStats> {
    assert!(config.batch_size > 0, "batch size must be positive");
    let mut history = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        let order = shuffled_indices(data.len(), rng);
        let mut total_loss = 0.0f64;
        let mut correct = 0usize;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let (x, y) = data.gather(chunk);
            model.zero_grad();
            let logits = model.forward(&x, Mode::Train, rng);
            let (loss, grad) = cross_entropy(&logits, &y);
            if config.reg_strength > 0.0 {
                let _ = model.reg_loss(config.reg_strength);
            }
            model.backward(&grad);
            opt.step(model);
            total_loss += loss as f64;
            batches += 1;
            for (pred, &label) in logits.argmax_rows().iter().zip(&y) {
                if *pred == label {
                    correct += 1;
                }
            }
        }
        let stats = EpochStats {
            loss: (total_loss / batches.max(1) as f64) as f32,
            accuracy: correct as f64 / data.len().max(1) as f64,
        };
        if config.verbose {
            println!(
                "epoch {:>3}: loss {:.4}  acc {:.2}%",
                epoch + 1,
                stats.loss,
                100.0 * stats.accuracy
            );
        }
        history.push(stats);
        if config.lr_decay != 1.0 {
            opt.set_learning_rate(opt.learning_rate() * config.lr_decay);
        }
    }
    history
}

/// Refreshes normalization running statistics by running `rounds`
/// forward passes in `Train` mode *without* optimizer steps.
///
/// Binary networks need this: the sign weights keep flipping late into
/// training, so the exponentially-averaged BatchNorm statistics can lag
/// the final weights badly (eval accuracy becomes a lottery). A few
/// no-gradient passes re-estimate the statistics under the frozen
/// weights — standard practice for quantized/binary model deployment.
pub fn refresh_norm_stats(
    model: &mut Sequential,
    data: &Dataset,
    rounds: usize,
    rng: &mut StdRng,
) {
    for _ in 0..rounds.max(1) {
        let order = shuffled_indices(data.len(), rng);
        for chunk in order.chunks(256) {
            let (x, _) = data.gather(chunk);
            let _ = model.forward(&x, Mode::Train, rng);
        }
    }
}

/// Deterministic classification accuracy of `model` on `data`
/// (single `Eval` pass).
pub fn evaluate(model: &mut Sequential, data: &Dataset, rng: &mut StdRng) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for chunk in (0..data.len()).collect::<Vec<_>>().chunks(256) {
        let (x, y) = data.gather(chunk);
        let logits = model.forward(&x, Mode::Eval, rng);
        for (pred, &label) in logits.argmax_rows().iter().zip(&y) {
            if *pred == label {
                correct += 1;
            }
        }
    }
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::Relu;
    use crate::linear::Linear;
    use crate::optim::Sgd;
    use rand::SeedableRng;

    fn two_blob_dataset(n: usize, rng: &mut StdRng) -> Dataset {
        // Two well-separated gaussian blobs in 2-D.
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let cx = if label == 0 { -2.0 } else { 2.0 };
            data.push(cx + rng.random::<f32>() - 0.5);
            data.push(rng.random::<f32>() - 0.5);
            labels.push(label);
        }
        Dataset::new(Tensor::from_vec(data, &[n, 2]), labels)
    }

    #[test]
    fn fit_learns_separable_blobs() {
        let mut rng = StdRng::seed_from_u64(77);
        let data = two_blob_dataset(128, &mut rng);
        let mut model = Sequential::new();
        model.push(Linear::new(2, 8, &mut rng));
        model.push(Relu::new());
        model.push(Linear::new(8, 2, &mut rng));
        let mut opt = Sgd::new(0.1);
        let config = TrainConfig { epochs: 12, batch_size: 16, ..TrainConfig::default() };
        let history = fit(&mut model, &data, &mut opt, &config, &mut rng);
        assert!(history.last().unwrap().accuracy > 0.95, "{history:?}");
        assert!(evaluate(&mut model, &data, &mut rng) > 0.95);
    }

    #[test]
    fn gather_copies_right_rows() {
        let d = Dataset::new(Tensor::from_fn(&[4, 2], |i| i as f32), vec![0, 1, 2, 3]);
        let (x, y) = d.gather(&[2, 0]);
        assert_eq!(x.as_slice(), &[4.0, 5.0, 0.0, 1.0]);
        assert_eq!(y, vec![2, 0]);
    }

    #[test]
    fn subset_preserves_shape_suffix() {
        let d = Dataset::new(Tensor::zeros(&[6, 3, 4, 4]), vec![0; 6]);
        let s = d.subset(&[1, 3, 5]);
        assert_eq!(s.inputs.shape(), &[3, 3, 4, 4]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut idx = shuffled_indices(100, &mut rng);
        idx.sort_unstable();
        assert_eq!(idx, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn lr_decay_applies() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = two_blob_dataset(32, &mut rng);
        let mut model = Sequential::new();
        model.push(Linear::new(2, 2, &mut rng));
        let mut opt = Sgd::new(1.0);
        let config = TrainConfig { epochs: 3, batch_size: 8, lr_decay: 0.5, ..Default::default() };
        let h = fit(&mut model, &data, &mut opt, &config, &mut rng);
        assert_eq!(h.len(), 3);
        assert!((opt.learning_rate() - 0.125).abs() < 1e-6, "1.0 · 0.5³");
    }

    #[test]
    #[should_panic(expected = "sample/label count mismatch")]
    fn dataset_rejects_mismatch() {
        let _ = Dataset::new(Tensor::zeros(&[3, 2]), vec![0, 1]);
    }
}
