//! Loss functions: softmax cross-entropy and mean-squared error.
//!
//! Each loss returns `(loss_value, grad_wrt_logits)` so the caller can
//! start the backward pass directly.

use crate::tensor::Tensor;

/// Row-wise softmax of a `[N, C]` logit matrix (numerically stabilised).
pub fn softmax(logits: &Tensor) -> Tensor {
    let mut out = Tensor::default();
    softmax_into(logits, &mut out);
    out
}

/// [`softmax`] writing into a caller-provided tensor: the same
/// float-op order (so outputs are bit-identical), with no allocation
/// once `out`'s capacity covers the batch.
pub fn softmax_into(logits: &Tensor, out: &mut Tensor) {
    assert_eq!(logits.ndim(), 2, "softmax expects [N, C], got {:?}", logits.shape());
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    out.resize_to(&[n, c]);
    for i in 0..n {
        let row = logits.row(i);
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0;
        for j in 0..c {
            let e = (row[j] - m).exp();
            out[i * c + j] = e;
            z += e;
        }
        for j in 0..c {
            out[i * c + j] /= z;
        }
    }
}

/// Mean softmax cross-entropy between `[N, C]` logits and integer
/// `labels` (one per row).
///
/// Returns the mean loss and ∂L/∂logits (already divided by `N`).
///
/// # Panics
///
/// Panics if `labels.len() != N` or a label is out of range.
///
/// # Examples
///
/// ```
/// use neuspin_nn::{cross_entropy, Tensor};
///
/// let logits = Tensor::from_vec(vec![5.0, 0.0, 0.0, 5.0], &[2, 2]);
/// let (loss, grad) = cross_entropy(&logits, &[0, 1]);
/// assert!(loss < 0.01, "confident correct predictions have low loss");
/// assert_eq!(grad.shape(), &[2, 2]);
/// ```
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n, "label count {} vs batch {}", labels.len(), n);
    let probs = softmax(logits);
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for i in 0..n {
        let y = labels[i];
        assert!(y < c, "label {y} out of range for {c} classes");
        loss -= probs[i * c + y].max(1e-12).ln();
        grad[i * c + y] -= 1.0;
    }
    grad.scale_in_place(1.0 / n as f32);
    (loss / n as f32, grad)
}

/// Mean squared error between predictions and targets of equal shape.
///
/// Returns the mean loss and ∂L/∂pred.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "shape mismatch");
    let n = pred.len().max(1) as f32;
    let diff = pred - target;
    let loss = diff.norm_sq() / n;
    let mut grad = diff;
    grad.scale_in_place(2.0 / n);
    (loss, grad)
}

/// Negative log-likelihood of integer labels under a `[N, C]`
/// *probability* matrix (mean over the batch). Used for the
/// dataset-shift NLL experiments.
///
/// # Panics
///
/// Panics if dimensions disagree or a label is out of range.
pub fn nll(probs: &Tensor, labels: &[usize]) -> f32 {
    let (n, c) = (probs.shape()[0], probs.shape()[1]);
    assert_eq!(labels.len(), n);
    let mut total = 0.0;
    for i in 0..n {
        assert!(labels[i] < c, "label out of range");
        total -= probs[i * c + labels[i]].max(1e-12).ln();
    }
    total / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_fn(&[3, 4], |i| (i as f32 * 0.7).sin() * 5.0);
        let p = softmax(&logits);
        for i in 0..3 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(i).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = &a + 100.0;
        let pa = softmax(&a);
        let pb = softmax(&b);
        for j in 0..3 {
            assert!((pa[j] - pb[j]).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Tensor::zeros(&[2, 10]);
        let (loss, _) = cross_entropy(&logits, &[3, 7]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_direction() {
        let logits = Tensor::zeros(&[1, 3]);
        let (_, grad) = cross_entropy(&logits, &[1]);
        assert!(grad[1] < 0.0, "true-class logit pushed up");
        assert!(grad[0] > 0.0 && grad[2] > 0.0, "other logits pushed down");
        // Gradient rows sum to zero.
        assert!(grad.row(0).iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -0.3, 0.8], &[1, 3]);
        let labels = [2usize];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for j in 0..3 {
            let mut plus = logits.clone();
            plus[j] += eps;
            let mut minus = logits.clone();
            minus[j] -= eps;
            let (lp, _) = cross_entropy(&plus, &labels);
            let (lm, _) = cross_entropy(&minus, &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad[j]).abs() < 1e-3, "dim {j}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_label() {
        let logits = Tensor::zeros(&[1, 3]);
        let _ = cross_entropy(&logits, &[3]);
    }

    #[test]
    fn mse_zero_for_equal() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let (loss, grad) = mse(&a, &a);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.sum(), 0.0);
    }

    #[test]
    fn mse_value_and_grad() {
        let pred = Tensor::from_vec(vec![1.0, 3.0], &[2]);
        let target = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6); // (1 + 4)/2
        assert_eq!(grad.as_slice(), &[1.0, 2.0]); // 2·diff/2
    }

    #[test]
    fn nll_perfect_prediction_is_zero() {
        let probs = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert!(nll(&probs, &[0, 1]) < 1e-5);
    }

    #[test]
    fn nll_grows_under_shift() {
        let confident = Tensor::from_vec(vec![0.9, 0.1], &[1, 2]);
        let shifted = Tensor::from_vec(vec![0.6, 0.4], &[1, 2]);
        assert!(nll(&shifted, &[0]) > nll(&confident, &[0]));
    }
}
