//! Activation layers: ReLU, hard-tanh, and the binary sign activation
//! with straight-through gradient (the XNOR-net activation).

use crate::layer::{Layer, Mode};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _mode: Mode, _rng: &mut StdRng) -> Tensor {
        self.mask = Some(input.as_slice().iter().map(|&x| x > 0.0).collect());
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward before forward");
        let mut g = grad_out.clone();
        for (x, &keep) in g.as_mut_slice().iter_mut().zip(mask) {
            if !keep {
                *x = 0.0;
            }
        }
        g
    }

    fn name(&self) -> &'static str {
        "Relu"
    }
}

/// Hard tanh: clamps to `[−1, 1]`; the standard pre-binarization
/// activation in binary networks.
#[derive(Debug, Clone, Default)]
pub struct HardTanh {
    mask: Option<Vec<bool>>,
}

impl HardTanh {
    /// Creates a hard-tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for HardTanh {
    fn forward(&mut self, input: &Tensor, _mode: Mode, _rng: &mut StdRng) -> Tensor {
        self.mask = Some(input.as_slice().iter().map(|&x| (-1.0..=1.0).contains(&x)).collect());
        input.map(|x| x.clamp(-1.0, 1.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward before forward");
        let mut g = grad_out.clone();
        for (x, &keep) in g.as_mut_slice().iter_mut().zip(mask) {
            if !keep {
                *x = 0.0;
            }
        }
        g
    }

    fn name(&self) -> &'static str {
        "HardTanh"
    }
}

/// Binary sign activation with straight-through estimator: forward is
/// `sign(x) ∈ {−1, +1}`, backward passes gradients where `|x| ≤ 1`.
/// Combined with binary weights this turns MACs into XNOR/popcount —
/// exactly what the NeuSpin crossbar bit-cells compute.
#[derive(Debug, Clone, Default)]
pub struct SignSte {
    mask: Option<Vec<bool>>,
}

impl SignSte {
    /// Creates the sign activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for SignSte {
    fn forward(&mut self, input: &Tensor, _mode: Mode, _rng: &mut StdRng) -> Tensor {
        self.mask = Some(input.as_slice().iter().map(|&x| x.abs() <= 1.0).collect());
        input.map(|x| if x >= 0.0 { 1.0 } else { -1.0 })
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward before forward");
        let mut g = grad_out.clone();
        for (x, &keep) in g.as_mut_slice().iter_mut().zip(mask) {
            if !keep {
                *x = 0.0;
            }
        }
        g
    }

    fn name(&self) -> &'static str {
        "SignSte"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn relu_forward_backward() {
        let mut r = rng();
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        let y = relu.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
        let g = relu.backward(&Tensor::ones(&[3]));
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn hardtanh_clamps_and_gates() {
        let mut r = rng();
        let mut h = HardTanh::new();
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.5, 2.0], &[4]);
        let y = h.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.as_slice(), &[-1.0, -0.5, 0.5, 1.0]);
        let g = h.backward(&Tensor::ones(&[4]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn sign_ste_binarizes() {
        let mut r = rng();
        let mut s = SignSte::new();
        let x = Tensor::from_vec(vec![-0.3, 0.0, 0.7, -1.5], &[4]);
        let y = s.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.as_slice(), &[-1.0, 1.0, 1.0, -1.0]);
        let g = s.backward(&Tensor::ones(&[4]));
        assert_eq!(g.as_slice(), &[1.0, 1.0, 1.0, 0.0], "STE clips |x| > 1");
    }

    #[test]
    fn activations_have_no_params() {
        let mut relu = Relu::new();
        assert_eq!(relu.param_count(), 0);
        let mut s = SignSte::new();
        assert_eq!(s.param_count(), 0);
    }
}
