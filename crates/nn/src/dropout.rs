//! Dropout-family layers, each corresponding to one NeuSpin hardware
//! design point:
//!
//! | Layer | Drops | RNG draws per pass | Hardware (paper §) |
//! |---|---|---|---|
//! | [`Dropout`] | single neurons | one per activation | SpinDrop (III-A1) |
//! | [`SpatialDropout`] | whole feature maps | one per channel | Spatial-SpinDrop (III-A2) |
//! | [`ScaleDrop`] | the layer's scale vector | **one** per layer | SpinScaleDrop (III-A3) |
//!
//! (Per-weight DropConnect lives in [`crate::linear::DropConnectLinear`];
//! affine dropout is built into [`crate::norm::InvertedNorm`].)
//!
//! The RNG-draw counts are the quantity the paper's energy story is
//! built on: every Bernoulli draw is one SET→read→RESET cycle of a
//! stochastic MTJ.

use crate::layer::{Layer, Mode, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::RngExt;

/// Classic element-wise (per-neuron) inverted dropout.
///
/// Active in `Train` **and** `Sample` modes — keeping dropout on at
/// inference is what turns the network into an MC-dropout posterior
/// sampler (Gal & Ghahramani 2016, the paper's reference \[5\]).
///
/// # Examples
///
/// ```
/// use neuspin_nn::{Dropout, Layer, Mode, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let mut drop = Dropout::new(0.5);
/// let x = Tensor::ones(&[1, 100]);
/// let y = drop.forward(&x, Mode::Sample, &mut rng);
/// let kept = y.as_slice().iter().filter(|&&v| v != 0.0).count();
/// assert!(kept > 25 && kept < 75);
/// ```
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1), got {p}");
        Self { p, mask: None }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// RNG draws per stochastic pass for an input with `activations`
    /// elements per sample: one per activation.
    pub fn rng_draws_per_pass(&self, activations: usize) -> usize {
        activations
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, mode: Mode, rng: &mut StdRng) -> Tensor {
        if !mode.stochastic() || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let mask = Tensor::from_fn(input.shape(), |_| {
            if rng.random::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let out = input * &mask;
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_out.clone(),
            Some(mask) => grad_out * mask,
        }
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

/// Spatial dropout: drops entire channels/feature maps of an NCHW
/// tensor (on `[N, F]` inputs it degrades to per-feature dropout).
///
/// One Bernoulli draw per channel per sample — for a conv layer with
/// `C` output maps this cuts the RNG count from `C·H·W` to `C`, the
/// `K·K` = 9× module reduction the paper reports for 3×3 kernels.
#[derive(Debug, Clone)]
pub struct SpatialDropout {
    p: f32,
    mask: Option<Tensor>,
}

impl SpatialDropout {
    /// Creates a spatial-dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1), got {p}");
        Self { p, mask: None }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// RNG draws per stochastic pass: one per channel.
    pub fn rng_draws_per_pass(&self, channels: usize) -> usize {
        channels
    }
}

impl Layer for SpatialDropout {
    fn forward(&mut self, input: &Tensor, mode: Mode, rng: &mut StdRng) -> Tensor {
        if !mode.stochastic() || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let (n, c, spatial) = match input.ndim() {
            2 => (input.shape()[0], input.shape()[1], 1),
            4 => (input.shape()[0], input.shape()[1], input.shape()[2] * input.shape()[3]),
            _ => panic!("SpatialDropout expects [N,F] or [N,C,H,W], got {:?}", input.shape()),
        };
        let mut mask = Tensor::zeros(input.shape());
        for ni in 0..n {
            for ci in 0..c {
                let v = if rng.random::<f32>() < keep { 1.0 / keep } else { 0.0 };
                for si in 0..spatial {
                    mask[(ni * c + ci) * spatial + si] = v;
                }
            }
        }
        let out = input * &mask;
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_out.clone(),
            Some(mask) => grad_out * mask,
        }
    }

    fn name(&self) -> &'static str {
        "SpatialDropout"
    }
}

/// Scale dropout (SpinScaleDrop, §III-A3): a learnable per-feature scale
/// vector `s` modulates the activations; with probability `p` the whole
/// vector is *dropped to identity* (scale modulation, not zeroing).
/// Exactly **one** Bernoulli draw per layer per pass.
///
/// The scale vector is trained by gradient descent with the paper's
/// regularizer pulling it positive and centred at one
/// (`λ · Σ (s_j − 1)²`, see [`Layer::reg_loss`]).
#[derive(Debug, Clone)]
pub struct ScaleDrop {
    scale: Param,
    p: f32,
    kept: bool,
    input: Option<Tensor>,
    features: usize,
}

impl ScaleDrop {
    /// Creates the layer over `features` features/channels with drop
    /// probability `p`. The scale vector initialises to ones.
    ///
    /// # Panics
    ///
    /// Panics if `features == 0` or `p ∉ [0, 1)`.
    pub fn new(features: usize, p: f32) -> Self {
        assert!(features > 0, "features must be positive");
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1), got {p}");
        Self { scale: Param::new(Tensor::ones(&[features])), p, kept: true, input: None, features }
    }

    /// Layer-dependent adaptive probability from the paper: larger
    /// layers get closer to the base probability, small layers are
    /// dropped more rarely: `p = base · min(1, log10(params)/6)`.
    pub fn adaptive_p(base: f32, layer_params: usize) -> f32 {
        let magnitude = (layer_params.max(1) as f32).log10() / 6.0;
        (base * magnitude.min(1.0)).clamp(0.0, 0.99)
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// The learnable scale vector.
    pub fn scale(&self) -> &Tensor {
        &self.scale.value
    }

    /// RNG draws per stochastic pass: always exactly 1.
    pub fn rng_draws_per_pass(&self) -> usize {
        1
    }

    fn layout(&self, shape: &[usize]) -> (usize, usize) {
        match shape.len() {
            2 => (shape[1], 1),
            4 => (shape[1], shape[2] * shape[3]),
            _ => panic!("ScaleDrop expects [N,F] or [N,C,H,W], got {shape:?}"),
        }
    }
}

impl Layer for ScaleDrop {
    fn forward(&mut self, input: &Tensor, mode: Mode, rng: &mut StdRng) -> Tensor {
        let (f, spatial) = self.layout(input.shape());
        assert_eq!(f, self.features, "feature mismatch: {f} vs {}", self.features);
        self.kept = !(mode.stochastic() && self.p > 0.0 && rng.random::<f32>() < self.p);
        self.input = Some(input.clone());
        if !self.kept {
            return input.clone(); // scale modulated to identity
        }
        let n = input.shape()[0];
        let mut out = Tensor::zeros(input.shape());
        for ni in 0..n {
            for fi in 0..f {
                let s = self.scale.value[fi];
                for si in 0..spatial {
                    let i = (ni * f + fi) * spatial + si;
                    out[i] = input[i] * s;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.input.as_ref().expect("backward before forward");
        if !self.kept {
            return grad_out.clone();
        }
        let (f, spatial) = self.layout(grad_out.shape());
        let n = grad_out.shape()[0];
        let mut grad_in = Tensor::zeros(grad_out.shape());
        for fi in 0..f {
            let s = self.scale.value[fi];
            let mut ds = 0.0f32;
            for ni in 0..n {
                for si in 0..spatial {
                    let i = (ni * f + fi) * spatial + si;
                    ds += grad_out[i] * input[i];
                    grad_in[i] = grad_out[i] * s;
                }
            }
            self.scale.grad[fi] += ds;
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        f("scale", &mut self.scale);
    }

    fn reg_loss(&mut self, strength: f32) -> f32 {
        // λ Σ (s − 1)², pulling the scale positive and centred at one.
        let mut loss = 0.0;
        for j in 0..self.features {
            let d = self.scale.value[j] - 1.0;
            loss += d * d;
            self.scale.grad[j] += 2.0 * strength * d;
        }
        strength * loss
    }

    fn name(&self) -> &'static str {
        "ScaleDrop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn dropout_identity_in_eval() {
        let mut r = rng();
        let mut d = Dropout::new(0.8);
        let x = Tensor::ones(&[2, 10]);
        assert_eq!(d.forward(&x, Mode::Eval, &mut r), x);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut r = rng();
        let mut d = Dropout::new(0.3);
        let x = Tensor::ones(&[1, 2000]);
        let y = d.forward(&x, Mode::Train, &mut r);
        assert!((y.mean() - 1.0).abs() < 0.1, "inverted scaling keeps E[y]=x");
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut r = rng();
        let mut d = Dropout::new(0.5);
        let x = Tensor::ones(&[1, 50]);
        let y = d.forward(&x, Mode::Train, &mut r);
        let g = d.backward(&Tensor::ones(&[1, 50]));
        assert_eq!(g, y, "gradient mask equals forward mask for unit input/grad");
    }

    #[test]
    fn spatial_dropout_drops_whole_channels() {
        let mut r = rng();
        let mut d = SpatialDropout::new(0.5);
        let x = Tensor::ones(&[1, 8, 4, 4]);
        let y = d.forward(&x, Mode::Sample, &mut r);
        for ci in 0..8 {
            let ch: Vec<f32> = (0..16).map(|si| y[ci * 16 + si]).collect();
            let all_zero = ch.iter().all(|&v| v == 0.0);
            let all_kept = ch.iter().all(|&v| (v - 2.0).abs() < 1e-6);
            assert!(all_zero || all_kept, "channel {ci} must drop atomically: {ch:?}");
        }
    }

    #[test]
    fn spatial_dropout_2d_acts_per_feature() {
        let mut r = rng();
        let mut d = SpatialDropout::new(0.5);
        let x = Tensor::ones(&[4, 64]);
        let y = d.forward(&x, Mode::Sample, &mut r);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 0 && zeros < 256);
    }

    #[test]
    fn scale_drop_kept_path_scales() {
        let mut r = rng();
        let mut d = ScaleDrop::new(3, 0.0);
        d.scale.value = Tensor::from_vec(vec![2.0, 0.5, 1.0], &[3]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = d.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.as_slice(), &[2.0, 1.0, 3.0]);
    }

    #[test]
    fn scale_drop_dropped_path_is_identity() {
        let mut r = rng();
        // p ≈ 1 → essentially always dropped in stochastic mode.
        let mut d = ScaleDrop::new(3, 0.99);
        d.scale.value = Tensor::from_vec(vec![5.0, 5.0, 5.0], &[3]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let mut identity_seen = false;
        for _ in 0..50 {
            let y = d.forward(&x, Mode::Sample, &mut r);
            if y == x {
                identity_seen = true;
                break;
            }
        }
        assert!(identity_seen, "dropped scale must modulate to identity");
    }

    #[test]
    fn scale_drop_gradients() {
        let mut r = rng();
        let mut d = ScaleDrop::new(2, 0.0);
        d.scale.value = Tensor::from_vec(vec![2.0, 3.0], &[2]);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let _ = d.forward(&x, Mode::Train, &mut r);
        let g = d.backward(&Tensor::ones(&[1, 2]));
        assert_eq!(g.as_slice(), &[2.0, 3.0], "dx = g·s");
        assert_eq!(d.scale.grad.as_slice(), &[1.0, 2.0], "ds = g·x");
    }

    #[test]
    fn scale_drop_regularizer_pulls_to_one() {
        let mut d = ScaleDrop::new(2, 0.0);
        d.scale.value = Tensor::from_vec(vec![2.0, 0.5], &[2]);
        let loss = d.reg_loss(0.1);
        assert!((loss - 0.1 * (1.0 + 0.25)) < 1e-6);
        assert!(d.scale.grad[0] > 0.0, "s > 1 pushed down");
        assert!(d.scale.grad[1] < 0.0, "s < 1 pushed up");
    }

    #[test]
    fn adaptive_p_grows_with_layer_size() {
        let small = ScaleDrop::adaptive_p(0.2, 100);
        let large = ScaleDrop::adaptive_p(0.2, 1_000_000);
        assert!(small < large);
        assert!((large - 0.2).abs() < 1e-6, "saturates at base for 1e6 params");
    }

    #[test]
    fn rng_draw_counts_match_paper_hierarchy() {
        let d = Dropout::new(0.1);
        let s = SpatialDropout::new(0.1);
        let sc = ScaleDrop::new(64, 0.1);
        // Conv layer with 64 maps of 8×8: 4096 activations.
        assert_eq!(d.rng_draws_per_pass(64 * 8 * 8), 4096);
        assert_eq!(s.rng_draws_per_pass(64), 64);
        assert_eq!(sc.rng_draws_per_pass(), 1);
    }
}
