//! Weight initialisation schemes.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::RngExt;

/// Draws from `U(-bound, bound)`.
fn uniform(shape: &[usize], bound: f32, rng: &mut StdRng) -> Tensor {
    Tensor::from_fn(shape, |_| (rng.random::<f32>() * 2.0 - 1.0) * bound)
}

/// Kaiming/He uniform initialisation for layers followed by ReLU-like
/// nonlinearities: `U(±sqrt(6 / fan_in))`.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_uniform(shape: &[usize], fan_in: usize, rng: &mut StdRng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = (6.0 / fan_in as f32).sqrt();
    uniform(shape, bound, rng)
}

/// Xavier/Glorot uniform initialisation: `U(±sqrt(6 / (fan_in + fan_out)))`.
///
/// # Panics
///
/// Panics if both fans are zero.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    assert!(fan_in + fan_out > 0, "fans must not both be zero");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kaiming_bound_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = kaiming_uniform(&[64, 100], 100, &mut rng);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(w.max() <= bound && w.min() >= -bound);
        assert!(w.max() > 0.5 * bound, "should come close to the bound");
    }

    #[test]
    fn xavier_spread_nonzero() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = xavier_uniform(&[10, 10], 10, 10, &mut rng);
        assert!(w.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    #[should_panic(expected = "fan_in must be positive")]
    fn zero_fan_in_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = kaiming_uniform(&[2, 2], 0, &mut rng);
    }
}
