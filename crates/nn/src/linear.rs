//! Fully-connected layers: real-valued, binary (XNOR-style), and
//! DropConnect variants.

use crate::init::kaiming_uniform;
use crate::layer::{Layer, Mode, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::RngExt;

/// A dense affine layer: `y = x Wᵀ + b`, weights `[out, in]`.
///
/// # Examples
///
/// ```
/// use neuspin_nn::{Linear, Layer, Mode, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut layer = Linear::new(4, 3, &mut rng);
/// let x = Tensor::ones(&[2, 4]);
/// let y = layer.forward(&x, Mode::Eval, &mut rng);
/// assert_eq!(y.shape(), &[2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Kaiming-uniform weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        assert!(in_features > 0 && out_features > 0, "dimensions must be positive");
        Self {
            weight: Param::new(kaiming_uniform(&[out_features, in_features], in_features, rng)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// Borrows the weight matrix `[out, in]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Borrows the bias vector `[out]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    fn affine(&self, input: &Tensor, weight: &Tensor) -> Tensor {
        let mut out = input.matmul(&weight.transpose());
        let (n, f) = (out.shape()[0], out.shape()[1]);
        for i in 0..n {
            for j in 0..f {
                out[i * f + j] += self.bias.value[j];
            }
        }
        out
    }

    fn backward_with(&mut self, grad_out: &Tensor, weight_for_input: &Tensor) -> (Tensor, Tensor) {
        let input = self.input.as_ref().expect("backward before forward");
        // dW = gradᵀ · x ; db = Σ_batch grad ; dx = grad · W
        let grad_w = grad_out.transpose().matmul(input);
        let (n, f) = (grad_out.shape()[0], grad_out.shape()[1]);
        for j in 0..f {
            let mut s = 0.0;
            for i in 0..n {
                s += grad_out[i * f + j];
            }
            self.bias.grad[j] += s;
        }
        let grad_in = grad_out.matmul(weight_for_input);
        (grad_w, grad_in)
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, _mode: Mode, _rng: &mut StdRng) -> Tensor {
        assert_eq!(input.ndim(), 2, "Linear expects [N, in], got {:?}", input.shape());
        assert_eq!(input.shape()[1], self.in_features(), "feature mismatch");
        self.input = Some(input.clone());
        self.affine(input, &self.weight.value)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let w = self.weight.value.clone();
        let (grad_w, grad_in) = self.backward_with(grad_out, &w);
        self.weight.grad.axpy(1.0, &grad_w);
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        f("weight", &mut self.weight);
        f("bias", &mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Linear"
    }
}

/// A binary-weight dense layer (XNOR-style).
///
/// Weights are stored full-precision ("latent weights") and binarized on
/// every forward pass: `W_b = α · sign(W)` with one scale `α` per output
/// row (`α = mean |W_row|`). Gradients use the straight-through
/// estimator, clipped where `|w| > 1`. This is the layer that maps
/// directly onto a NeuSpin MTJ crossbar: the `sign` bits go into the
/// 2-cell differential bit-cells and `α` folds into the digital
/// periphery.
#[derive(Debug, Clone)]
pub struct BinaryLinear {
    weight: Param,
    bias: Param,
    input: Option<Tensor>,
    binarized: Option<Tensor>,
    alphas: Vec<f32>,
}

impl BinaryLinear {
    /// Creates a layer with Kaiming-uniform latent weights.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        assert!(in_features > 0 && out_features > 0, "dimensions must be positive");
        Self {
            weight: Param::new(kaiming_uniform(&[out_features, in_features], in_features, rng)),
            bias: Param::new(Tensor::zeros(&[out_features])),
            input: None,
            binarized: None,
            alphas: vec![0.0; out_features],
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// The latent (full-precision) weights.
    pub fn latent_weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The sign pattern of the current weights (+1 / −1), the bits a
    /// crossbar would store.
    pub fn sign_weights(&self) -> Tensor {
        self.weight.value.map(|w| if w >= 0.0 { 1.0 } else { -1.0 })
    }

    /// Per-output-row binarization scales α (mean |w|).
    pub fn scales(&self) -> Vec<f32> {
        let (o, i) = (self.out_features(), self.in_features());
        (0..o)
            .map(|r| {
                let row = &self.weight.value.as_slice()[r * i..(r + 1) * i];
                row.iter().map(|w| w.abs()).sum::<f32>() / i as f32
            })
            .collect()
    }

    /// Borrows the bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias.value
    }

    fn binarize(&mut self) -> Tensor {
        let (o, i) = (self.out_features(), self.in_features());
        self.alphas = self.scales();
        let mut b = self.sign_weights();
        for r in 0..o {
            let a = self.alphas[r];
            for c in 0..i {
                b[r * i + c] *= a;
            }
        }
        b
    }
}

impl Layer for BinaryLinear {
    fn forward(&mut self, input: &Tensor, _mode: Mode, _rng: &mut StdRng) -> Tensor {
        assert_eq!(input.ndim(), 2, "BinaryLinear expects [N, in], got {:?}", input.shape());
        assert_eq!(input.shape()[1], self.in_features(), "feature mismatch");
        self.input = Some(input.clone());
        let wb = self.binarize();
        let mut out = input.matmul(&wb.transpose());
        let (n, f) = (out.shape()[0], out.shape()[1]);
        for idx in 0..n {
            for j in 0..f {
                out[idx * f + j] += self.bias.value[j];
            }
        }
        self.binarized = Some(wb);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.input.as_ref().expect("backward before forward");
        let wb = self.binarized.as_ref().expect("backward before forward");
        // Gradient w.r.t. the binarized weights.
        let grad_wb = grad_out.transpose().matmul(input);
        // STE with clipping: dL/dw ≈ dL/dw_b · α · 1{|w| ≤ 1}.
        let (o, i) = (self.out_features(), self.in_features());
        for r in 0..o {
            let a = self.alphas[r];
            for c in 0..i {
                let w = self.weight.value[r * i + c];
                if w.abs() <= 1.0 {
                    self.weight.grad[r * i + c] += grad_wb[r * i + c] * a;
                }
            }
        }
        let (n, f) = (grad_out.shape()[0], grad_out.shape()[1]);
        for j in 0..f {
            let mut s = 0.0;
            for idx in 0..n {
                s += grad_out[idx * f + j];
            }
            self.bias.grad[j] += s;
        }
        grad_out.matmul(wb)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        f("weight", &mut self.weight);
        f("bias", &mut self.bias);
    }

    fn name(&self) -> &'static str {
        "BinaryLinear"
    }
}

/// A DropConnect dense layer: an independent Bernoulli mask is applied
/// to every *weight* on each stochastic pass (MC-DropConnect, one of the
/// Bayesian baselines the paper compares module counts against — it
/// needs one RNG per weight).
#[derive(Debug, Clone)]
pub struct DropConnectLinear {
    inner: Linear,
    /// Per-weight drop probability.
    p: f32,
    mask: Option<Tensor>,
}

impl DropConnectLinear {
    /// Creates the layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(in_features: usize, out_features: usize, p: f32, rng: &mut StdRng) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1), got {p}");
        Self { inner: Linear::new(in_features, out_features, rng), p, mask: None }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// Number of Bernoulli draws (RNG invocations) per stochastic pass:
    /// one per weight.
    pub fn rng_draws_per_pass(&self) -> usize {
        self.inner.weight.value.len()
    }
}

impl Layer for DropConnectLinear {
    fn forward(&mut self, input: &Tensor, mode: Mode, rng: &mut StdRng) -> Tensor {
        if !mode.stochastic() || self.p == 0.0 {
            self.mask = None;
            return self.inner.forward(input, mode, rng);
        }
        let keep = 1.0 - self.p;
        let mask = Tensor::from_fn(self.inner.weight.value.shape(), |_| {
            if rng.random::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let masked = &self.inner.weight.value * &mask;
        self.inner.input = Some(input.clone());
        let out = self.inner.affine(input, &masked);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match self.mask.take() {
            None => self.inner.backward(grad_out),
            Some(mask) => {
                let masked = &self.inner.weight.value * &mask;
                let (grad_w, grad_in) = self.inner.backward_with(grad_out, &masked);
                self.inner.weight.grad.axpy(1.0, &(&grad_w * &mask));
                grad_in
            }
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.inner.visit_params(f);
    }

    fn name(&self) -> &'static str {
        "DropConnectLinear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{grad_check_input, grad_check_params};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn linear_forward_shape_and_values() {
        let mut r = rng();
        let mut l = Linear::new(3, 2, &mut r);
        // Set known weights.
        l.weight.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &[2, 3]);
        l.bias.value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = l.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.as_slice(), &[1.5, 1.5]);
    }

    #[test]
    fn linear_grad_check() {
        let mut r = rng();
        let mut l = Linear::new(4, 3, &mut r);
        let x = Tensor::from_fn(&[2, 4], |i| (i as f32 * 0.37).sin());
        assert!(grad_check_input(&mut l, &x, Mode::Eval, 1, 1e-2) < 1e-2);
        assert!(grad_check_params(&mut l, &x, Mode::Eval, 1, 1e-2) < 1e-2);
    }

    #[test]
    fn binary_linear_uses_sign_weights() {
        let mut r = rng();
        let mut l = BinaryLinear::new(2, 1, &mut r);
        l.weight.value = Tensor::from_vec(vec![0.3, -0.7], &[1, 2]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = l.forward(&x, Mode::Eval, &mut r);
        // α = (0.3 + 0.7)/2 = 0.5; y = 0.5·(+1) + 0.5·(−1) = 0.
        assert!((y[0] - 0.0).abs() < 1e-6);
        assert_eq!(l.sign_weights().as_slice(), &[1.0, -1.0]);
        assert!((l.scales()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn binary_linear_ste_masks_large_weights() {
        let mut r = rng();
        let mut l = BinaryLinear::new(2, 1, &mut r);
        l.weight.value = Tensor::from_vec(vec![0.5, 2.0], &[1, 2]);
        let x = Tensor::ones(&[1, 2]);
        let _ = l.forward(&x, Mode::Train, &mut r);
        let _ = l.backward(&Tensor::ones(&[1, 1]));
        assert_ne!(l.weight.grad[0], 0.0, "in-range weight gets gradient");
        assert_eq!(l.weight.grad[1], 0.0, "|w| > 1 is clipped by STE");
    }

    #[test]
    fn binary_linear_trains_toward_targets() {
        // A sanity check that STE training reduces loss on a toy task.
        let mut r = rng();
        let mut l = BinaryLinear::new(4, 2, &mut r);
        let x = Tensor::from_fn(&[8, 4], |i| ((i * 31 % 17) as f32 / 8.5) - 1.0);
        let target = Tensor::from_fn(&[8, 2], |i| if i % 2 == 0 { 1.0 } else { -1.0 });
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..60 {
            l.zero_grad();
            let y = l.forward(&x, Mode::Train, &mut r);
            let diff = &y - &target;
            last_loss = 0.5 * diff.norm_sq();
            first_loss.get_or_insert(last_loss);
            let _ = l.backward(&diff);
            l.visit_params(&mut |_, p| {
                let g = p.grad.clone();
                p.value.axpy(-0.05, &g);
            });
        }
        assert!(last_loss < 0.5 * first_loss.unwrap(), "{last_loss} vs {first_loss:?}");
    }

    #[test]
    fn dropconnect_eval_is_deterministic() {
        let mut r = rng();
        let mut l = DropConnectLinear::new(5, 3, 0.5, &mut r);
        let x = Tensor::ones(&[1, 5]);
        let y1 = l.forward(&x, Mode::Eval, &mut r);
        let y2 = l.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y1, y2);
    }

    #[test]
    fn dropconnect_sample_is_stochastic() {
        let mut r = rng();
        let mut l = DropConnectLinear::new(16, 4, 0.5, &mut r);
        let x = Tensor::ones(&[1, 16]);
        let y1 = l.forward(&x, Mode::Sample, &mut r);
        let y2 = l.forward(&x, Mode::Sample, &mut r);
        assert_ne!(y1, y2, "two MC samples should differ");
    }

    #[test]
    fn dropconnect_mask_preserves_expectation() {
        let mut r = rng();
        let mut l = DropConnectLinear::new(32, 1, 0.3, &mut r);
        let x = Tensor::ones(&[1, 32]);
        let reference = l.forward(&x, Mode::Eval, &mut r)[0];
        let mut acc = 0.0;
        let n = 3000;
        for _ in 0..n {
            acc += l.forward(&x, Mode::Sample, &mut r)[0];
        }
        let mc = acc / n as f32;
        assert!((mc - reference).abs() < 0.1, "MC mean {mc} vs reference {reference}");
    }

    #[test]
    fn dropconnect_rng_draw_count() {
        let mut r = rng();
        let l = DropConnectLinear::new(10, 4, 0.2, &mut r);
        assert_eq!(l.rng_draws_per_pass(), 40);
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn linear_rejects_wrong_width() {
        let mut r = rng();
        let mut l = Linear::new(3, 2, &mut r);
        let x = Tensor::ones(&[1, 4]);
        let _ = l.forward(&x, Mode::Eval, &mut r);
    }
}
