//! Normalization layers: batch normalization and NeuSpin's *inverted
//! normalization with affine dropout* (the self-healing layer of
//! §III-A4).
//!
//! Inverted normalization swaps the usual order: the learnable affine
//! transform `a = γ·x + β` is applied **first** (γ, β are treated
//! exactly like weights, trained by gradient descent), and the
//! normalization — statistic computation and whitening — happens
//! **after**, with *per-sample* statistics. Per-sample statistics are
//! what makes the layer self-healing on CIM hardware: a multiplicative
//! conductance drift or additive column offset introduced by the
//! crossbar is renormalized away sample by sample, with no dependence on
//! stored running statistics that the drift would invalidate.
//!
//! Affine dropout adds stochasticity for Bayesian inference: with
//! probability `p` the whole γ vector is replaced by ones, and
//! (independently) the whole β vector by zeros — *scalar* masks, so the
//! layer needs only two RNG draws per pass regardless of width.

use crate::layer::{Layer, Mode, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::RngExt;

const EPS: f32 = 1e-5;

/// Batch normalization over `[N, F]` (per feature) or `[N, C, H, W]`
/// (per channel), with running statistics for inference.
///
/// # Examples
///
/// ```
/// use neuspin_nn::{BatchNorm, Layer, Mode, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut bn = BatchNorm::new(4);
/// let x = Tensor::from_fn(&[8, 4], |i| i as f32);
/// let y = bn.forward(&x, Mode::Train, &mut rng);
/// // Each feature column is whitened.
/// assert!(y.mean().abs() < 1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct BatchNorm {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    // Caches for backward.
    xhat: Option<Tensor>,
    inv_std: Vec<f32>,
    group: usize,
    features: usize,
}

impl BatchNorm {
    /// Creates a batch-norm layer over `features` features/channels.
    ///
    /// # Panics
    ///
    /// Panics if `features == 0`.
    pub fn new(features: usize) -> Self {
        assert!(features > 0, "features must be positive");
        Self {
            gamma: Param::new(Tensor::ones(&[features])),
            beta: Param::new(Tensor::zeros(&[features])),
            running_mean: vec![0.0; features],
            running_var: vec![1.0; features],
            momentum: 0.1,
            xhat: None,
            inv_std: vec![],
            group: 0,
            features,
        }
    }

    /// Number of normalized features/channels.
    pub fn features(&self) -> usize {
        self.features
    }

    /// `(feature_count, elements_per_feature_per_sample)` for a given
    /// input shape.
    fn layout(&self, shape: &[usize]) -> (usize, usize) {
        match shape.len() {
            2 => (shape[1], 1),
            4 => (shape[1], shape[2] * shape[3]),
            _ => panic!("BatchNorm expects [N,F] or [N,C,H,W], got {shape:?}"),
        }
    }
}

impl Layer for BatchNorm {
    fn forward(&mut self, input: &Tensor, mode: Mode, _rng: &mut StdRng) -> Tensor {
        let (f, spatial) = self.layout(input.shape());
        assert_eq!(f, self.features, "feature mismatch: {f} vs {}", self.features);
        let n = input.shape()[0];
        let group = n * spatial; // elements normalized together per feature
        self.group = group;

        let idx = |ni: usize, fi: usize, si: usize| (ni * f + fi) * spatial + si;

        let (mean, var): (Vec<f32>, Vec<f32>) = if mode.batch_stats() {
            let mut mean = vec![0.0f32; f];
            let mut var = vec![0.0f32; f];
            for fi in 0..f {
                let mut s = 0.0;
                for ni in 0..n {
                    for si in 0..spatial {
                        s += input[idx(ni, fi, si)];
                    }
                }
                mean[fi] = s / group as f32;
                let mut v = 0.0;
                for ni in 0..n {
                    for si in 0..spatial {
                        let d = input[idx(ni, fi, si)] - mean[fi];
                        v += d * d;
                    }
                }
                var[fi] = v / group as f32;
            }
            // Update running statistics.
            for fi in 0..f {
                self.running_mean[fi] =
                    (1.0 - self.momentum) * self.running_mean[fi] + self.momentum * mean[fi];
                self.running_var[fi] =
                    (1.0 - self.momentum) * self.running_var[fi] + self.momentum * var[fi];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        self.inv_std = var.iter().map(|&v| 1.0 / (v + EPS).sqrt()).collect();
        let mut xhat = Tensor::zeros(input.shape());
        let mut out = Tensor::zeros(input.shape());
        for ni in 0..n {
            #[allow(clippy::needless_range_loop)] // fi indexes four arrays plus idx()
            for fi in 0..f {
                for si in 0..spatial {
                    let i = idx(ni, fi, si);
                    let h = (input[i] - mean[fi]) * self.inv_std[fi];
                    xhat[i] = h;
                    out[i] = self.gamma.value[fi] * h + self.beta.value[fi];
                }
            }
        }
        self.xhat = Some(xhat);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let xhat = self.xhat.as_ref().expect("backward before forward");
        let (f, spatial) = self.layout(grad_out.shape());
        let n = grad_out.shape()[0];
        let m = self.group as f32;
        let idx = |ni: usize, fi: usize, si: usize| (ni * f + fi) * spatial + si;

        let mut grad_in = Tensor::zeros(grad_out.shape());
        for fi in 0..f {
            let mut sum_g = 0.0f32;
            let mut sum_gh = 0.0f32;
            for ni in 0..n {
                for si in 0..spatial {
                    let i = idx(ni, fi, si);
                    sum_g += grad_out[i];
                    sum_gh += grad_out[i] * xhat[i];
                }
            }
            self.beta.grad[fi] += sum_g;
            self.gamma.grad[fi] += sum_gh;
            let g = self.gamma.value[fi];
            let s = self.inv_std[fi];
            for ni in 0..n {
                for si in 0..spatial {
                    let i = idx(ni, fi, si);
                    grad_in[i] =
                        g * s * (grad_out[i] - sum_g / m - xhat[i] * sum_gh / m);
                }
            }
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        f("gamma", &mut self.gamma);
        f("beta", &mut self.beta);
    }

    fn name(&self) -> &'static str {
        "BatchNorm"
    }
}

/// Inverted normalization with optional affine dropout (§III-A4).
///
/// Forward (per sample `i`, features `j` — for NCHW inputs the feature
/// axis is the channel and statistics run over `C·H·W`):
///
/// ```text
/// a_ij = γ_j · x_ij + β_j          (affine FIRST; γ, β are weights)
/// y_ij = (a_ij − μ_i) / σ_i        (per-sample whitening, NO affine after)
/// ```
///
/// With affine dropout probability `p > 0` and a stochastic
/// [`Mode`], two scalar Bernoulli masks are drawn per pass: if the
/// weight mask drops, γ is replaced by **ones**; if the bias mask drops,
/// β is replaced by **zeros**. Two RNG draws per layer per pass — the
/// entire point of the design versus per-element dropout.
///
/// # Examples
///
/// ```
/// use neuspin_nn::{InvertedNorm, Layer, Mode, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let mut layer = InvertedNorm::new(8, 0.2);
/// let x = Tensor::from_fn(&[4, 8], |i| (i as f32).cos());
/// let y = layer.forward(&x, Mode::Sample, &mut rng);
/// assert_eq!(y.shape(), &[4, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct InvertedNorm {
    gamma: Param,
    beta: Param,
    /// Affine-dropout probability (0 disables the dropout entirely).
    p: f32,
    // Caches.
    input: Option<Tensor>,
    y: Option<Tensor>,
    inv_std: Vec<f32>,
    gamma_kept: bool,
    beta_kept: bool,
    features: usize,
}

impl InvertedNorm {
    /// Creates the layer over `features` features/channels with affine
    /// dropout probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `features == 0` or `p ∉ [0, 1)`.
    pub fn new(features: usize, p: f32) -> Self {
        assert!(features > 0, "features must be positive");
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1), got {p}");
        Self {
            gamma: Param::new(Tensor::ones(&[features])),
            beta: Param::new(Tensor::zeros(&[features])),
            p,
            input: None,
            y: None,
            inv_std: vec![],
            gamma_kept: true,
            beta_kept: true,
            features,
        }
    }

    /// Number of features/channels.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Affine-dropout probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// RNG draws per stochastic pass (always 2: scalar masks).
    pub fn rng_draws_per_pass(&self) -> usize {
        2
    }

    fn layout(&self, shape: &[usize]) -> (usize, usize) {
        match shape.len() {
            2 => (shape[1], 1),
            4 => (shape[1], shape[2] * shape[3]),
            _ => panic!("InvertedNorm expects [N,F] or [N,C,H,W], got {shape:?}"),
        }
    }
}

impl Layer for InvertedNorm {
    fn forward(&mut self, input: &Tensor, mode: Mode, rng: &mut StdRng) -> Tensor {
        let (f, spatial) = self.layout(input.shape());
        assert_eq!(f, self.features, "feature mismatch: {f} vs {}", self.features);
        let n = input.shape()[0];
        let m = (f * spatial) as f32;
        let idx = |ni: usize, fi: usize, si: usize| (ni * f + fi) * spatial + si;

        // Affine dropout: scalar masks.
        if self.p > 0.0 && mode.stochastic() {
            self.gamma_kept = rng.random::<f32>() >= self.p;
            self.beta_kept = rng.random::<f32>() >= self.p;
        } else {
            self.gamma_kept = true;
            self.beta_kept = true;
        }

        let mut a = Tensor::zeros(input.shape());
        for ni in 0..n {
            for fi in 0..f {
                let g = if self.gamma_kept { self.gamma.value[fi] } else { 1.0 };
                let b = if self.beta_kept { self.beta.value[fi] } else { 0.0 };
                for si in 0..spatial {
                    let i = idx(ni, fi, si);
                    a[i] = g * input[i] + b;
                }
            }
        }

        // Per-sample whitening over all features.
        let mut out = Tensor::zeros(input.shape());
        self.inv_std = vec![0.0; n];
        for ni in 0..n {
            let mut mean = 0.0f32;
            for fi in 0..f {
                for si in 0..spatial {
                    mean += a[idx(ni, fi, si)];
                }
            }
            mean /= m;
            let mut var = 0.0f32;
            for fi in 0..f {
                for si in 0..spatial {
                    let d = a[idx(ni, fi, si)] - mean;
                    var += d * d;
                }
            }
            var /= m;
            let inv = 1.0 / (var + EPS).sqrt();
            self.inv_std[ni] = inv;
            for fi in 0..f {
                for si in 0..spatial {
                    let i = idx(ni, fi, si);
                    out[i] = (a[i] - mean) * inv;
                }
            }
        }
        self.input = Some(input.clone());
        self.y = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.input.as_ref().expect("backward before forward");
        let y = self.y.as_ref().expect("backward before forward");
        let (f, spatial) = self.layout(grad_out.shape());
        let n = grad_out.shape()[0];
        let m = (f * spatial) as f32;
        let idx = |ni: usize, fi: usize, si: usize| (ni * f + fi) * spatial + si;

        // Layer-norm backward per sample: da = inv_std · (g − mean(g) − y · mean(g·y)).
        let mut da = Tensor::zeros(grad_out.shape());
        for ni in 0..n {
            let mut mean_g = 0.0f32;
            let mut mean_gy = 0.0f32;
            for fi in 0..f {
                for si in 0..spatial {
                    let i = idx(ni, fi, si);
                    mean_g += grad_out[i];
                    mean_gy += grad_out[i] * y[i];
                }
            }
            mean_g /= m;
            mean_gy /= m;
            let inv = self.inv_std[ni];
            for fi in 0..f {
                for si in 0..spatial {
                    let i = idx(ni, fi, si);
                    da[i] = inv * (grad_out[i] - mean_g - y[i] * mean_gy);
                }
            }
        }

        // Through the affine: dγ_j = Σ da·x (if kept), dβ_j = Σ da (if kept),
        // dx = da · γ_eff.
        let mut grad_in = Tensor::zeros(grad_out.shape());
        for fi in 0..f {
            let g_eff = if self.gamma_kept { self.gamma.value[fi] } else { 1.0 };
            let mut dg = 0.0f32;
            let mut db = 0.0f32;
            for ni in 0..n {
                for si in 0..spatial {
                    let i = idx(ni, fi, si);
                    dg += da[i] * input[i];
                    db += da[i];
                    grad_in[i] = da[i] * g_eff;
                }
            }
            if self.gamma_kept {
                self.gamma.grad[fi] += dg;
            }
            if self.beta_kept {
                self.beta.grad[fi] += db;
            }
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        f("gamma", &mut self.gamma);
        f("beta", &mut self.beta);
    }

    fn name(&self) -> &'static str {
        "InvertedNorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{grad_check_input, grad_check_params};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    #[test]
    fn batchnorm_whitens_in_train_mode() {
        let mut r = rng();
        let mut bn = BatchNorm::new(3);
        let x = Tensor::from_fn(&[16, 3], |i| (i as f32 * 1.7) % 5.0 + (i % 3) as f32 * 10.0);
        let y = bn.forward(&x, Mode::Train, &mut r);
        for fi in 0..3 {
            let col: Vec<f32> = (0..16).map(|n| y[n * 3 + fi]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 16.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut r = rng();
        let mut bn = BatchNorm::new(2);
        let x = Tensor::from_fn(&[32, 2], |i| i as f32 * 0.1);
        // Several training passes to accumulate running stats.
        for _ in 0..50 {
            let _ = bn.forward(&x, Mode::Train, &mut r);
        }
        let y_eval = bn.forward(&x, Mode::Eval, &mut r);
        let y_sample = bn.forward(&x, Mode::Sample, &mut r);
        assert_eq!(y_eval, y_sample, "Eval and Sample use the same running stats");
        // Running stats converged to batch stats, so eval ≈ train output.
        let y_train = bn.forward(&x, Mode::Train, &mut r);
        let diff = (&y_eval - &y_train).map(f32::abs).max();
        assert!(diff < 0.05, "diff {diff}");
    }

    #[test]
    fn batchnorm_grad_check_2d() {
        let mut bn = BatchNorm::new(3);
        // Non-trivial gamma/beta.
        bn.gamma.value = Tensor::from_vec(vec![1.5, 0.5, 2.0], &[3]);
        bn.beta.value = Tensor::from_vec(vec![0.1, -0.2, 0.3], &[3]);
        let x = Tensor::from_fn(&[5, 3], |i| (i as f32 * 0.77).sin());
        assert!(grad_check_input(&mut bn, &x, Mode::Train, 1, 1e-2) < 2e-2);
        assert!(grad_check_params(&mut bn, &x, Mode::Train, 1, 1e-2) < 2e-2);
    }

    #[test]
    fn batchnorm_4d_shapes() {
        let mut r = rng();
        let mut bn = BatchNorm::new(4);
        let x = Tensor::from_fn(&[2, 4, 3, 3], |i| (i as f32 * 0.3).cos());
        let y = bn.forward(&x, Mode::Train, &mut r);
        assert_eq!(y.shape(), x.shape());
        let g = bn.backward(&y);
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn inverted_norm_output_is_whitened_per_sample() {
        let mut r = rng();
        let mut layer = InvertedNorm::new(8, 0.0);
        let x = Tensor::from_fn(&[4, 8], |i| (i as f32 * 0.9).sin() * 3.0 + 1.0);
        let y = layer.forward(&x, Mode::Eval, &mut r);
        for ni in 0..4 {
            let row: Vec<f32> = (0..8).map(|j| y[ni * 8 + j]).collect();
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn inverted_norm_self_heals_input_scaling() {
        // The self-healing property: a global multiplicative drift on the
        // input (conductance variation) leaves the output unchanged.
        let mut r = rng();
        let mut layer = InvertedNorm::new(8, 0.0);
        let x = Tensor::from_fn(&[2, 8], |i| (i as f32 * 0.5).cos());
        let y1 = layer.forward(&x, Mode::Eval, &mut r);
        let drifted = &x * 1.37; // 37 % conductance drift
        let y2 = layer.forward(&drifted, Mode::Eval, &mut r);
        let diff = (&y1 - &y2).map(f32::abs).max();
        assert!(diff < 1e-4, "scaling must be healed, diff {diff}");
    }

    #[test]
    fn inverted_norm_grad_check() {
        let mut layer = InvertedNorm::new(4, 0.0);
        layer.gamma.value = Tensor::from_vec(vec![1.2, 0.8, 1.5, 0.6], &[4]);
        layer.beta.value = Tensor::from_vec(vec![0.1, -0.3, 0.2, 0.0], &[4]);
        let x = Tensor::from_fn(&[3, 4], |i| (i as f32 * 0.63).sin());
        assert!(grad_check_input(&mut layer, &x, Mode::Eval, 1, 1e-2) < 2e-2);
        assert!(grad_check_params(&mut layer, &x, Mode::Eval, 1, 1e-2) < 2e-2);
    }

    #[test]
    fn affine_dropout_grad_check_with_masks_active() {
        // Under a fixed seed the scalar masks are reproducible, so the
        // finite-difference check remains valid in Sample mode.
        let mut layer = InvertedNorm::new(4, 0.5);
        let x = Tensor::from_fn(&[3, 4], |i| (i as f32 * 0.41).cos());
        assert!(grad_check_input(&mut layer, &x, Mode::Sample, 3, 1e-2) < 2e-2);
    }

    #[test]
    fn affine_dropout_is_stochastic_in_sample_mode() {
        let mut r = rng();
        let mut layer = InvertedNorm::new(6, 0.5);
        // Make γ, β distinctive so dropping them changes the output.
        layer.gamma.value = Tensor::from_fn(&[6], |i| 1.0 + i as f32);
        layer.beta.value = Tensor::from_fn(&[6], |i| i as f32 * 0.5);
        let x = Tensor::from_fn(&[1, 6], |i| (i as f32 * 0.7).sin());
        let outputs: Vec<Tensor> =
            (0..20).map(|_| layer.forward(&x, Mode::Sample, &mut r)).collect();
        let distinct = outputs
            .iter()
            .any(|o| (o - &outputs[0]).map(f32::abs).max() > 1e-6);
        assert!(distinct, "affine dropout must vary outputs across samples");
    }

    #[test]
    fn affine_dropout_inactive_in_eval() {
        let mut r = rng();
        let mut layer = InvertedNorm::new(6, 0.5);
        layer.gamma.value = Tensor::from_fn(&[6], |i| 1.0 + i as f32);
        let x = Tensor::from_fn(&[1, 6], |i| (i as f32 * 0.7).sin());
        let y1 = layer.forward(&x, Mode::Eval, &mut r);
        let y2 = layer.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y1, y2);
    }

    #[test]
    fn dropped_gamma_receives_no_gradient() {
        use rand::SeedableRng;
        let mut layer = InvertedNorm::new(4, 0.999);
        let x = Tensor::from_fn(&[2, 4], |i| i as f32 * 0.3 + 0.1);
        // With p≈1 both masks drop (probability (0.999)² per draw pair).
        let mut r = StdRng::seed_from_u64(5);
        let y = layer.forward(&x, Mode::Sample, &mut r);
        assert!(!layer.gamma_kept && !layer.beta_kept, "masks should have dropped");
        layer.zero_grad();
        let _ = layer.backward(&y);
        assert_eq!(layer.gamma.grad.sum(), 0.0);
        assert_eq!(layer.beta.grad.sum(), 0.0);
    }
}
