//! A compact dense `f32` tensor.
//!
//! The NeuSpin training stack only needs a small, predictable subset of
//! tensor functionality: contiguous row-major storage, elementwise math,
//! 2-D matrix products, and shape bookkeeping for the conv/pool layers.
//! This module provides exactly that, with shape checks that panic early
//! and loudly (shape errors are programming errors, not runtime inputs).

use std::fmt;
use std::ops::{Add, Div, Index, IndexMut, Mul, Neg, Sub};

/// A dense row-major `f32` tensor.
///
/// # Examples
///
/// ```
/// use neuspin_nn::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::ones(&[2, 2]);
/// let c = &a + &b;
/// assert_eq!(c.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
/// let d = a.matmul(&b);
/// assert_eq!(d.as_slice(), &[3.0, 3.0, 7.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a flat vector and shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "data length {} does not match shape {:?} (= {})",
            data.len(),
            shape,
            expected
        );
        Self { shape: shape.to_vec(), data }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// A tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![value; n] }
    }

    /// Builds a tensor by calling `f(flat_index)` for each element.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n: usize = shape.iter().product();
        Self { shape: shape.to_vec(), data: (0..n).map(&mut f).collect() }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Elements the backing storage can hold without reallocating
    /// (scratch-arena accounting).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Borrow the flat data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the flat data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a reshaped view copy with the same data.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        Self::from_vec(self.data.clone(), shape)
    }

    /// Reshapes in place (no data movement, and no allocation while the
    /// shape vector's capacity covers the new rank).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let expected: usize = shape.iter().product();
        assert_eq!(self.data.len(), expected, "cannot reshape {:?} to {:?}", self.shape, shape);
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Resizes to `shape`, reusing the existing data and shape
    /// allocations when their capacity allows. Element values are
    /// unspecified afterwards (callers overwrite them); repeated calls
    /// at an already-seen size are allocation-free.
    pub fn resize_to(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        self.data.resize(n, 0.0);
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Makes `self` an element-for-element copy of `other`, reusing
    /// `self`'s allocations when capacity allows.
    pub fn copy_from(&mut self, other: &Self) {
        self.resize_to(&other.shape);
        self.data.copy_from_slice(&other.data);
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Mutable element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let i = self.flat_index(idx);
        &mut self.data[i]
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank {} vs tensor rank {}", idx.len(), self.shape.len());
        let mut flat = 0;
        for (d, (&i, &s)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(i < s, "index {i} out of range {s} in dim {d}");
            flat = flat * s + i;
        }
        flat
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` elementwise in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        self.assert_same_shape(other);
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    fn assert_same_shape(&self, other: &Self) {
        assert_eq!(self.shape, other.shape, "shape mismatch: {:?} vs {:?}", self.shape, other.shape);
    }

    /// `self += alpha * other` (same shapes).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Mean of absolute values (the binarization scale α).
    pub fn abs_mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().map(|x| x.abs()).sum::<f32>() / self.data.len() as f32
        }
    }

    /// 2-D matrix product: `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with matching inner dimension.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D, got {:?}", self.shape);
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {:?} × {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Self { shape: vec![m, n], data: out }
    }

    /// [`Self::matmul`] into a caller-provided output tensor — the same
    /// float-op order (row-outer, zero-skipped inner accumulation), so
    /// results are bit-identical to `matmul`; `out` is resized and
    /// zeroed in place, with no allocation once its capacity covers
    /// `m × n`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with matching inner dimension.
    pub fn matmul_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D, got {:?}", self.shape);
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {:?} × {:?}", self.shape, other.shape);
        out.resize_to(&[m, n]);
        out.data.fill(0.0);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D.
    pub fn transpose(&self) -> Self {
        assert_eq!(self.ndim(), 2, "transpose needs a 2-D tensor, got {:?}", self.shape);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Self { shape: vec![n, m], data: out }
    }

    /// Row `i` of a 2-D tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D and `i` is in range.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.ndim(), 2, "row() needs a 2-D tensor");
        let n = self.shape[1];
        &self.data[i * n..(i + 1) * n]
    }

    /// Index of the maximum element of each row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 2-D.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2, "argmax_rows needs a 2-D tensor");
        (0..self.shape[0])
            .map(|i| {
                let row = self.row(i);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<usize> for Tensor {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Tensor {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&Tensor> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.zip(rhs, |a, b| a $op b)
            }
        }
        impl $trait<f32> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f32) -> Tensor {
                self.map(|a| a $op rhs)
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);
impl_binop!(Mul, mul, *);
impl_binop!(Div, div, /);

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|a| -a)
    }
}

impl FromIterator<f32> for Tensor {
    /// Collects into a 1-D tensor.
    fn from_iter<T: IntoIterator<Item = f32>>(iter: T) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        let n = data.len();
        Self { shape: vec![n], data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.ndim(), 3);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_checks_length() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn multi_dim_indexing() {
        let t = Tensor::from_fn(&[2, 3], |i| i as f32);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[0, 2]), 2.0);
        assert_eq!(t.at(&[1, 0]), 3.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indexing_out_of_range_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[2, 0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(a.matmul(&eye), a);
        assert_eq!(eye.matmul(&a), a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_into_matches_matmul_bitwise_and_reuses_capacity() {
        let a = Tensor::from_fn(&[3, 5], |i| ((i * 7) % 11) as f32 / 3.0 - 1.0);
        let b = Tensor::from_fn(&[5, 4], |i| ((i * 13) % 9) as f32 / 4.0 - 1.0);
        let expect = a.matmul(&b);
        // Start from a dirty, larger buffer: matmul_into must zero it.
        let mut out = Tensor::full(&[6, 6], 7.0);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.shape(), expect.shape());
        assert!(out
            .as_slice()
            .iter()
            .zip(expect.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        // Second call at the same size must not need new capacity.
        let cap = out.data.capacity();
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data.capacity(), cap);
    }

    #[test]
    fn resize_to_and_copy_from_reuse_storage() {
        let mut t = Tensor::zeros(&[4, 4]);
        let cap = t.data.capacity();
        t.resize_to(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.data.capacity(), cap, "shrinking must keep capacity");
        let src = Tensor::from_fn(&[2, 2], |i| i as f32);
        t.copy_from(&src);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.as_slice(), src.as_slice());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_fn(&[3, 5], |i| i as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(&[4, 2]), a.at(&[2, 4]));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * &b).as_slice(), &[3.0, 10.0]);
        assert_eq!((&b / &a).as_slice(), &[3.0, 2.5]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[4]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.abs_mean(), 2.5);
        assert_eq!(t.norm_sq(), 30.0);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 6], |i| i as f32);
        let r = t.reshape(&[3, 4]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.shape(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn bad_reshape_panics() {
        let mut t = Tensor::zeros(&[4]);
        t.reshape_in_place(&[5]);
    }

    #[test]
    fn finite_check() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.all_finite());
        t[0] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn collect_into_tensor() {
        let t: Tensor = (0..4).map(|i| i as f32).collect();
        assert_eq!(t.shape(), &[4]);
    }

    #[test]
    fn display_small_tensor() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let s = t.to_string();
        assert!(s.contains("[2]"));
        assert!(s.contains("1.0"));
    }
}
