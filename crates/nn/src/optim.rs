//! Optimizers: SGD with momentum, and Adam.
//!
//! Optimizers hold per-parameter state in the order parameters are
//! visited, which is stable for a fixed model architecture.

use crate::model::Sequential;
use crate::tensor::Tensor;

/// Stochastic gradient descent with classical momentum and optional
/// decoupled weight decay.
///
/// # Examples
///
/// ```
/// use neuspin_nn::{Sequential, Linear, Sgd, Optimizer};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut model = Sequential::new();
/// model.push(Linear::new(4, 2, &mut rng));
/// let mut opt = Sgd::new(0.1).momentum(0.9);
/// opt.step(&mut model); // no-op on zero grads, but exercises the path
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "lr must be positive, got {lr}");
        Self { lr, momentum: 0.0, weight_decay: 0.0, velocity: vec![] }
    }

    /// Sets the momentum coefficient (builder style).
    pub fn momentum(mut self, m: f32) -> Self {
        assert!((0.0..1.0).contains(&m), "momentum must be in [0, 1), got {m}");
        self.momentum = m;
        self
    }

    /// Sets decoupled weight decay (builder style).
    pub fn weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be >= 0");
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "lr must be positive, got {lr}");
        self.lr = lr;
    }
}

/// Common optimizer interface.
pub trait Optimizer {
    /// Applies one update step using the gradients currently stored in
    /// the model, then leaves gradients untouched (call
    /// [`Sequential::zero_grad`] before the next backward).
    fn step(&mut self, model: &mut Sequential);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Updates the learning rate (used by LR schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

impl Optimizer for Sgd {
    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.set_lr(lr);
    }

    fn step(&mut self, model: &mut Sequential) {
        let mut idx = 0;
        let lr = self.lr;
        let mu = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |_, p| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut velocity[idx];
            assert_eq!(v.shape(), p.value.shape(), "model shape changed under optimizer");
            for i in 0..p.value.len() {
                let g = p.grad[i] + wd * p.value[i];
                v[i] = mu * v[i] + g;
                p.value[i] -= lr * v[i];
            }
            idx += 1;
        });
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the given learning rate and standard defaults
    /// (β₁ 0.9, β₂ 0.999, ε 1e-8).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "lr must be positive, got {lr}");
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, t: 0, m: vec![], v: vec![] }
    }

    /// Sets decoupled weight decay (builder style).
    pub fn weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be >= 0");
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "lr must be positive, got {lr}");
        self.lr = lr;
    }
}

impl Optimizer for Adam {
    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.set_lr(lr);
    }

    fn step(&mut self, model: &mut Sequential) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0;
        model.visit_params(&mut |_, p| {
            if ms.len() <= idx {
                ms.push(Tensor::zeros(p.value.shape()));
                vs.push(Tensor::zeros(p.value.shape()));
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            for i in 0..p.value.len() {
                let g = p.grad[i] + wd * p.value[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p.value[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use crate::linear::Linear;
    use crate::loss::mse;
    use crate::model::Sequential;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_problem() -> (Sequential, Tensor, Tensor, StdRng) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut model = Sequential::new();
        model.push(Linear::new(2, 1, &mut rng));
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, 0.5], &[4, 2]);
        // Target: y = 2·x0 − x1.
        let y = Tensor::from_vec(vec![2.0, -1.0, 1.0, 0.5], &[4, 1]);
        (model, x, y, rng)
    }

    fn train_loss<O: Optimizer>(opt: &mut O, steps: usize) -> f32 {
        let (mut model, x, y, mut rng) = toy_problem();
        let mut loss = f32::INFINITY;
        for _ in 0..steps {
            model.zero_grad();
            let pred = model.forward(&x, Mode::Train, &mut rng);
            let (l, grad) = mse(&pred, &y);
            loss = l;
            model.backward(&grad);
            opt.step(&mut model);
        }
        loss
    }

    #[test]
    fn sgd_converges_on_linear_regression() {
        // The design matrix is poorly conditioned, so plain SGD needs a
        // generous budget; we only assert steady convergence.
        let mut opt = Sgd::new(0.2);
        assert!(train_loss(&mut opt, 1_000) < 1e-2);
    }

    #[test]
    fn momentum_accelerates() {
        let mut plain = Sgd::new(0.05);
        let mut mom = Sgd::new(0.05).momentum(0.9);
        let fewer_steps = 40;
        assert!(train_loss(&mut mom, fewer_steps) < train_loss(&mut plain, fewer_steps));
    }

    #[test]
    fn adam_converges() {
        let mut opt = Adam::new(0.05);
        assert!(train_loss(&mut opt, 300) < 1e-3);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = Sequential::new();
        model.push(Linear::new(3, 3, &mut rng));
        let norm_before: f32 = {
            let mut n = 0.0;
            model.visit_params(&mut |_, p| n += p.value.norm_sq());
            n
        };
        // Zero gradients, pure decay.
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        for _ in 0..10 {
            model.zero_grad();
            opt.step(&mut model);
        }
        let norm_after: f32 = {
            let mut n = 0.0;
            model.visit_params(&mut |_, p| n += p.value.norm_sq());
            n
        };
        assert!(norm_after < norm_before);
    }

    #[test]
    #[should_panic(expected = "lr must be positive")]
    fn rejects_bad_lr() {
        let _ = Sgd::new(-0.1);
    }
}
