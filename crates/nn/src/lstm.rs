//! A single-layer LSTM over `[N, T, D]` sequences, returning the final
//! hidden state `[N, H]`.
//!
//! Used by the time-series experiment of §III-A4 (LSTM-based prediction
//! with inverted normalization + affine dropout reducing RMSE).

use crate::init::xavier_uniform;
use crate::layer::{Layer, Mode, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f32>,       // [N, D]
    h_prev: Vec<f32>,  // [N, H]
    c_prev: Vec<f32>,  // [N, H]
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    tanh_c: Vec<f32>,
}

/// A single-layer LSTM. Weights are packed as `[4H, D + H]` in gate
/// order (input, forget, cell, output); biases `[4H]` with the forget
/// gate initialised to 1.
///
/// # Examples
///
/// ```
/// use neuspin_nn::{Lstm, Layer, Mode, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut lstm = Lstm::new(3, 8, &mut rng);
/// let x = Tensor::ones(&[2, 5, 3]); // batch 2, seq 5, features 3
/// let h = lstm.forward(&x, Mode::Eval, &mut rng);
/// assert_eq!(h.shape(), &[2, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct Lstm {
    weight: Param, // [4H, D+H]
    bias: Param,   // [4H]
    input_size: usize,
    hidden_size: usize,
    caches: Vec<StepCache>,
    batch: usize,
}

impl Lstm {
    /// Creates an LSTM mapping `input_size` features to a
    /// `hidden_size`-dimensional final hidden state.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut StdRng) -> Self {
        assert!(input_size > 0 && hidden_size > 0, "sizes must be positive");
        let cols = input_size + hidden_size;
        let weight = Param::new(xavier_uniform(&[4 * hidden_size, cols], cols, hidden_size, rng));
        let mut bias = Param::new(Tensor::zeros(&[4 * hidden_size]));
        // Forget-gate bias at 1 (standard trick for gradient flow).
        for j in hidden_size..2 * hidden_size {
            bias.value[j] = 1.0;
        }
        Self { weight, bias, input_size, hidden_size, caches: vec![], batch: 0 }
    }

    /// Input feature count.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    fn gates(&self, x: &[f32], h_prev: &[f32], n: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        let (d, hs) = (self.input_size, self.hidden_size);
        let cols = d + hs;
        let mut i_g = vec![0.0f32; n * hs];
        let mut f_g = vec![0.0f32; n * hs];
        let mut g_g = vec![0.0f32; n * hs];
        let mut o_g = vec![0.0f32; n * hs];
        for ni in 0..n {
            for j in 0..4 * hs {
                let mut acc = self.bias.value[j];
                let wrow = &self.weight.value.as_slice()[j * cols..(j + 1) * cols];
                for (k, &w) in wrow[..d].iter().enumerate() {
                    acc += w * x[ni * d + k];
                }
                for (k, &w) in wrow[d..].iter().enumerate() {
                    acc += w * h_prev[ni * hs + k];
                }
                let gate = j / hs;
                let jj = ni * hs + j % hs;
                match gate {
                    0 => i_g[jj] = sigmoid(acc),
                    1 => f_g[jj] = sigmoid(acc),
                    2 => g_g[jj] = acc.tanh(),
                    _ => o_g[jj] = sigmoid(acc),
                }
            }
        }
        (i_g, f_g, g_g, o_g)
    }
}

impl Layer for Lstm {
    fn forward(&mut self, input: &Tensor, _mode: Mode, _rng: &mut StdRng) -> Tensor {
        assert_eq!(input.ndim(), 3, "Lstm expects [N, T, D], got {:?}", input.shape());
        let (n, t, d) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        assert_eq!(d, self.input_size, "feature mismatch");
        let hs = self.hidden_size;
        self.batch = n;
        self.caches.clear();
        let mut h = vec![0.0f32; n * hs];
        let mut c = vec![0.0f32; n * hs];
        for ti in 0..t {
            let mut x = vec![0.0f32; n * d];
            for ni in 0..n {
                for k in 0..d {
                    x[ni * d + k] = input[(ni * t + ti) * d + k];
                }
            }
            let (i_g, f_g, g_g, o_g) = self.gates(&x, &h, n);
            let c_prev = c.clone();
            let h_prev = h.clone();
            let mut tanh_c = vec![0.0f32; n * hs];
            for jj in 0..n * hs {
                c[jj] = f_g[jj] * c_prev[jj] + i_g[jj] * g_g[jj];
                tanh_c[jj] = c[jj].tanh();
                h[jj] = o_g[jj] * tanh_c[jj];
            }
            self.caches.push(StepCache {
                x,
                h_prev,
                c_prev,
                i: i_g,
                f: f_g,
                g: g_g,
                o: o_g,
                tanh_c,
            });
        }
        Tensor::from_vec(h, &[n, hs])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(!self.caches.is_empty(), "backward before forward");
        let n = self.batch;
        let (d, hs) = (self.input_size, self.hidden_size);
        let cols = d + hs;
        let t = self.caches.len();
        assert_eq!(grad_out.shape(), &[n, hs], "grad shape mismatch");

        let mut dh: Vec<f32> = grad_out.as_slice().to_vec();
        let mut dc = vec![0.0f32; n * hs];
        let mut grad_in = Tensor::zeros(&[n, t, d]);

        for ti in (0..t).rev() {
            let cache = &self.caches[ti];
            // Per-gate pre-activation gradients.
            let mut d_pre = vec![0.0f32; n * 4 * hs]; // [N, 4H] layout: gate-major per sample
            let mut dh_prev = vec![0.0f32; n * hs];
            let mut dc_prev = vec![0.0f32; n * hs];
            for ni in 0..n {
                for j in 0..hs {
                    let jj = ni * hs + j;
                    let do_ = dh[jj] * cache.tanh_c[jj];
                    let dtanh = dh[jj] * cache.o[jj];
                    let dcj = dc[jj] + dtanh * (1.0 - cache.tanh_c[jj] * cache.tanh_c[jj]);
                    let di = dcj * cache.g[jj];
                    let df = dcj * cache.c_prev[jj];
                    let dg = dcj * cache.i[jj];
                    dc_prev[jj] = dcj * cache.f[jj];
                    // Sigmoid/tanh derivatives.
                    d_pre[ni * 4 * hs + j] = di * cache.i[jj] * (1.0 - cache.i[jj]);
                    d_pre[ni * 4 * hs + hs + j] = df * cache.f[jj] * (1.0 - cache.f[jj]);
                    d_pre[ni * 4 * hs + 2 * hs + j] = dg * (1.0 - cache.g[jj] * cache.g[jj]);
                    d_pre[ni * 4 * hs + 3 * hs + j] = do_ * cache.o[jj] * (1.0 - cache.o[jj]);
                }
            }
            // Accumulate parameter grads and input/hidden grads.
            for ni in 0..n {
                for j in 0..4 * hs {
                    let dp = d_pre[ni * 4 * hs + j];
                    if dp == 0.0 {
                        continue;
                    }
                    self.bias.grad[j] += dp;
                    let wrow_base = j * cols;
                    for k in 0..d {
                        self.weight.grad[wrow_base + k] += dp * cache.x[ni * d + k];
                        grad_in[(ni * t + ti) * d + k] += dp * self.weight.value[wrow_base + k];
                    }
                    for k in 0..hs {
                        self.weight.grad[wrow_base + d + k] += dp * cache.h_prev[ni * hs + k];
                        dh_prev[ni * hs + k] += dp * self.weight.value[wrow_base + d + k];
                    }
                }
            }
            dh = dh_prev;
            dc = dc_prev;
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        f("weight", &mut self.weight);
        f("bias", &mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Lstm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{grad_check_input, grad_check_params};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(61)
    }

    #[test]
    fn output_shape() {
        let mut r = rng();
        let mut lstm = Lstm::new(4, 6, &mut r);
        let x = Tensor::from_fn(&[3, 7, 4], |i| (i as f32 * 0.11).sin());
        let h = lstm.forward(&x, Mode::Eval, &mut r);
        assert_eq!(h.shape(), &[3, 6]);
        assert!(h.all_finite());
    }

    #[test]
    fn hidden_state_is_bounded() {
        let mut r = rng();
        let mut lstm = Lstm::new(2, 4, &mut r);
        let x = Tensor::from_fn(&[1, 20, 2], |i| (i as f32).sin() * 10.0);
        let h = lstm.forward(&x, Mode::Eval, &mut r);
        assert!(h.max() <= 1.0 && h.min() >= -1.0, "h = o·tanh(c) ∈ [−1, 1]");
    }

    #[test]
    fn grad_check_input_small() {
        let mut r = rng();
        let mut lstm = Lstm::new(2, 3, &mut r);
        let x = Tensor::from_fn(&[2, 3, 2], |i| (i as f32 * 0.37).sin() * 0.5);
        let err = grad_check_input(&mut lstm, &x, Mode::Eval, 1, 1e-2);
        assert!(err < 2e-2, "input grad error {err}");
    }

    #[test]
    fn grad_check_params_small() {
        let mut r = rng();
        let mut lstm = Lstm::new(2, 2, &mut r);
        let x = Tensor::from_fn(&[1, 3, 2], |i| (i as f32 * 0.53).cos() * 0.5);
        let err = grad_check_params(&mut lstm, &x, Mode::Eval, 1, 1e-2);
        assert!(err < 2e-2, "param grad error {err}");
    }

    #[test]
    fn longer_sequences_integrate_more_signal() {
        let mut r = rng();
        let mut lstm = Lstm::new(1, 4, &mut r);
        let short = Tensor::ones(&[1, 2, 1]);
        let long = Tensor::ones(&[1, 30, 1]);
        let h_short = lstm.forward(&short, Mode::Eval, &mut r);
        let h_long = lstm.forward(&long, Mode::Eval, &mut r);
        assert_ne!(h_short, h_long);
    }

    #[test]
    fn lstm_can_learn_mean_of_sequence() {
        use crate::loss::mse;
        let mut r = rng();
        let mut lstm = Lstm::new(1, 8, &mut r);
        let mut head = crate::linear::Linear::new(8, 1, &mut r);
        // Task: predict the mean of a length-5 sequence.
        let xs: Vec<Tensor> = (0..16)
            .map(|s| Tensor::from_fn(&[1, 5, 1], |i| (((s * 5 + i) * 37 % 19) as f32 / 9.5) - 1.0))
            .collect();
        let ys: Vec<f32> = xs.iter().map(|x| x.mean()).collect();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..150 {
            let mut total = 0.0;
            for (x, &y) in xs.iter().zip(&ys) {
                lstm.zero_grad();
                head.zero_grad();
                let h = lstm.forward(x, Mode::Train, &mut r);
                let pred = head.forward(&h, Mode::Train, &mut r);
                let target = Tensor::from_vec(vec![y], &[1, 1]);
                let (l, g) = mse(&pred, &target);
                total += l;
                let gh = head.backward(&g);
                let _ = lstm.backward(&gh);
                for layer in [&mut lstm as &mut dyn Layer, &mut head as &mut dyn Layer] {
                    layer.visit_params(&mut |_, p| {
                        let g = p.grad.clone();
                        p.value.axpy(-0.05, &g);
                    });
                }
            }
            first.get_or_insert(total);
            last = total;
        }
        assert!(last < 0.2 * first.unwrap(), "loss {last} vs initial {first:?}");
    }
}
