//! The [`Sequential`] container: an ordered stack of layers.

use crate::layer::{Layer, Mode, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// An ordered stack of layers trained and evaluated as one network.
///
/// # Examples
///
/// ```
/// use neuspin_nn::{Sequential, Linear, Relu, Mode, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut model = Sequential::new();
/// model.push(Linear::new(8, 16, &mut rng));
/// model.push(Relu::new());
/// model.push(Linear::new(16, 3, &mut rng));
///
/// let x = Tensor::ones(&[2, 8]);
/// let y = model.forward(&x, Mode::Eval, &mut rng);
/// assert_eq!(y.shape(), &[2, 3]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential[")?;
        for (i, l) in self.layers.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", l.name())?;
        }
        write!(f, "]")
    }
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Appends a boxed layer (for dynamically built models).
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Borrows layer `i`.
    pub fn layer(&self, i: usize) -> &dyn Layer {
        self.layers[i].as_ref()
    }

    /// Mutably borrows layer `i`.
    pub fn layer_mut(&mut self, i: usize) -> &mut (dyn Layer + 'static) {
        self.layers[i].as_mut()
    }

    /// Runs a forward pass through every layer.
    pub fn forward(&mut self, input: &Tensor, mode: Mode, rng: &mut StdRng) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode, rng);
        }
        x
    }

    /// Runs a backward pass (after a forward), returning ∂L/∂input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Visits every parameter of every layer with `"layer{i}.{name}"`
    /// keys.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.visit_params(&mut |name, p| {
                let key = format!("layer{i}.{name}");
                f(&key, p);
            });
        }
    }

    /// Zeroes every gradient.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total learnable scalar count.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |_, p| n += p.len());
        n
    }

    /// Sums the regularization losses of all layers (accumulating their
    /// gradients), e.g. the scale-dropout regularizer.
    pub fn reg_loss(&mut self, strength: f32) -> f32 {
        self.layers.iter_mut().map(|l| l.reg_loss(strength)).sum()
    }

    /// Exports all parameter values as `(key, flat data)` pairs — a
    /// framework-free state dict.
    pub fn state_dict(&mut self) -> Vec<(String, Vec<f32>)> {
        let mut out = Vec::new();
        self.visit_params(&mut |name, p| out.push((name.to_string(), p.value.as_slice().to_vec())));
        out
    }

    /// Loads parameter values exported by [`Sequential::state_dict`].
    ///
    /// # Panics
    ///
    /// Panics if keys or lengths do not match the current architecture.
    pub fn load_state_dict(&mut self, state: &[(String, Vec<f32>)]) {
        let mut idx = 0;
        self.visit_params(&mut |name, p| {
            assert!(idx < state.len(), "state dict too short");
            let (key, data) = &state[idx];
            assert_eq!(key, name, "state dict key mismatch at {idx}");
            assert_eq!(data.len(), p.value.len(), "state dict length mismatch for {name}");
            for (i, &v) in data.iter().enumerate() {
                p.value[i] = v;
            }
            idx += 1;
        });
        assert_eq!(idx, state.len(), "state dict has extra entries");
    }

    /// One-line architecture summary.
    pub fn summary(&mut self) -> String {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        format!("{} ({} params)", names.join(" → "), self.param_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::Relu;
    use crate::linear::Linear;
    use crate::loss::cross_entropy;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn mlp(r: &mut StdRng) -> Sequential {
        let mut m = Sequential::new();
        m.push(Linear::new(4, 8, r));
        m.push(Relu::new());
        m.push(Linear::new(8, 3, r));
        m
    }

    #[test]
    fn forward_backward_shapes() {
        let mut r = rng();
        let mut m = mlp(&mut r);
        let x = Tensor::ones(&[5, 4]);
        let y = m.forward(&x, Mode::Train, &mut r);
        assert_eq!(y.shape(), &[5, 3]);
        let (_, grad) = cross_entropy(&y, &[0, 1, 2, 0, 1]);
        let gx = m.backward(&grad);
        assert_eq!(gx.shape(), &[5, 4]);
    }

    #[test]
    fn param_count_and_keys() {
        let mut r = rng();
        let mut m = mlp(&mut r);
        assert_eq!(m.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
        let mut keys = Vec::new();
        m.visit_params(&mut |k, _| keys.push(k.to_string()));
        assert_eq!(keys, vec!["layer0.weight", "layer0.bias", "layer2.weight", "layer2.bias"]);
    }

    #[test]
    fn state_dict_roundtrip() {
        let mut r = rng();
        let mut m1 = mlp(&mut r);
        let mut m2 = mlp(&mut r); // different init
        let x = Tensor::from_fn(&[2, 4], |i| i as f32 * 0.1);
        let y1 = m1.forward(&x, Mode::Eval, &mut r);
        let y2_before = m2.forward(&x, Mode::Eval, &mut r);
        assert_ne!(y1, y2_before);
        let state = m1.state_dict();
        m2.load_state_dict(&state);
        let y2_after = m2.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y1, y2_after);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn load_rejects_wrong_shapes() {
        let mut r = rng();
        let mut m = mlp(&mut r);
        let mut state = m.state_dict();
        state[0].1.pop();
        m.load_state_dict(&state);
    }

    #[test]
    fn debug_and_summary() {
        let mut r = rng();
        let mut m = mlp(&mut r);
        assert_eq!(format!("{m:?}"), "Sequential[Linear, Relu, Linear]");
        assert!(m.summary().contains("Linear → Relu → Linear"));
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut r = rng();
        let mut m = mlp(&mut r);
        let x = Tensor::ones(&[2, 4]);
        let y = m.forward(&x, Mode::Train, &mut r);
        let (_, g) = cross_entropy(&y, &[0, 1]);
        m.backward(&g);
        let mut total: f32 = 0.0;
        m.visit_params(&mut |_, p| total += p.grad.norm_sq());
        assert!(total > 0.0);
        m.zero_grad();
        total = 0.0;
        m.visit_params(&mut |_, p| total += p.grad.norm_sq());
        assert_eq!(total, 0.0);
    }
}
