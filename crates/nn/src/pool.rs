//! Pooling and reshaping layers for NCHW tensors.

use crate::layer::{Layer, Mode};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

fn shape4(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(t.ndim(), 4, "expected NCHW tensor, got {:?}", t.shape());
    (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3])
}

/// Non-overlapping max pooling with a square window.
///
/// # Examples
///
/// ```
/// use neuspin_nn::{MaxPool2d, Layer, Mode, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut pool = MaxPool2d::new(2);
/// let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32);
/// let y = pool.forward(&x, Mode::Eval, &mut rng);
/// assert_eq!(y.shape(), &[1, 1, 2, 2]);
/// assert_eq!(y.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool with the given square window (also the stride).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self { window, argmax: vec![], in_shape: vec![] }
    }

    /// The pooling window size.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode, _rng: &mut StdRng) -> Tensor {
        let (n, c, h, w) = shape4(input);
        let k = self.window;
        assert!(h % k == 0 && w % k == 0, "input {h}x{w} not divisible by window {k}");
        let (oh, ow) = (h / k, w / k);
        self.in_shape = input.shape().to_vec();
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        self.argmax = vec![0; n * c * oh * ow];
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy * k + ky;
                                let ix = ox * k + kx;
                                let src = ((ni * c + ci) * h + iy) * w + ix;
                                if input[src] > best {
                                    best = input[src];
                                    best_idx = src;
                                }
                            }
                        }
                        let o = ((ni * c + ci) * oh + oy) * ow + ox;
                        out[o] = best;
                        self.argmax[o] = best_idx;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "backward before forward");
        let mut grad_in = Tensor::zeros(&self.in_shape);
        for (o, &src) in self.argmax.iter().enumerate() {
            grad_in[src] += grad_out[o];
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

/// Non-overlapping average pooling with a square window.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    window: usize,
    in_shape: Vec<usize>,
}

impl AvgPool2d {
    /// Creates an average pool with the given square window.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self { window, in_shape: vec![] }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode, _rng: &mut StdRng) -> Tensor {
        let (n, c, h, w) = shape4(input);
        let k = self.window;
        assert!(h % k == 0 && w % k == 0, "input {h}x{w} not divisible by window {k}");
        let (oh, ow) = (h / k, w / k);
        self.in_shape = input.shape().to_vec();
        let norm = 1.0 / (k * k) as f32;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut s = 0.0;
                        for ky in 0..k {
                            for kx in 0..k {
                                s += input[((ni * c + ci) * h + oy * k + ky) * w + ox * k + kx];
                            }
                        }
                        out[((ni * c + ci) * oh + oy) * ow + ox] = s * norm;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "backward before forward");
        let (n, c, h, w) = (self.in_shape[0], self.in_shape[1], self.in_shape[2], self.in_shape[3]);
        let k = self.window;
        let (oh, ow) = (h / k, w / k);
        let norm = 1.0 / (k * k) as f32;
        let mut grad_in = Tensor::zeros(&self.in_shape);
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_out[((ni * c + ci) * oh + oy) * ow + ox] * norm;
                        for ky in 0..k {
                            for kx in 0..k {
                                grad_in[((ni * c + ci) * h + oy * k + ky) * w + ox * k + kx] += g;
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "AvgPool2d"
    }
}

/// Flattens NCHW to `[N, C·H·W]` (identity gradient).
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _mode: Mode, _rng: &mut StdRng) -> Tensor {
        self.in_shape = input.shape().to_vec();
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        input.reshape(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.reshape(&self.in_shape)
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn maxpool_routes_gradient_to_argmax() {
        let mut r = rng();
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 3.0], &[1, 1, 2, 2]);
        let y = pool.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.as_slice(), &[5.0]);
        let g = pool.backward(&Tensor::ones(&[1, 1, 1, 1]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_spreads_gradient() {
        let mut r = rng();
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 6.0], &[1, 1, 2, 2]);
        let y = pool.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.as_slice(), &[3.0]);
        let g = pool.backward(&Tensor::ones(&[1, 1, 1, 1]));
        assert_eq!(g.as_slice(), &[0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut r = rng();
        let mut f = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let y = f.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.shape(), &[2, 12]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn maxpool_rejects_nondivisible() {
        let mut r = rng();
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::zeros(&[1, 1, 3, 3]);
        let _ = pool.forward(&x, Mode::Eval, &mut r);
    }

    #[test]
    fn pools_channelwise_independence() {
        let mut r = rng();
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_fn(&[1, 2, 2, 2], |i| if i < 4 { i as f32 } else { 100.0 + i as f32 });
        let y = pool.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.shape(), &[1, 2, 1, 1]);
        assert_eq!(y.as_slice(), &[3.0, 107.0]);
    }
}
