//! The layer abstraction: forward / backward passes over [`Tensor`]s.
//!
//! The framework is a classic define-by-layer stack (no tape autograd):
//! each [`Layer`] caches what it needs during `forward` and consumes the
//! incoming gradient in `backward`. This keeps the system small,
//! auditable, and fast enough for the laptop-scale models the NeuSpin
//! experiments use.

use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Execution mode of a forward pass.
///
/// * `Train` — gradients will be requested; stochastic layers (dropout
///   variants) are active; normalization layers use batch statistics.
/// * `Eval` — deterministic inference; stochastic layers are identity;
///   normalization layers use running statistics.
/// * `Sample` — *Bayesian* inference: stochastic layers stay active
///   (this is what makes MC-dropout a posterior sampler) while
///   normalization layers use running statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Training pass (stochastic + batch statistics).
    Train,
    /// Deterministic inference.
    #[default]
    Eval,
    /// Monte-Carlo Bayesian inference (stochastic + running statistics).
    Sample,
}

impl Mode {
    /// Whether stochastic (dropout-family) layers should be active.
    pub fn stochastic(self) -> bool {
        matches!(self, Mode::Train | Mode::Sample)
    }

    /// Whether normalization layers should use batch statistics.
    pub fn batch_stats(self) -> bool {
        matches!(self, Mode::Train)
    }
}

/// A learnable parameter: value and accumulated gradient.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the last backward pass.
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad }
    }

    /// Zeroes the gradient.
    pub fn zero_grad(&mut self) {
        self.grad.map_in_place(|_| 0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches activations, `backward` uses
/// them and must be called after the corresponding `forward`. Gradients
/// *accumulate* into [`Param::grad`]; call [`Layer::zero_grad`] between
/// optimizer steps.
pub trait Layer {
    /// Computes the layer output. `rng` drives any stochastic behaviour
    /// (dropout masks, reparameterization noise).
    fn forward(&mut self, input: &Tensor, mode: Mode, rng: &mut StdRng) -> Tensor;

    /// Propagates `grad_out` (∂L/∂output) backwards, accumulating
    /// parameter gradients and returning ∂L/∂input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every learnable parameter (stable order).
    fn visit_params(&mut self, _f: &mut dyn FnMut(&str, &mut Param)) {}

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, p| p.zero_grad());
    }

    /// Human-readable layer kind (for summaries).
    fn name(&self) -> &'static str;

    /// Total number of learnable scalars.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |_, p| n += p.len());
        n
    }

    /// Additional regularization loss contributed by this layer (e.g.
    /// the scale-dropout "centred at one" regularizer, or a VI KL term),
    /// with gradients accumulated into the relevant params. Default: 0.
    fn reg_loss(&mut self, _strength: f32) -> f32 {
        0.0
    }
}

/// Numerically checks `d loss / d input` of a layer against finite
/// differences, where `loss = Σ output²/2` (so ∂L/∂output = output).
///
/// Returns the maximum absolute error across all probed inputs.
/// Available for tests of this crate and downstream crates.
pub fn grad_check_input<L: Layer>(
    layer: &mut L,
    input: &Tensor,
    mode: Mode,
    rng_seed: u64,
    eps: f32,
) -> f32 {
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let out = layer.forward(input, mode, &mut rng);
    let analytic = layer.backward(&out.clone());
    let mut max_err = 0.0f32;
    for i in 0..input.len() {
        let mut plus = input.clone();
        plus[i] += eps;
        let mut minus = input.clone();
        minus[i] -= eps;
        // Re-seed so stochastic layers reproduce the same masks.
        let mut r1 = StdRng::seed_from_u64(rng_seed);
        let o1 = layer.forward(&plus, mode, &mut r1);
        let mut r2 = StdRng::seed_from_u64(rng_seed);
        let o2 = layer.forward(&minus, mode, &mut r2);
        let l1 = 0.5 * o1.norm_sq();
        let l2 = 0.5 * o2.norm_sq();
        let numeric = (l1 - l2) / (2.0 * eps);
        let err = (numeric - analytic[i]).abs();
        max_err = max_err.max(err);
    }
    max_err
}

/// Numerically checks parameter gradients of a layer (same loss as
/// [`grad_check_input`]). Returns the maximum absolute error.
pub fn grad_check_params<L: Layer>(
    layer: &mut L,
    input: &Tensor,
    mode: Mode,
    rng_seed: u64,
    eps: f32,
) -> f32 {
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(rng_seed);
    layer.zero_grad();
    let out = layer.forward(input, mode, &mut rng);
    let _ = layer.backward(&out.clone());

    // Snapshot analytic gradients.
    let mut analytic: Vec<(String, Tensor)> = Vec::new();
    layer.visit_params(&mut |name, p| analytic.push((name.to_string(), p.grad.clone())));

    let mut max_err = 0.0f32;
    for (pi, (_, grad)) in analytic.iter().enumerate() {
        for ei in 0..grad.len() {
            let perturb = |layer: &mut L, delta: f32| {
                let mut idx = 0;
                layer.visit_params(&mut |_, p| {
                    if idx == pi {
                        p.value[ei] += delta;
                    }
                    idx += 1;
                });
            };
            perturb(layer, eps);
            let mut r1 = StdRng::seed_from_u64(rng_seed);
            let l1 = 0.5 * layer.forward(input, mode, &mut r1).norm_sq();
            perturb(layer, -2.0 * eps);
            let mut r2 = StdRng::seed_from_u64(rng_seed);
            let l2 = 0.5 * layer.forward(input, mode, &mut r2).norm_sq();
            perturb(layer, eps);
            let numeric = (l1 - l2) / (2.0 * eps);
            let err = (numeric - grad[ei]).abs();
            max_err = max_err.max(err);
        }
    }
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_semantics() {
        assert!(Mode::Train.stochastic());
        assert!(Mode::Sample.stochastic());
        assert!(!Mode::Eval.stochastic());
        assert!(Mode::Train.batch_stats());
        assert!(!Mode::Sample.batch_stats());
        assert!(!Mode::Eval.batch_stats());
    }

    #[test]
    fn param_zero_grad() {
        let mut p = Param::new(Tensor::ones(&[3]));
        p.grad = Tensor::ones(&[3]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 3);
    }
}
