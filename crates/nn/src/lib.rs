//! # neuspin-nn — from-scratch neural network framework
//!
//! A compact tensor + layer/backprop framework providing everything the
//! NeuSpin training stack needs: dense/convolutional layers (real and
//! binary with straight-through estimators), the paper's normalization
//! and dropout innovations, an LSTM, losses, and optimizers.
//!
//! The NeuSpin-specific layers map one-to-one onto paper sections:
//!
//! * [`Dropout`] — per-neuron dropout → SpinDrop (§III-A1)
//! * [`SpatialDropout`] — per-feature-map → Spatial-SpinDrop (§III-A2)
//! * [`ScaleDrop`] — learnable scale vector, one RNG/layer →
//!   SpinScaleDrop (§III-A3)
//! * [`InvertedNorm`] — inverted normalization with affine dropout
//!   (§III-A4, the self-healing layer)
//! * [`BinaryLinear`] / [`BinaryConv2d`] — XNOR-style binary layers,
//!   the form that maps onto MTJ crossbars
//!
//! ## Example
//!
//! ```
//! use neuspin_nn::{Sequential, BinaryLinear, SignSte, Linear, Mode, Tensor};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut model = Sequential::new();
//! model.push(BinaryLinear::new(16, 32, &mut rng));
//! model.push(SignSte::new());
//! model.push(Linear::new(32, 4, &mut rng));
//!
//! let x = Tensor::ones(&[1, 16]);
//! let logits = model.forward(&x, Mode::Eval, &mut rng);
//! assert_eq!(logits.shape(), &[1, 4]);
//! ```

pub mod act;
pub mod conv;
pub mod dropout;
pub mod init;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod lstm;
pub mod model;
pub mod norm;
pub mod optim;
pub mod pool;
pub mod tensor;
pub mod train;

pub use act::{HardTanh, Relu, SignSte};
pub use conv::{col2im, im2col, im2col_into, BinaryConv2d, Conv2d, ConvGeometry};
pub use dropout::{Dropout, ScaleDrop, SpatialDropout};
pub use layer::{grad_check_input, grad_check_params, Layer, Mode, Param};
pub use linear::{BinaryLinear, DropConnectLinear, Linear};
pub use loss::{cross_entropy, mse, nll, softmax, softmax_into};
pub use lstm::Lstm;
pub use model::Sequential;
pub use norm::{BatchNorm, InvertedNorm};
pub use optim::{Adam, Optimizer, Sgd};
pub use pool::{AvgPool2d, Flatten, MaxPool2d};
pub use tensor::Tensor;
pub use train::{evaluate, fit, refresh_norm_stats, shuffled_indices, Dataset, EpochStats, TrainConfig};
