//! Property-based invariants of the tensor / layer framework.
//!
//! Formerly `proptest!` suites; now deterministic seeded loops over the
//! vendored RNG. Every case's generator is derived from `BASE`, the
//! property's id, and the case index, so any failure names the exact
//! seed that reproduces it.

use neuspin_nn::{
    cross_entropy, im2col, mse, softmax, BinaryLinear, ConvGeometry, Layer, Linear, Mode, Relu,
    Tensor,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Fixed base so the whole suite replays bit-identically.
const BASE: u64 = 0x7E25_0003;

/// Sampled cases per property.
const CASES: u64 = 96;

fn case_seed(property: u64, case: u64) -> u64 {
    BASE ^ property.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case.rotate_left(17)
}

fn case_rng(property: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(case_seed(property, case))
}

/// Mirrors the old proptest `small_tensor` strategy: entries in [-5, 5).
fn small_tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let v: Vec<f32> = (0..rows * cols).map(|_| rng.random_range(-5.0f32..5.0)).collect();
    Tensor::from_vec(v, &[rows, cols])
}

#[test]
fn matmul_respects_identity() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let t = small_tensor(&mut rng, 4, 4);
        let eye = Tensor::from_fn(&[4, 4], |i| if i / 4 == i % 4 { 1.0 } else { 0.0 });
        let out = t.matmul(&eye);
        for (a, b) in out.as_slice().iter().zip(t.as_slice()) {
            assert!((a - b).abs() < 1e-5, "seed {:#x}", case_seed(1, case));
        }
    }
}

#[test]
fn transpose_is_involution() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let t = small_tensor(&mut rng, 3, 5);
        assert_eq!(t.transpose().transpose(), t, "seed {:#x}", case_seed(2, case));
    }
}

#[test]
fn matmul_transpose_identity() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let a = small_tensor(&mut rng, 3, 4);
        let b = small_tensor(&mut rng, 4, 2);
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        let diff = (&lhs - &rhs).map(f32::abs).max();
        assert!(diff < 1e-4, "seed {:#x}: diff {diff}", case_seed(3, case));
    }
}

#[test]
fn softmax_preserves_argmax() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let t = small_tensor(&mut rng, 2, 6);
        let p = softmax(&t);
        assert_eq!(p.argmax_rows(), t.argmax_rows(), "seed {:#x}", case_seed(4, case));
    }
}

#[test]
fn cross_entropy_is_nonnegative() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let t = small_tensor(&mut rng, 3, 4);
        let labels: Vec<usize> = (0..3).map(|_| rng.random_range(0usize..4)).collect();
        let (loss, grad) = cross_entropy(&t, &labels);
        let seed = case_seed(5, case);
        assert!(loss >= 0.0, "seed {seed:#x}: loss {loss}");
        assert!(grad.all_finite(), "seed {seed:#x}");
        // Gradient rows sum to ~0 (softmax simplex tangent).
        for i in 0..3 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-5, "seed {seed:#x}: row {i} sums to {s}");
        }
    }
}

#[test]
fn mse_zero_iff_equal() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let t = small_tensor(&mut rng, 2, 3);
        let (loss, grad) = mse(&t, &t);
        let seed = case_seed(6, case);
        assert_eq!(loss, 0.0, "seed {seed:#x}");
        assert_eq!(grad.sum(), 0.0, "seed {seed:#x}");
    }
}

#[test]
fn linear_layer_is_affine() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let scale = rng.random_range(0.25f32..4.0);
        // f(s·x) − f(0) == s·(f(x) − f(0)).
        let mut layer = Linear::new(5, 3, &mut rng);
        let x = Tensor::from_fn(&[1, 5], |i| ((i as f32) - 2.0) / 2.0);
        let zero = Tensor::zeros(&[1, 5]);
        let f0 = layer.forward(&zero, Mode::Eval, &mut rng);
        let fx = layer.forward(&x, Mode::Eval, &mut rng);
        let xs = &x * scale;
        let fsx = layer.forward(&xs, Mode::Eval, &mut rng);
        for j in 0..3 {
            let lhs = fsx[j] - f0[j];
            let rhs = scale * (fx[j] - f0[j]);
            assert!(
                (lhs - rhs).abs() < 1e-3,
                "seed {:#x}: {lhs} vs {rhs}",
                case_seed(7, case)
            );
        }
    }
}

#[test]
fn binary_linear_outputs_bounded_by_alpha_sum() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        // |y_j − b_j| ≤ α_j · Σ|x| for binarized weights.
        let mut layer = BinaryLinear::new(6, 2, &mut rng);
        let x = Tensor::from_fn(&[1, 6], |i| ((i * 7 % 5) as f32 - 2.0) / 2.0);
        let y = layer.forward(&x, Mode::Eval, &mut rng);
        let alphas = layer.scales();
        let l1: f32 = x.as_slice().iter().map(|v| v.abs()).sum();
        for j in 0..2 {
            let bound = alphas[j] * l1 + layer.bias()[j].abs() + 1e-4;
            assert!(
                y[j].abs() <= bound,
                "seed {:#x}: {} > {}",
                case_seed(8, case),
                y[j].abs(),
                bound
            );
        }
    }
}

#[test]
fn relu_is_idempotent() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        let t = small_tensor(&mut rng, 2, 8);
        let mut relu = Relu::new();
        let once = relu.forward(&t, Mode::Eval, &mut rng);
        let twice = relu.forward(&once, Mode::Eval, &mut rng);
        assert_eq!(once, twice, "seed {:#x}", case_seed(9, case));
    }
}

#[test]
fn im2col_preserves_total_energy_1x1() {
    for case in 0..CASES {
        // A 1×1 kernel im2col is a permutation: same multiset of values.
        let x = Tensor::from_fn(&[1, 3, 4, 4], |i| ((i as u64 * 37 + case) % 101) as f32);
        let geo =
            ConvGeometry { in_channels: 3, out_channels: 1, kernel: 1, stride: 1, padding: 0 };
        let col = im2col(&x, &geo);
        let mut a: Vec<i64> = x.as_slice().iter().map(|v| *v as i64).collect();
        let mut b: Vec<i64> = col.as_slice().iter().map(|v| *v as i64).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "case {case}");
    }
}
