//! Property-based invariants of the tensor / layer framework.

use neuspin_nn::{
    cross_entropy, im2col, mse, softmax, BinaryLinear, ConvGeometry, Layer, Linear, Mode, Relu,
    Tensor,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-5.0f32..5.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]))
}

proptest! {
    #[test]
    fn matmul_respects_identity(t in small_tensor(4, 4)) {
        let eye = Tensor::from_fn(&[4, 4], |i| if i / 4 == i % 4 { 1.0 } else { 0.0 });
        let out = t.matmul(&eye);
        for (a, b) in out.as_slice().iter().zip(t.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_is_involution(t in small_tensor(3, 5)) {
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn matmul_transpose_identity(a in small_tensor(3, 4), b in small_tensor(4, 2)) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        let diff = (&lhs - &rhs).map(f32::abs).max();
        prop_assert!(diff < 1e-4);
    }

    #[test]
    fn softmax_preserves_argmax(t in small_tensor(2, 6)) {
        let p = softmax(&t);
        prop_assert_eq!(p.argmax_rows(), t.argmax_rows());
    }

    #[test]
    fn cross_entropy_is_nonnegative(t in small_tensor(3, 4), labels in proptest::collection::vec(0usize..4, 3)) {
        let (loss, grad) = cross_entropy(&t, &labels);
        prop_assert!(loss >= 0.0);
        prop_assert!(grad.all_finite());
        // Gradient rows sum to ~0 (softmax simplex tangent).
        for i in 0..3 {
            let s: f32 = grad.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn mse_zero_iff_equal(t in small_tensor(2, 3)) {
        let (loss, grad) = mse(&t, &t);
        prop_assert_eq!(loss, 0.0);
        prop_assert_eq!(grad.sum(), 0.0);
    }

    #[test]
    fn linear_layer_is_affine(seed in 0u64..200, scale in 0.25f32..4.0) {
        // f(s·x) − f(0) == s·(f(x) − f(0)).
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Linear::new(5, 3, &mut rng);
        let x = Tensor::from_fn(&[1, 5], |i| ((i as f32) - 2.0) / 2.0);
        let zero = Tensor::zeros(&[1, 5]);
        let f0 = layer.forward(&zero, Mode::Eval, &mut rng);
        let fx = layer.forward(&x, Mode::Eval, &mut rng);
        let xs = &x * scale;
        let fsx = layer.forward(&xs, Mode::Eval, &mut rng);
        for j in 0..3 {
            let lhs = fsx[j] - f0[j];
            let rhs = scale * (fx[j] - f0[j]);
            prop_assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn binary_linear_outputs_bounded_by_alpha_sum(seed in 0u64..200) {
        // |y_j − b_j| ≤ α_j · Σ|x| for binarized weights.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = BinaryLinear::new(6, 2, &mut rng);
        let x = Tensor::from_fn(&[1, 6], |i| ((i * 7 % 5) as f32 - 2.0) / 2.0);
        let y = layer.forward(&x, Mode::Eval, &mut rng);
        let alphas = layer.scales();
        let l1: f32 = x.as_slice().iter().map(|v| v.abs()).sum();
        for j in 0..2 {
            let bound = alphas[j] * l1 + layer.bias()[j].abs() + 1e-4;
            prop_assert!(y[j].abs() <= bound, "{} > {}", y[j].abs(), bound);
        }
    }

    #[test]
    fn relu_is_idempotent(t in small_tensor(2, 8)) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut relu = Relu::new();
        let once = relu.forward(&t, Mode::Eval, &mut rng);
        let twice = relu.forward(&once, Mode::Eval, &mut rng);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn im2col_preserves_total_energy_1x1(seed in 0u64..100) {
        // A 1×1 kernel im2col is a permutation: same multiset of values.
        let x = Tensor::from_fn(&[1, 3, 4, 4], |i| ((i as u64 * 37 + seed) % 101) as f32);
        let geo = ConvGeometry { in_channels: 3, out_channels: 1, kernel: 1, stride: 1, padding: 0 };
        let col = im2col(&x, &geo);
        let mut a: Vec<i64> = x.as_slice().iter().map(|v| *v as i64).collect();
        let mut b: Vec<i64> = col.as_slice().iter().map(|v| *v as i64).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
