//! # `rand` — the workspace's vendored deterministic RNG subsystem
//!
//! This crate is **not** the crates.io `rand`: it is a small,
//! dependency-free, bit-reproducible pseudo-random subsystem owned by
//! the NeuSpin workspace, published under the same name so that the
//! `use rand::...` call sites across all eight crates work unchanged.
//!
//! Why vendor it? Every stochastic mechanism in the paper reproduction
//! — SpinDrop's MTJ dropout sampling, Scale-Dropout's stochastic scale
//! vectors, device variation draws, Monte-Carlo passes — is derived
//! from seeded PRNG streams, and the experiment suite asserts
//! *bit-identical* replay from a seed. Owning the generator outright
//! means:
//!
//! * **zero external dependencies** — the workspace builds offline;
//! * **a pinned stream** — upstream `rand` explicitly reserves the
//!   right to change `StdRng`'s algorithm between versions, which would
//!   silently invalidate every golden number in `EXPERIMENTS.md`;
//! * **a predictable draw count** — samplers document exactly how many
//!   words they consume, so stream positions can be reasoned about.
//!
//! ## Algorithms
//!
//! * [`SplitMix64`] expands a single `u64` seed into full generator
//!   state (and is itself a valid, if small, generator).
//! * [`Xoshiro256PlusPlus`] (xoshiro256++) is the workhorse behind
//!   [`rngs::StdRng`]: 256-bit state, period 2²⁵⁶ − 1, passes BigCrush,
//!   ~0.8 ns/word. Verified against the upstream `rand_xoshiro`
//!   reference vector in this crate's tests.
//! * [`dist`] layers uniform / Gaussian (Box–Muller) / lognormal /
//!   Bernoulli sampling on top.
//!
//! ## API surface
//!
//! The shim intentionally mirrors the subset of the real `rand` API the
//! workspace uses: [`SeedableRng::seed_from_u64`], [`Rng`] as the core
//! word source, and [`RngExt`] for typed draws
//! ([`random`](RngExt::random), [`random_range`](RngExt::random_range),
//! [`random_bool`](RngExt::random_bool)).

pub mod dist;
pub mod rng;

pub use rng::{
    uniform_u64_below, Random, Rng, RngExt, SampleRange, SeedableRng, SplitMix64,
    Xoshiro256PlusPlus,
};

/// Named generators (mirrors the upstream `rand::rngs` module path).
pub mod rngs {
    pub use crate::rng::{SplitMix64, StdRng, Xoshiro256PlusPlus};
}
