//! Self-contained probability distributions.
//!
//! Uniform, Gaussian (Box–Muller), lognormal, and Bernoulli sampling on
//! top of the [`Rng`] trait. These are *the* implementations for the
//! whole workspace — `neuspin-device`'s `stats` module re-exports them —
//! so every stochastic mechanism in the NeuSpin reproduction draws from
//! one pinned, bit-reproducible sampling path.

use crate::rng::{Random, Rng, RngExt, SampleRange};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

    /// Draws `n` values into a vector.
    fn sample_n<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<T> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// The standard distribution of `T` (what [`RngExt::random`] draws).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Standard;

impl<T: Random> Distribution<T> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        rng.random()
    }
}

/// A uniform distribution over a half-open range `[low, high)`.
///
/// # Examples
///
/// ```
/// use rand::dist::{Distribution, Uniform};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(4);
/// let d = Uniform::new(10.0, 20.0);
/// let x = d.sample(&mut rng);
/// assert!((10.0..20.0).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: Copy + PartialOrd> Uniform<T> {
    /// Creates a uniform distribution over `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform requires low < high");
        Self { low, high }
    }

    /// Lower bound (inclusive).
    pub fn low(&self) -> T {
        self.low
    }

    /// Upper bound (exclusive).
    pub fn high(&self) -> T {
        self.high
    }
}

impl<T> Distribution<T> for Uniform<T>
where
    T: Copy,
    core::ops::Range<T>: SampleRange<T>,
{
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        rng.random_range(self.low..self.high)
    }
}

/// Draws a standard-normal variate via Box–Muller.
///
/// Consumes exactly **two** uniform draws per call, which keeps the RNG
/// stream position predictable — a property the determinism tests rely
/// on. Hot loops that draw Gaussians by the tens of thousands and do
/// not need the fixed-consumption contract should use
/// [`ziggurat_normal`] instead (~6× cheaper per draw).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard the log against u1 == 0.
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Number of ziggurat strips (the classic 128-strip table).
const ZIG_N: usize = 128;
/// Right edge of the base strip — the start of the analytic tail.
const ZIG_R: f64 = 3.442_619_855_899;
/// Area of each strip (base rectangle + tail for strip 0).
const ZIG_V: f64 = 9.912_563_035_262_17e-3;

/// Precomputed ziggurat tables: strip widths, inner fast-accept
/// thresholds, and pdf values at each strip's right edge.
struct ZigTables {
    /// `w[i]`: right edge of strip `i`. Strip 0 is the base (virtual
    /// width `V / f(R)` so the fast-accept test stays uniform); strips
    /// 127 down to 1 stack upward with decreasing widths.
    w: [f64; ZIG_N],
    /// `inner[i]`: accept `x = u·w[i]` immediately when `x < inner[i]`
    /// (the point falls under the strip above, so certainly under the
    /// pdf). `inner[1] = 0` — the top strip always takes the wedge test.
    inner: [f64; ZIG_N],
    /// `f[i] = exp(-w[i]²/2)`, with `f[0] = 1` standing in for the pdf
    /// at the top strip's upper edge (`f(0)`).
    f: [f64; ZIG_N],
}

fn zig_tables() -> &'static ZigTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let pdf = |x: f64| (-0.5 * x * x).exp();
        let mut w = [0.0f64; ZIG_N];
        w[0] = ZIG_V / pdf(ZIG_R); // virtual base width (> R)
        w[ZIG_N - 1] = ZIG_R;
        // Walk upward: each strip's right edge satisfies
        // f(x_next) = f(x) + V / x (equal strip areas).
        for i in (1..ZIG_N - 1).rev() {
            let fi = pdf(w[i + 1]) + ZIG_V / w[i + 1];
            w[i] = (-2.0 * fi.ln()).sqrt();
        }
        let mut f = [0.0f64; ZIG_N];
        f[0] = 1.0; // pdf at the top strip's upper edge, f(0)
        for i in 1..ZIG_N {
            f[i] = pdf(w[i]);
        }
        let mut inner = [0.0f64; ZIG_N];
        inner[0] = ZIG_R; // base rectangle ends where the tail starts
        inner[2..ZIG_N].copy_from_slice(&w[1..(ZIG_N - 1)]);
        ZigTables { w, inner, f }
    })
}

/// Draws a standard-normal variate via the 128-strip ziggurat method.
///
/// This is the *fast* Gaussian: ~98 % of draws cost one `next_u64`, a
/// table lookup, a multiply, and a compare — no transcendentals — which
/// is why the crossbar read-noise hot path uses it (tens of thousands
/// of draws per Monte-Carlo pass). The price is a **data-dependent
/// number of uniform draws** per sample, so it must never replace
/// [`standard_normal`] where the two-draw stream contract matters
/// (device programming, aging, anything replayed by draw counting).
/// Kernels compared for bit-identity stay aligned automatically: they
/// share one RNG stream and call the sampler at the same points, so
/// they consume identical word counts.
pub fn ziggurat_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let t = zig_tables();
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0x7F) as usize; // strip index: low 7 bits
        let sign = if bits & 0x80 == 0 { 1.0 } else { -1.0 }; // bit 7
        let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64); // top 53 bits
        let x = u * t.w[i];
        if x < t.inner[i] {
            return sign * x; // under the strip above: certainly under the pdf
        }
        if i == 0 {
            // Tail beyond R: Marsaglia's exponential rejection.
            loop {
                let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let xt = -u1.ln() / ZIG_R;
                let yt = -u2.ln();
                if yt + yt >= xt * xt {
                    return sign * (ZIG_R + xt);
                }
            }
        }
        // Wedge: uniform height within the strip, accept under the pdf.
        let u2: f64 = rng.random();
        if t.f[i] + u2 * (t.f[i - 1] - t.f[i]) < (-0.5 * x * x).exp() {
            return sign * x;
        }
    }
}

/// A Gaussian (normal) distribution `N(mean, std²)`.
///
/// # Examples
///
/// ```
/// use rand::dist::Gaussian;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let g = Gaussian::new(1.0, 0.1);
/// let mut rng = StdRng::seed_from_u64(1);
/// let x = g.sample(&mut rng);
/// assert!((x - 1.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    std: f64,
}

impl Gaussian {
    /// Creates a Gaussian with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or not finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std.is_finite() && std >= 0.0, "std must be finite and >= 0, got {std}");
        Self { mean, std }
    }

    /// The standard normal distribution `N(0, 1)`.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Returns the mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Returns the standard deviation of the distribution.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Draws one sample (two uniform draws, always).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * standard_normal(rng)
    }
}

impl Default for Gaussian {
    fn default() -> Self {
        Self::standard()
    }
}

impl Distribution<f64> for Gaussian {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Gaussian::sample(self, rng)
    }
}

/// A lognormal distribution: `exp(N(mu, sigma²))`.
///
/// Used for device-to-device resistance and thermal-stability variation,
/// which are multiplicative in nature (a device is "x % off nominal").
///
/// # Examples
///
/// ```
/// use rand::dist::LogNormal;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// // Median 5 kΩ, 10 % relative sigma.
/// let d = LogNormal::from_median_sigma(5_000.0, 0.10);
/// let mut rng = StdRng::seed_from_u64(2);
/// let r = d.sample(&mut rng);
/// assert!(r > 2_000.0 && r < 12_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal from the parameters of the underlying normal.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be finite and >= 0, got {sigma}");
        Self { mu, sigma }
    }

    /// Creates a lognormal whose *median* is `median` and whose
    /// log-domain standard deviation is `sigma` (≈ relative spread for
    /// small `sigma`).
    ///
    /// # Panics
    ///
    /// Panics if `median <= 0` or `sigma < 0`.
    pub fn from_median_sigma(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive, got {median}");
        Self::new(median.ln(), sigma)
    }

    /// Returns the median (`exp(mu)`).
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Returns the log-domain sigma.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one sample (always strictly positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        LogNormal::sample(self, rng)
    }
}

/// A Bernoulli distribution over `{true, false}`.
///
/// # Examples
///
/// ```
/// use rand::dist::Bernoulli;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let b = Bernoulli::new(0.25);
/// let mut rng = StdRng::seed_from_u64(3);
/// let _bit: bool = b.sample(&mut rng);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or not finite.
    pub fn new(p: f64) -> Self {
        assert!(p.is_finite() && (0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        Self { p }
    }

    /// Returns the success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws one sample (one uniform draw, always).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.random::<f64>() < self.p
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        Bernoulli::sample(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SeedableRng, StdRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEAD_BEEF)
    }

    #[test]
    fn gaussian_consumes_exactly_two_draws() {
        let g = Gaussian::standard();
        let mut a = rng();
        let mut b = rng();
        let _ = g.sample(&mut a);
        b.next_u64();
        b.next_u64();
        assert_eq!(a, b, "Gaussian::sample must advance the stream by exactly 2 words");
    }

    #[test]
    fn ziggurat_tables_close_at_the_top() {
        // The equal-area recurrence must terminate with a top strip of
        // area V: w[1] · (f(0) − f(w[1])) ≈ V, and widths must decrease
        // strictly from the base upward.
        let t = super::zig_tables();
        let top_area = t.w[1] * (1.0 - (-0.5 * t.w[1] * t.w[1]).exp());
        assert!(
            (top_area / ZIG_V - 1.0).abs() < 1e-6,
            "top strip area {top_area} vs V {ZIG_V}"
        );
        for i in 2..ZIG_N - 1 {
            assert!(t.w[i] < t.w[i + 1], "widths must decrease upward at {i}");
        }
        assert!(t.w[0] > ZIG_R, "virtual base width must exceed R");
    }

    #[test]
    fn ziggurat_moments_and_tails_match_normal() {
        let mut r = rng();
        let n = 200_000;
        let mut mean = 0.0;
        let mut m2 = 0.0;
        let mut beyond_2 = 0usize;
        let mut beyond_r = 0usize;
        for k in 0..n {
            let z = ziggurat_normal(&mut r);
            let delta = z - mean;
            mean += delta / (k + 1) as f64;
            m2 += delta * (z - mean);
            if z.abs() > 2.0 {
                beyond_2 += 1;
            }
            if z.abs() > ZIG_R {
                beyond_r += 1;
            }
        }
        let std = (m2 / (n - 1) as f64).sqrt();
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((std - 1.0).abs() < 0.01, "std {std}");
        // P(|Z| > 2) ≈ 0.0455.
        let p2 = beyond_2 as f64 / n as f64;
        assert!((p2 - 0.0455).abs() < 0.004, "P(|Z|>2) = {p2}");
        // The analytic tail must actually fire: P(|Z| > R) ≈ 5.8e-4.
        assert!(beyond_r > 20, "tail path never taken ({beyond_r} hits)");
    }

    #[test]
    fn ziggurat_is_deterministic_per_seed() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..1_000 {
            assert_eq!(
                ziggurat_normal(&mut a).to_bits(),
                ziggurat_normal(&mut b).to_bits()
            );
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = rng();
        let d = Uniform::new(-2.0f64, 3.0);
        for _ in 0..5_000 {
            let x = d.sample(&mut r);
            assert!((-2.0..3.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn uniform_integer_covers_domain() {
        let mut r = rng();
        let d = Uniform::new(0usize, 4);
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[d.sample(&mut r)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn uniform_rejects_empty() {
        let _ = Uniform::new(1.0f64, 1.0);
    }

    #[test]
    fn distribution_trait_objects_compose() {
        let mut r = rng();
        let samples = Gaussian::new(2.0, 0.5).sample_n(32, &mut r);
        assert_eq!(samples.len(), 32);
        assert!(samples.iter().all(|x| x.is_finite()));
    }
}
