//! Generators and the `Rng`/`RngExt`/`SeedableRng` trait surface.
//!
//! Two algorithms, both public-domain reference designs by Blackman &
//! Vigna (<https://prng.di.unimi.it/>):
//!
//! * [`SplitMix64`] — a 64-bit state-increment generator used purely as
//!   a seed expander. It is guaranteed never to emit the same value for
//!   two different seeds within one stream, which makes it the standard
//!   way to fill a larger generator's state from one `u64` seed.
//! * [`Xoshiro256PlusPlus`] — the workspace's workhorse generator
//!   (period 2²⁵⁶ − 1, passes BigCrush). [`StdRng`] is a thin wrapper
//!   around it so the workspace's `StdRng::seed_from_u64(seed)` call
//!   sites pin an algorithm *we* own: the stream for any seed is fixed
//!   forever, independent of upstream crate or toolchain versions.

/// The SplitMix64 seed expander.
///
/// # Examples
///
/// ```
/// use rand::SplitMix64;
///
/// let mut sm = SplitMix64::new(0);
/// assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates an expander starting from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produces the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// The xoshiro256++ generator (Blackman & Vigna, 2019).
///
/// 256 bits of state, period 2²⁵⁶ − 1; the `++` output scrambler makes
/// all 64 output bits full-quality (unlike `+`, whose low bits are an
/// LFSR). The all-zero state is the one fixed point of the transition
/// and is remapped at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Builds a generator directly from four state words.
    ///
    /// An all-zero state (the degenerate fixed point) is replaced by the
    /// SplitMix64 expansion of 0, matching [`SeedableRng::seed_from_u64`].
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return <Self as SeedableRng>::seed_from_u64(0);
        }
        Self { s }
    }

    /// The raw state words (for serialization / inspection).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Produces the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Advances the state by 2¹²⁸ steps in O(1), yielding a stream that
    /// will not overlap the original for 2¹²⁸ draws — the standard way
    /// to carve independent parallel substreams out of one seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut s = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = s;
    }
}

impl Rng for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        Xoshiro256PlusPlus::next_u64(self)
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        if s == [0; 4] {
            // Degenerate fixed point: expand instead, as seed_from_u64(0)
            // would.
            let mut sm = SplitMix64::new(0);
            for word in &mut s {
                *word = sm.next_u64();
            }
        }
        Self { s }
    }
}

/// The workspace's default deterministic generator.
///
/// A wrapper around [`Xoshiro256PlusPlus`] under the name every call
/// site already uses. Unlike upstream `rand`, the algorithm behind this
/// alias is **pinned**: `StdRng::seed_from_u64(s)` yields the same
/// stream on every platform, forever.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::{RngExt, SeedableRng};
///
/// let mut a = StdRng::seed_from_u64(42);
/// let mut b = StdRng::seed_from_u64(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng(Xoshiro256PlusPlus);

impl StdRng {
    /// Splits off an independent substream (state jump of 2¹²⁸): the
    /// parent and child streams are guaranteed non-overlapping for any
    /// realistic draw count.
    pub fn split(&mut self) -> StdRng {
        let child = self.0.clone();
        self.0.jump();
        StdRng(child)
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng(Xoshiro256PlusPlus::from_seed(seed))
    }
}

/// A source of uniformly random 64-bit words.
///
/// The one required method is [`next_u64`](Rng::next_u64); everything
/// else (typed draws, ranges, Bernoulli bits) lives on the blanket
/// extension trait [`RngExt`].
pub trait Rng {
    /// Produces the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Produces 32 uniformly random bits (the *upper* half of
    /// [`next_u64`](Rng::next_u64), which for `++`-scrambled xoshiro are
    /// the strongest bits).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: Rng + ?Sized> Rng for Box<R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Typed convenience draws, blanket-implemented for every [`Rng`].
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::{RngExt, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let x: f64 = rng.random();
/// assert!((0.0..1.0).contains(&x));
/// let k = rng.random_range(10..20);
/// assert!((10..20).contains(&k));
/// let _coin = rng.random_bool(0.5);
/// ```
pub trait RngExt: Rng {
    /// Draws a value of type `T` from its standard distribution:
    /// uniform over all values for integers, uniform in `[0, 1)` for
    /// floats, a fair coin for `bool`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "probability must be in [0, 1], got {p}"
        );
        self.random::<f64>() < p
    }

    /// Fills a slice with standard draws.
    fn fill<T: Random>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = self.random();
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64`, expanded through
    /// [`SplitMix64`] — the workspace's canonical seeding path.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64::new(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types drawable from a standard distribution via [`RngExt::random`].
pub trait Random: Sized {
    /// Draws one value.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_uint {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
                // Truncation of the (full-quality) low bits.
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_uint!(u8, u16, u32, u64, usize);

impl Random for u128 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

macro_rules! impl_random_int {
    ($($t:ty => $u:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
                <$u as Random>::random_from(rng) as $t
            }
        }
    )*};
}
impl_random_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize);

impl Random for bool {
    #[inline]
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Sign bit of the output word.
        (rng.next_u64() >> 63) == 1
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy
    /// (`2⁻²⁴`-spaced grid — every value exactly representable).
    #[inline]
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of mantissa entropy.
    #[inline]
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Uniform draw of a `u64` in `[0, n)` by Lemire's widening-multiply
/// rejection method — unbiased, and needs no division in the common
/// accept path.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let mut m = u128::from(rng.next_u64()) * u128::from(n);
    let mut lo = m as u64;
    if lo < n {
        // Threshold (2⁶⁴ mod n) below which the bucket is over-full.
        let t = n.wrapping_neg() % n;
        while lo < t {
            m = u128::from(rng.next_u64()) * u128::from(n);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let offset = uniform_u64_below(rng, span) as $u;
                self.start.wrapping_add(offset as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX || span.wrapping_add(1) == 0 {
                    // Full 64-bit domain: every value is fair game.
                    return <$t as Random>::random_from(rng);
                }
                let offset = uniform_u64_below(rng, span + 1) as $u;
                start.wrapping_add(offset as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start.is_finite() && self.end.is_finite() && self.start < self.end,
                    "cannot sample from empty or non-finite float range"
                );
                let u: $t = Random::random_from(rng);
                // Clamp guards the (measure-zero) rounding case u*(b-a)+a == b.
                let x = self.start + u * (self.end - self.start);
                if x >= self.end { self.start } else { x }
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the upstream `rand_xoshiro` crate for
    /// xoshiro256++ seeded with state words `[1, 2, 3, 4]`.
    #[test]
    fn xoshiro256pp_matches_reference_vector() {
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), want, "output {i}");
        }
    }

    /// Well-known SplitMix64 outputs for seed 0.
    #[test]
    fn splitmix64_matches_reference_vector() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_state_is_remapped() {
        let mut rng = Xoshiro256PlusPlus::from_state([0; 4]);
        // Must not be stuck at the all-zero fixed point.
        assert!((0..4).any(|_| rng.next_u64() != 0));
        assert_eq!(
            Xoshiro256PlusPlus::from_state([0; 4]),
            Xoshiro256PlusPlus::seed_from_u64(0)
        );
    }

    #[test]
    fn float_draws_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x), "{x}");
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y), "{y}");
        }
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..10_000 {
            let a = rng.random_range(3..17usize);
            assert!((3..17).contains(&a));
            let b = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&b));
            let c = rng.random_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&c));
        }
    }

    #[test]
    fn range_draws_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(12);
        let draws: Vec<u8> = (0..2_000).map(|_| rng.random_range(0..=3u8)).collect();
        assert!(draws.contains(&0));
        assert!(draws.contains(&3));
        assert!(draws.iter().all(|&d| d <= 3));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(13);
        let _ = rng.random_range(5..5usize);
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(14);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn jump_produces_disjoint_prefix() {
        let mut base = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let a: Vec<u64> = (0..32).map(|_| base.next_u64()).collect();
        let mut jumped = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        jumped.jump();
        let b: Vec<u64> = (0..32).map(|_| jumped.next_u64()).collect();
        assert!(a.iter().all(|x| !b.contains(x)));
    }

    #[test]
    fn split_children_are_independent() {
        let mut parent = StdRng::seed_from_u64(99);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let a: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| c2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn works_through_mut_references_and_unsized() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let via_ref = draw(&mut rng);
        assert!((0.0..1.0).contains(&via_ref));
        let dynamic: &mut StdRng = &mut rng;
        let _ = draw(dynamic);
    }
}
