//! The runtime's view of the vendored RNG subsystem, plus its
//! statistical acceptance tests.
//!
//! The implementation lives in the workspace-vendored `rand` crate
//! (SplitMix64-seeded xoshiro256++; see `crates/rand`). This module
//! re-exports the whole surface under `neuspin_core::rng` so runtime
//! code has one canonical import path, adds the [`stream`] helper for
//! deriving per-stage substreams from a master seed, and — because the
//! runtime is where determinism guarantees are consumed — carries the
//! golden-value and moment tests that pin the generator's behaviour.

pub use rand::rngs::StdRng;
pub use rand::{
    uniform_u64_below, Random, Rng, RngExt, SampleRange, SeedableRng, SplitMix64,
    Xoshiro256PlusPlus,
};

/// Derives a deterministic per-stage generator from a master seed and a
/// stage tag (the same derivation `neuspin_bench::Setup::rng` uses, so
/// runtime and harness agree on stream identities).
pub fn stream(master: u64, tag: u64) -> StdRng {
    StdRng::seed_from_u64(master ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuspin_device::stats::Running;

    /// Pins the exact xoshiro256++ output stream for seed 42. If this
    /// test ever fails, the generator changed and **every** recorded
    /// experiment number in EXPERIMENTS.md is invalid — that is the
    /// regression this golden test exists to catch.
    #[test]
    fn golden_stream_for_seed_42() {
        let mut rng = StdRng::seed_from_u64(42);
        let expected: [u64; 8] = [
            15021278609987233951,
            5881210131331364753,
            18149643915985481100,
            12933668939759105464,
            14637574242682825331,
            10848501901068131965,
            2312344417745909078,
            11162538943635311430,
        ];
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), want, "word {i} of the seed-42 stream drifted");
        }
    }

    /// The f64 view of the same stream (top 53 bits / 2⁵³).
    #[test]
    fn golden_f64_stream_for_seed_42() {
        let mut rng = StdRng::seed_from_u64(42);
        let expected = [
            0.8143051451229099,
            0.3188210400616611,
            0.9838941681774888,
            0.7011355981347556,
        ];
        for (i, &want) in expected.iter().enumerate() {
            let got: f64 = rng.random();
            assert!((got - want).abs() < 1e-15, "draw {i}: {got} vs {want}");
        }
    }

    #[test]
    fn uniform_f64_moments_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(1001);
        let r: Running = (0..200_000).map(|_| rng.random::<f64>()).collect();
        // U(0,1): mean 1/2, variance 1/12.
        assert!((r.mean() - 0.5).abs() < 0.005, "mean {}", r.mean());
        assert!((r.variance() - 1.0 / 12.0).abs() < 0.002, "var {}", r.variance());
    }

    #[test]
    fn uniform_f32_moments_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(1002);
        let r: Running = (0..200_000).map(|_| f64::from(rng.random::<f32>())).collect();
        assert!((r.mean() - 0.5).abs() < 0.005, "mean {}", r.mean());
        assert!((r.variance() - 1.0 / 12.0).abs() < 0.002, "var {}", r.variance());
    }

    #[test]
    fn integer_range_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(1003);
        let mut counts = [0u32; 7];
        let n = 140_000;
        for _ in 0..n {
            counts[rng.random_range(0..7usize)] += 1;
        }
        let expected = n as f64 / 7.0;
        for (value, &count) in counts.iter().enumerate() {
            let rel = (f64::from(count) - expected) / expected;
            assert!(rel.abs() < 0.02, "value {value}: count {count} vs expected {expected}");
        }
    }

    #[test]
    fn bool_draws_are_fair() {
        let mut rng = StdRng::seed_from_u64(1004);
        let heads = (0..100_000).filter(|_| rng.random::<bool>()).count();
        assert!((heads as f64 / 100_000.0 - 0.5).abs() < 0.01, "{heads}");
    }

    #[test]
    fn stream_derivation_matches_bench_harness_convention() {
        let mut direct = StdRng::seed_from_u64(0xBA5E ^ 7u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut derived = stream(0xBA5E, 7);
        for _ in 0..16 {
            assert_eq!(direct.next_u64(), derived.next_u64());
        }
    }

    #[test]
    fn streams_with_different_tags_decorrelate() {
        let mut a = stream(0xBA5E, 1);
        let mut b = stream(0xBA5E, 2);
        let matches = (0..1_000)
            .filter(|_| a.random::<bool>() == b.random::<bool>())
            .count();
        // Independent fair bits agree about half the time.
        assert!((400..600).contains(&matches), "{matches}");
    }
}
