//! Hardware execution blocks.
//!
//! A compiled [`HardwareModel`](crate::HardwareModel) is a pipeline of
//! these blocks: crossbar-backed layers (binary conv / FC, SpinBayes
//! multi-instance FC), digital periphery (norms, activations, pooling,
//! the final classifier), and the stochastic units built from
//! [`neuspin_cim`] dropout modules. Every block tallies its operations
//! for the energy model.

use neuspin_cim::{
    Arbiter, ArbiterState, Crossbar, CrossbarState, MlcCrossbar, MlcCrossbarState, OpCounter,
    ScaleDropModule, SpatialDropModule, SpinDropModule,
};
use neuspin_device::SpinRngState;
use neuspin_nn::conv::{im2col, im2col_into, ConvGeometry};
use neuspin_nn::Tensor;
use rand::rngs::StdRng;

/// Welford accumulator for per-feature calibration statistics.
///
/// Fields are crate-visible so the checkpoint module can capture and
/// restore the accumulator exactly (a restored die must resume
/// calibration mid-stream bit for bit).
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct FeatureStats {
    pub(crate) count: u64,
    pub(crate) mean: Vec<f64>,
    pub(crate) m2: Vec<f64>,
}

impl FeatureStats {
    fn ensure(&mut self, f: usize) {
        if self.mean.len() != f {
            self.mean = vec![0.0; f];
            self.m2 = vec![0.0; f];
            self.count = 0;
        }
    }

    fn push(&mut self, feature: usize, x: f64) {
        // count tracks pushes per feature (uniform across features).
        let delta = x - self.mean[feature];
        self.mean[feature] += delta / self.count as f64;
        self.m2[feature] += delta * (x - self.mean[feature]);
    }

    fn mean_var(&self, feature: usize) -> (f32, f32) {
        let var = if self.count > 1 {
            self.m2[feature] / (self.count - 1) as f64
        } else {
            1.0
        };
        (self.mean[feature] as f32, var.max(1e-6) as f32)
    }
}

fn layout(shape: &[usize]) -> (usize, usize, usize) {
    match shape.len() {
        2 => (shape[0], shape[1], 1),
        4 => (shape[0], shape[1], shape[2] * shape[3]),
        _ => panic!("expected [N,F] or [N,C,H,W], got {shape:?}"),
    }
}

/// A binary-crossbar convolution: sign weights in the array, per-channel
/// α scales and biases applied digitally.
#[derive(Debug, Clone)]
pub struct HwConv {
    pub(crate) xbar: Crossbar,
    pub(crate) geo: ConvGeometry,
    pub(crate) alphas: Vec<f32>,
    pub(crate) bias: Vec<f32>,
    pub(crate) local: OpCounter,
    /// Reused im2col staging buffer (forward-plan scratch).
    pub(crate) col: Tensor,
    /// Reused crossbar output buffer (forward-plan scratch).
    pub(crate) ybuf: Vec<f64>,
}

impl HwConv {
    pub(crate) fn forward(&mut self, x: &Tensor, rng: &mut StdRng) -> Tensor {
        let (n, _c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = (self.geo.out_size(h), self.geo.out_size(w));
        let cout = self.geo.out_channels;
        let col = im2col(x, &self.geo);
        let positions = n * oh * ow;
        // One batched crossbar call for all im2col positions: same
        // matvec sequence (and RNG stream) as the per-position loop,
        // without `positions` intermediate allocations.
        let y = self.xbar.matmul(col.as_slice(), positions, rng);
        let mut out = Tensor::zeros(&[n, cout, oh, ow]);
        for pos in 0..positions {
            let row = &y[pos * cout..(pos + 1) * cout];
            let (ni, rem) = (pos / (oh * ow), pos % (oh * ow));
            let (oy, ox) = (rem / ow, rem % ow);
            for (co, &v) in row.iter().enumerate() {
                out[((ni * cout + co) * oh + oy) * ow + ox] =
                    v as f32 * self.alphas[co] + self.bias[co];
            }
        }
        self.local.digital_ops += (positions * cout) as u64;
        out
    }

    /// [`HwConv::forward`] writing into a caller-provided tensor, with
    /// the im2col staging and crossbar output held in block-owned
    /// scratch. Steady-state calls perform no heap allocation; the
    /// float-op order (hence output bits, tallies, and RNG stream) is
    /// identical to the allocating path.
    pub(crate) fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, rng: &mut StdRng) {
        let (n, _c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = (self.geo.out_size(h), self.geo.out_size(w));
        let cout = self.geo.out_channels;
        im2col_into(x, &self.geo, &mut self.col);
        let positions = n * oh * ow;
        if self.ybuf.len() != positions * cout {
            self.ybuf.clear();
            self.ybuf.resize(positions * cout, 0.0);
        }
        self.xbar.matmul_into(self.col.as_slice(), positions, &mut self.ybuf, rng);
        out.resize_to(&[n, cout, oh, ow]);
        for pos in 0..positions {
            let row = &self.ybuf[pos * cout..(pos + 1) * cout];
            let (ni, rem) = (pos / (oh * ow), pos % (oh * ow));
            let (oy, ox) = (rem / ow, rem % ow);
            for (co, &v) in row.iter().enumerate() {
                out[((ni * cout + co) * oh + oy) * ow + ox] =
                    v as f32 * self.alphas[co] + self.bias[co];
            }
        }
        self.local.digital_ops += (positions * cout) as u64;
    }

    /// Bytes of reusable forward-plan scratch held by this block.
    pub(crate) fn scratch_bytes(&self) -> usize {
        self.col.capacity() * std::mem::size_of::<f32>()
            + self.ybuf.capacity() * std::mem::size_of::<f64>()
            + self.xbar.scratch_bytes()
    }

    pub(crate) fn counter(&self) -> OpCounter {
        let mut c = *self.xbar.counter();
        c.merge(&self.local);
        c
    }

}

/// A binary-crossbar fully-connected layer.
#[derive(Debug, Clone)]
pub struct HwFc {
    pub(crate) xbar: Crossbar,
    pub(crate) alphas: Vec<f32>,
    pub(crate) bias: Vec<f32>,
    pub(crate) local: OpCounter,
    /// Reused crossbar output buffer (forward-plan scratch).
    pub(crate) ybuf: Vec<f64>,
}

impl HwFc {
    pub(crate) fn forward(&mut self, x: &Tensor, rng: &mut StdRng) -> Tensor {
        assert_eq!(x.ndim(), 2, "HwFc expects [N, F]");
        let n = x.shape()[0];
        let o = self.alphas.len();
        let y = self.xbar.matmul(x.as_slice(), n, rng);
        let mut out = Tensor::zeros(&[n, o]);
        for ni in 0..n {
            let row = &y[ni * o..(ni + 1) * o];
            for (j, &v) in row.iter().enumerate() {
                out[ni * o + j] = v as f32 * self.alphas[j] + self.bias[j];
            }
        }
        self.local.digital_ops += (n * o) as u64;
        out
    }

    /// [`HwFc::forward`] writing into a caller-provided tensor; the
    /// crossbar output lives in block-owned scratch, so steady-state
    /// calls are allocation-free and bit-identical to the allocating
    /// path.
    pub(crate) fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, rng: &mut StdRng) {
        assert_eq!(x.ndim(), 2, "HwFc expects [N, F]");
        let n = x.shape()[0];
        let o = self.alphas.len();
        if self.ybuf.len() != n * o {
            self.ybuf.clear();
            self.ybuf.resize(n * o, 0.0);
        }
        self.xbar.matmul_into(x.as_slice(), n, &mut self.ybuf, rng);
        out.resize_to(&[n, o]);
        for ni in 0..n {
            let row = &self.ybuf[ni * o..(ni + 1) * o];
            for (j, &v) in row.iter().enumerate() {
                out[ni * o + j] = v as f32 * self.alphas[j] + self.bias[j];
            }
        }
        self.local.digital_ops += (n * o) as u64;
    }

    /// Bytes of reusable forward-plan scratch held by this block.
    pub(crate) fn scratch_bytes(&self) -> usize {
        self.ybuf.capacity() * std::mem::size_of::<f64>() + self.xbar.scratch_bytes()
    }

    pub(crate) fn counter(&self) -> OpCounter {
        let mut c = *self.xbar.counter();
        c.merge(&self.local);
        c
    }

}

/// The SpinBayes multi-instance FC layer: `N` quantized crossbars and a
/// stochastic Arbiter choosing one per forward pass (Fig. 3).
#[derive(Debug, Clone)]
pub struct HwFcSpinBayes {
    pub(crate) xbars: Vec<MlcCrossbar>,
    pub(crate) arbiter: Arbiter,
    pub(crate) bias: Vec<f32>,
    pub(crate) out_features: usize,
    pub(crate) local: OpCounter,
    /// Reused per-row crossbar output buffer (forward-plan scratch).
    pub(crate) ybuf: Vec<f64>,
}

impl HwFcSpinBayes {
    pub(crate) fn forward(&mut self, x: &Tensor, stochastic: bool, rng: &mut StdRng) -> Tensor {
        assert_eq!(x.ndim(), 2, "HwFcSpinBayes expects [N, F]");
        let (n, f) = (x.shape()[0], x.shape()[1]);
        let o = self.out_features;
        let before = self.arbiter.bits_used();
        let selected = if stochastic { self.arbiter.select(rng) } else { 0 };
        self.local.rng_bits += self.arbiter.bits_used() - before;
        let xbar = &mut self.xbars[selected];
        let mut out = Tensor::zeros(&[n, o]);
        for ni in 0..n {
            let y = xbar.matvec(&x.as_slice()[ni * f..(ni + 1) * f], rng);
            for (j, &v) in y.iter().enumerate() {
                out[ni * o + j] = v as f32 + self.bias[j];
            }
        }
        self.local.digital_ops += (n * o) as u64;
        out
    }

    /// [`HwFcSpinBayes::forward`] writing into a caller-provided
    /// tensor; the per-row matvec output lives in block-owned scratch.
    /// Arbiter selection and RNG consumption match the allocating path
    /// exactly.
    pub(crate) fn forward_into(
        &mut self,
        x: &Tensor,
        out: &mut Tensor,
        stochastic: bool,
        rng: &mut StdRng,
    ) {
        assert_eq!(x.ndim(), 2, "HwFcSpinBayes expects [N, F]");
        let (n, f) = (x.shape()[0], x.shape()[1]);
        let o = self.out_features;
        let before = self.arbiter.bits_used();
        let selected = if stochastic { self.arbiter.select(rng) } else { 0 };
        self.local.rng_bits += self.arbiter.bits_used() - before;
        if self.ybuf.len() != o {
            self.ybuf.clear();
            self.ybuf.resize(o, 0.0);
        }
        let xbar = &mut self.xbars[selected];
        out.resize_to(&[n, o]);
        for ni in 0..n {
            xbar.matvec_into(&x.as_slice()[ni * f..(ni + 1) * f], &mut self.ybuf, rng);
            for (j, &v) in self.ybuf.iter().enumerate() {
                out[ni * o + j] = v as f32 + self.bias[j];
            }
        }
        self.local.digital_ops += (n * o) as u64;
    }

    /// Bytes of reusable forward-plan scratch held by this block.
    pub(crate) fn scratch_bytes(&self) -> usize {
        self.ybuf.capacity() * std::mem::size_of::<f64>()
            + self.xbars.iter().map(|xb| xb.scratch_bytes()).sum::<usize>()
    }

    pub(crate) fn counter(&self) -> OpCounter {
        let mut c = self.local;
        for xb in &self.xbars {
            c.merge(xb.counter());
        }
        c
    }

}

/// The final classifier, executed in the digital periphery.
#[derive(Debug, Clone)]
pub struct HwDigitalFc {
    pub(crate) weight: Tensor, // [o, i]
    pub(crate) bias: Vec<f32>,
    pub(crate) local: OpCounter,
    /// Cached transpose of `weight`, built on the first planned call.
    /// Safe to cache: classifier weights are fixed at compile time and
    /// untouched by fault management (which targets crossbars only).
    pub(crate) weight_t: Tensor,
}

impl HwDigitalFc {
    pub(crate) fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut out = x.matmul(&self.weight.transpose());
        let (n, o) = (out.shape()[0], out.shape()[1]);
        for ni in 0..n {
            for j in 0..o {
                out[ni * o + j] += self.bias[j];
            }
        }
        self.local.digital_ops += (x.len() * o) as u64;
        out
    }

    /// [`HwDigitalFc::forward`] writing into a caller-provided tensor,
    /// reusing a cached weight transpose. The transpose is a
    /// deterministic data movement, so the matmul consumes identical
    /// operands in identical order — outputs stay bit-identical.
    pub(crate) fn forward_into(&mut self, x: &Tensor, out: &mut Tensor) {
        let (o, i) = (self.weight.shape()[0], self.weight.shape()[1]);
        if self.weight_t.shape() != [i, o] {
            self.weight_t = self.weight.transpose();
        }
        x.matmul_into(&self.weight_t, out);
        let n = out.shape()[0];
        for ni in 0..n {
            for j in 0..o {
                out[ni * o + j] += self.bias[j];
            }
        }
        self.local.digital_ops += (x.len() * o) as u64;
    }

    /// Bytes of reusable forward-plan scratch held by this block.
    pub(crate) fn scratch_bytes(&self) -> usize {
        self.weight_t.capacity() * std::mem::size_of::<f32>()
    }
}

/// Digital batch-norm with *hardware-calibrated* statistics: the mean
/// and variance are measured at this pipeline position by calibration
/// passes run on the compiled hardware, so they absorb programming-time
/// crossbar variation (the standard CIM deployment flow).
#[derive(Debug, Clone)]
pub struct HwNorm {
    pub(crate) gamma: Vec<f32>,
    pub(crate) beta: Vec<f32>,
    pub(crate) mean: Vec<f32>,
    pub(crate) var: Vec<f32>,
    pub(crate) stats: FeatureStats,
    pub(crate) local: OpCounter,
}

impl HwNorm {
    pub(crate) fn forward(&mut self, x: &Tensor, calibrating: bool) -> Tensor {
        let (n, f, spatial) = layout(x.shape());
        assert_eq!(f, self.gamma.len(), "feature mismatch");
        if calibrating {
            self.stats.ensure(f);
            for ni in 0..n {
                for si in 0..spatial {
                    self.stats.count += 1;
                    for fi in 0..f {
                        let v = x[(ni * f + fi) * spatial + si] as f64;
                        self.stats.push(fi, v);
                    }
                }
            }
            for fi in 0..f {
                let (m, v) = self.stats.mean_var(fi);
                self.mean[fi] = m;
                self.var[fi] = v;
            }
        }
        let mut out = Tensor::zeros(x.shape());
        for ni in 0..n {
            for fi in 0..f {
                let inv = 1.0 / (self.var[fi] + 1e-5).sqrt();
                let (g, b, m) = (self.gamma[fi], self.beta[fi], self.mean[fi]);
                for si in 0..spatial {
                    let i = (ni * f + fi) * spatial + si;
                    out[i] = g * (x[i] - m) * inv + b;
                }
            }
        }
        self.local.digital_ops += x.len() as u64;
        out
    }

    /// [`HwNorm::forward`] writing into a caller-provided tensor.
    /// Calibration statistics update identically; the normalize loop
    /// runs in the same order, so outputs stay bit-identical.
    pub(crate) fn forward_into(&mut self, x: &Tensor, out: &mut Tensor, calibrating: bool) {
        let (n, f, spatial) = layout(x.shape());
        assert_eq!(f, self.gamma.len(), "feature mismatch");
        if calibrating {
            self.stats.ensure(f);
            for ni in 0..n {
                for si in 0..spatial {
                    self.stats.count += 1;
                    for fi in 0..f {
                        let v = x[(ni * f + fi) * spatial + si] as f64;
                        self.stats.push(fi, v);
                    }
                }
            }
            for fi in 0..f {
                let (m, v) = self.stats.mean_var(fi);
                self.mean[fi] = m;
                self.var[fi] = v;
            }
        }
        out.resize_to(x.shape());
        for ni in 0..n {
            for fi in 0..f {
                let inv = 1.0 / (self.var[fi] + 1e-5).sqrt();
                let (g, b, m) = (self.gamma[fi], self.beta[fi], self.mean[fi]);
                for si in 0..spatial {
                    let i = (ni * f + fi) * spatial + si;
                    out[i] = g * (x[i] - m) * inv + b;
                }
            }
        }
        self.local.digital_ops += x.len() as u64;
    }
}

/// Digital inverted normalization (affine first, per-sample whitening
/// after) with optional hardware affine-dropout modules. Needs no
/// calibration — the self-healing property.
#[derive(Debug, Clone)]
pub struct HwInvNorm {
    pub(crate) gamma: Vec<f32>,
    pub(crate) beta: Vec<f32>,
    /// Affine-dropout modules for (γ, β); `None` when p = 0.
    pub(crate) modules: Option<(SpinDropModule, SpinDropModule)>,
    pub(crate) local: OpCounter,
    /// Reused per-sample affine buffer (forward-plan scratch).
    pub(crate) abuf: Vec<f32>,
}

impl HwInvNorm {
    pub(crate) fn forward(&mut self, x: &Tensor, stochastic: bool, rng: &mut StdRng) -> Tensor {
        let (n, f, spatial) = layout(x.shape());
        assert_eq!(f, self.gamma.len(), "feature mismatch");
        let (gamma_kept, beta_kept) = match (&mut self.modules, stochastic) {
            (Some((mg, mb)), true) => {
                self.local.rng_bits += 2;
                (!mg.sample(rng), !mb.sample(rng))
            }
            _ => (true, true),
        };
        let m_elems = (f * spatial) as f32;
        let mut out = Tensor::zeros(x.shape());
        for ni in 0..n {
            // Affine first.
            let mut a = vec![0.0f32; f * spatial];
            for fi in 0..f {
                let g = if gamma_kept { self.gamma[fi] } else { 1.0 };
                let b = if beta_kept { self.beta[fi] } else { 0.0 };
                for si in 0..spatial {
                    a[fi * spatial + si] = g * x[(ni * f + fi) * spatial + si] + b;
                }
            }
            // Per-sample whitening.
            let mean: f32 = a.iter().sum::<f32>() / m_elems;
            let var: f32 = a.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / m_elems;
            let inv = 1.0 / (var + 1e-5).sqrt();
            for (idx, &v) in a.iter().enumerate() {
                let fi = idx / spatial;
                let si = idx % spatial;
                out[(ni * f + fi) * spatial + si] = (v - mean) * inv;
            }
        }
        self.local.digital_ops += 2 * x.len() as u64;
        self.local.sram_accesses += 2 * f as u64; // γ and β reads
        out
    }

    /// [`HwInvNorm::forward`] writing into a caller-provided tensor;
    /// the per-sample affine staging lives in block-owned scratch. The
    /// affine loop fully overwrites the buffer each sample, so reuse
    /// cannot leak values between samples; module sampling order and
    /// RNG consumption match the allocating path exactly.
    pub(crate) fn forward_into(
        &mut self,
        x: &Tensor,
        out: &mut Tensor,
        stochastic: bool,
        rng: &mut StdRng,
    ) {
        let (n, f, spatial) = layout(x.shape());
        assert_eq!(f, self.gamma.len(), "feature mismatch");
        let (gamma_kept, beta_kept) = match (&mut self.modules, stochastic) {
            (Some((mg, mb)), true) => {
                self.local.rng_bits += 2;
                (!mg.sample(rng), !mb.sample(rng))
            }
            _ => (true, true),
        };
        let m_elems = (f * spatial) as f32;
        if self.abuf.len() != f * spatial {
            self.abuf.clear();
            self.abuf.resize(f * spatial, 0.0);
        }
        out.resize_to(x.shape());
        for ni in 0..n {
            // Affine first.
            for fi in 0..f {
                let g = if gamma_kept { self.gamma[fi] } else { 1.0 };
                let b = if beta_kept { self.beta[fi] } else { 0.0 };
                for si in 0..spatial {
                    self.abuf[fi * spatial + si] = g * x[(ni * f + fi) * spatial + si] + b;
                }
            }
            // Per-sample whitening.
            let mean: f32 = self.abuf.iter().sum::<f32>() / m_elems;
            let var: f32 =
                self.abuf.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / m_elems;
            let inv = 1.0 / (var + 1e-5).sqrt();
            for (idx, &v) in self.abuf.iter().enumerate() {
                let fi = idx / spatial;
                let si = idx % spatial;
                out[(ni * f + fi) * spatial + si] = (v - mean) * inv;
            }
        }
        self.local.digital_ops += 2 * x.len() as u64;
        self.local.sram_accesses += 2 * f as u64; // γ and β reads
    }

    /// Bytes of reusable forward-plan scratch held by this block.
    pub(crate) fn scratch_bytes(&self) -> usize {
        self.abuf.capacity() * std::mem::size_of::<f32>()
    }
}

/// Hardware stochastic (dropout) units.
#[derive(Debug, Clone)]
pub enum HwDropout {
    /// One SpinDrop module per neuron (gates one word-line pair each).
    PerNeuron {
        /// The per-neuron modules.
        modules: Vec<SpinDropModule>,
        /// Design drop probability (for the inverted-dropout rescale).
        p: f32,
    },
    /// One module per feature map, gating a row group via the decoder.
    PerChannel {
        /// The per-channel modules.
        modules: Vec<SpatialDropModule>,
        /// Design drop probability.
        p: f32,
    },
    /// The single per-layer scale-dropout module + SRAM scale vector.
    Scale {
        /// The layer's one module.
        module: ScaleDropModule,
        /// Trained scale vector (SRAM contents).
        scale: Vec<f32>,
        /// Local op tallies.
        local: OpCounter,
    },
    /// Sub-set VI: gaussian scale samples from the learned posterior.
    ViScale {
        /// Posterior means.
        mu: Vec<f32>,
        /// Posterior standard deviations.
        sigma: Vec<f32>,
        /// Stochastic bits charged per gaussian sample.
        bits_per_sample: u32,
        /// Local op tallies.
        local: OpCounter,
        /// Reused sampled-scale buffer (forward-plan scratch).
        scratch: Vec<f32>,
    },
}

impl HwDropout {
    pub(crate) fn forward(&mut self, x: &Tensor, stochastic: bool, rng: &mut StdRng) -> Tensor {
        let (n, f, spatial) = layout(x.shape());
        match self {
            HwDropout::PerNeuron { modules, p } => {
                if !stochastic {
                    return x.clone();
                }
                assert_eq!(modules.len(), f * spatial, "one module per neuron");
                let keep_scale = 1.0 / (1.0 - *p);
                let mut out = Tensor::zeros(x.shape());
                for ni in 0..n {
                    for (mi, module) in modules.iter_mut().enumerate() {
                        let dropped = module.sample(rng);
                        let i = ni * f * spatial + mi;
                        out[i] = if dropped { 0.0 } else { x[i] * keep_scale };
                    }
                }
                out
            }
            HwDropout::PerChannel { modules, p } => {
                if !stochastic {
                    return x.clone();
                }
                assert_eq!(modules.len(), f, "one module per channel");
                let keep_scale = 1.0 / (1.0 - *p);
                let mut out = Tensor::zeros(x.shape());
                for ni in 0..n {
                    for (fi, module) in modules.iter_mut().enumerate() {
                        let dropped = module.sample(rng);
                        for si in 0..spatial {
                            let i = (ni * f + fi) * spatial + si;
                            out[i] = if dropped { 0.0 } else { x[i] * keep_scale };
                        }
                    }
                }
                out
            }
            HwDropout::Scale { module, scale, local } => {
                let dropped = if stochastic {
                    module.sample(local, rng)
                } else {
                    local.sram_accesses += scale.len() as u64;
                    false
                };
                if dropped {
                    return x.clone(); // scale modulated to identity
                }
                assert_eq!(scale.len(), f, "scale length mismatch");
                let mut out = Tensor::zeros(x.shape());
                for ni in 0..n {
                    for (fi, &s) in scale.iter().enumerate() {
                        for si in 0..spatial {
                            let i = (ni * f + fi) * spatial + si;
                            out[i] = x[i] * s;
                        }
                    }
                }
                out
            }
            HwDropout::ViScale { mu, sigma, bits_per_sample, local, .. } => {
                assert_eq!(mu.len(), f, "scale length mismatch");
                let sampled: Vec<f32> = if stochastic {
                    local.rng_bits += u64::from(*bits_per_sample) * f as u64;
                    (0..f)
                        .map(|j| {
                            mu[j]
                                + sigma[j]
                                    * neuspin_device::stats::standard_normal(rng) as f32
                        })
                        .collect()
                } else {
                    mu.clone()
                };
                local.sram_accesses += 2 * f as u64;
                let mut out = Tensor::zeros(x.shape());
                for ni in 0..n {
                    for (fi, &s) in sampled.iter().enumerate() {
                        for si in 0..spatial {
                            let i = (ni * f + fi) * spatial + si;
                            out[i] = x[i] * s;
                        }
                    }
                }
                out
            }
        }
    }

    /// [`HwDropout::forward`] writing into a caller-provided tensor.
    /// Deterministic passes copy the input through; stochastic passes
    /// draw the same module/RNG sequence as the allocating path. The
    /// ViScale posterior samples live in variant-owned scratch.
    pub(crate) fn forward_into(
        &mut self,
        x: &Tensor,
        out: &mut Tensor,
        stochastic: bool,
        rng: &mut StdRng,
    ) {
        let (n, f, spatial) = layout(x.shape());
        match self {
            HwDropout::PerNeuron { modules, p } => {
                if !stochastic {
                    out.copy_from(x);
                    return;
                }
                assert_eq!(modules.len(), f * spatial, "one module per neuron");
                let keep_scale = 1.0 / (1.0 - *p);
                out.resize_to(x.shape());
                for ni in 0..n {
                    for (mi, module) in modules.iter_mut().enumerate() {
                        let dropped = module.sample(rng);
                        let i = ni * f * spatial + mi;
                        out[i] = if dropped { 0.0 } else { x[i] * keep_scale };
                    }
                }
            }
            HwDropout::PerChannel { modules, p } => {
                if !stochastic {
                    out.copy_from(x);
                    return;
                }
                assert_eq!(modules.len(), f, "one module per channel");
                let keep_scale = 1.0 / (1.0 - *p);
                out.resize_to(x.shape());
                for ni in 0..n {
                    for (fi, module) in modules.iter_mut().enumerate() {
                        let dropped = module.sample(rng);
                        for si in 0..spatial {
                            let i = (ni * f + fi) * spatial + si;
                            out[i] = if dropped { 0.0 } else { x[i] * keep_scale };
                        }
                    }
                }
            }
            HwDropout::Scale { module, scale, local } => {
                let dropped = if stochastic {
                    module.sample(local, rng)
                } else {
                    local.sram_accesses += scale.len() as u64;
                    false
                };
                if dropped {
                    out.copy_from(x); // scale modulated to identity
                    return;
                }
                assert_eq!(scale.len(), f, "scale length mismatch");
                out.resize_to(x.shape());
                for ni in 0..n {
                    for (fi, &s) in scale.iter().enumerate() {
                        for si in 0..spatial {
                            let i = (ni * f + fi) * spatial + si;
                            out[i] = x[i] * s;
                        }
                    }
                }
            }
            HwDropout::ViScale { mu, sigma, bits_per_sample, local, scratch } => {
                assert_eq!(mu.len(), f, "scale length mismatch");
                scratch.clear();
                if stochastic {
                    local.rng_bits += u64::from(*bits_per_sample) * f as u64;
                    scratch.extend((0..f).map(|j| {
                        mu[j] + sigma[j] * neuspin_device::stats::standard_normal(rng) as f32
                    }));
                } else {
                    scratch.extend_from_slice(mu);
                }
                local.sram_accesses += 2 * f as u64;
                out.resize_to(x.shape());
                for ni in 0..n {
                    for (fi, &s) in scratch.iter().enumerate() {
                        for si in 0..spatial {
                            let i = (ni * f + fi) * spatial + si;
                            out[i] = x[i] * s;
                        }
                    }
                }
            }
        }
    }

    /// Bytes of reusable forward-plan scratch held by this unit.
    pub(crate) fn scratch_bytes(&self) -> usize {
        match self {
            HwDropout::ViScale { scratch, .. } => {
                scratch.capacity() * std::mem::size_of::<f32>()
            }
            _ => 0,
        }
    }

    pub(crate) fn counter(&self) -> OpCounter {
        match self {
            HwDropout::PerNeuron { modules, .. } => OpCounter {
                rng_bits: modules.iter().map(|m| m.bits_used()).sum(),
                ..OpCounter::new()
            },
            HwDropout::PerChannel { modules, .. } => OpCounter {
                rng_bits: modules.iter().map(|m| m.bits_used()).sum(),
                ..OpCounter::new()
            },
            HwDropout::Scale { local, .. } => *local,
            HwDropout::ViScale { local, .. } => *local,
        }
    }
}

/// One stage of the compiled hardware pipeline.
#[derive(Debug, Clone)]
pub enum HwBlock {
    /// Binary crossbar convolution.
    Conv(HwConv),
    /// Binary crossbar FC layer.
    Fc(HwFc),
    /// SpinBayes multi-instance FC layer.
    FcSpinBayes(HwFcSpinBayes),
    /// Digital final classifier.
    DigitalFc(HwDigitalFc),
    /// Calibrated digital batch norm.
    Norm(HwNorm),
    /// Inverted normalization (+ affine dropout).
    InvNorm(HwInvNorm),
    /// Hard-tanh activation (digital).
    HardTanh,
    /// Non-overlapping max pool.
    MaxPool(usize),
    /// NCHW → `[N, F]` flatten.
    Flatten,
    /// A stochastic dropout unit.
    Dropout(HwDropout),
}

impl HwBlock {
    /// Executes the block.
    pub(crate) fn forward(
        &mut self,
        x: &Tensor,
        stochastic: bool,
        calibrating: bool,
        rng: &mut StdRng,
    ) -> Tensor {
        match self {
            HwBlock::Conv(b) => b.forward(x, rng),
            HwBlock::Fc(b) => b.forward(x, rng),
            HwBlock::FcSpinBayes(b) => b.forward(x, stochastic, rng),
            HwBlock::DigitalFc(b) => b.forward(x),
            HwBlock::Norm(b) => b.forward(x, calibrating),
            HwBlock::InvNorm(b) => b.forward(x, stochastic, rng),
            HwBlock::HardTanh => x.map(|v| v.clamp(-1.0, 1.0)),
            HwBlock::MaxPool(k) => max_pool(x, *k),
            HwBlock::Flatten => {
                let n = x.shape()[0];
                let rest: usize = x.shape()[1..].iter().product();
                x.reshape(&[n, rest])
            }
            HwBlock::Dropout(d) => d.forward(x, stochastic, rng),
        }
    }

    /// Executes the block, writing the activation into `out` — the
    /// forward-plan path. Bit-identical to [`HwBlock::forward`]: same
    /// float-op order, op tallies, and RNG consumption; only the
    /// destination storage differs.
    pub(crate) fn forward_into(
        &mut self,
        x: &Tensor,
        out: &mut Tensor,
        stochastic: bool,
        calibrating: bool,
        rng: &mut StdRng,
    ) {
        match self {
            HwBlock::Conv(b) => b.forward_into(x, out, rng),
            HwBlock::Fc(b) => b.forward_into(x, out, rng),
            HwBlock::FcSpinBayes(b) => b.forward_into(x, out, stochastic, rng),
            HwBlock::DigitalFc(b) => b.forward_into(x, out),
            HwBlock::Norm(b) => b.forward_into(x, out, calibrating),
            HwBlock::InvNorm(b) => b.forward_into(x, out, stochastic, rng),
            HwBlock::HardTanh => {
                out.resize_to(x.shape());
                for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
                    *o = v.clamp(-1.0, 1.0);
                }
            }
            HwBlock::MaxPool(k) => max_pool_into(x, *k, out),
            HwBlock::Flatten => {
                let n = x.shape()[0];
                let rest: usize = x.shape()[1..].iter().product();
                out.copy_from(x);
                out.reshape_in_place(&[n, rest]);
            }
            HwBlock::Dropout(d) => d.forward_into(x, out, stochastic, rng),
        }
    }

    /// Bytes of reusable forward-plan scratch held by this block
    /// (activation ping-pong buffers are owned by the model, not the
    /// blocks, and accounted there).
    pub(crate) fn scratch_bytes(&self) -> usize {
        match self {
            HwBlock::Conv(b) => b.scratch_bytes(),
            HwBlock::Fc(b) => b.scratch_bytes(),
            HwBlock::FcSpinBayes(b) => b.scratch_bytes(),
            HwBlock::DigitalFc(b) => b.scratch_bytes(),
            HwBlock::InvNorm(b) => b.scratch_bytes(),
            HwBlock::Dropout(d) => d.scratch_bytes(),
            _ => 0,
        }
    }

    /// A static label for telemetry span/trace annotations.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            HwBlock::Conv(_) => "conv",
            HwBlock::Fc(_) => "fc",
            HwBlock::FcSpinBayes(_) => "fc_spinbayes",
            HwBlock::DigitalFc(_) => "digital_fc",
            HwBlock::Norm(_) => "norm",
            HwBlock::InvNorm(_) => "inv_norm",
            HwBlock::HardTanh => "hard_tanh",
            HwBlock::MaxPool(_) => "max_pool",
            HwBlock::Flatten => "flatten",
            HwBlock::Dropout(_) => "dropout",
        }
    }

    /// The block's accumulated op counts.
    pub(crate) fn counter(&self) -> OpCounter {
        match self {
            HwBlock::Conv(b) => b.counter(),
            HwBlock::Fc(b) => b.counter(),
            HwBlock::FcSpinBayes(b) => b.counter(),
            HwBlock::DigitalFc(b) => b.local,
            HwBlock::Norm(b) => b.local,
            HwBlock::InvNorm(b) => b.local,
            HwBlock::Dropout(d) => d.counter(),
            _ => OpCounter::new(),
        }
    }
}

/// The mutable state of one pipeline block — everything a block can
/// accumulate after compilation (device state, RNG stream positions,
/// calibration statistics, op tallies). Captured by
/// [`HwBlock::export_state`] and reapplied by [`HwBlock::import_state`]
/// onto the matching block of a twin pipeline compiled by the same
/// deterministic constructor.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum BlockState {
    Conv { xbar: CrossbarState, local: OpCounter },
    Fc { xbar: CrossbarState, local: OpCounter },
    FcSpinBayes { xbars: Vec<MlcCrossbarState>, arbiter: ArbiterState, local: OpCounter },
    DigitalFc { local: OpCounter },
    Norm { mean: Vec<f32>, var: Vec<f32>, stats: FeatureStats, local: OpCounter },
    InvNorm { modules: Option<(SpinRngState, SpinRngState)>, local: OpCounter },
    DropPerNeuron { modules: Vec<SpinRngState> },
    DropPerChannel { modules: Vec<SpinRngState> },
    DropScale { module: SpinRngState, local: OpCounter },
    DropViScale { local: OpCounter },
    /// HardTanh / MaxPool / Flatten — nothing to capture.
    Stateless,
}

impl BlockState {
    /// A short label for mismatch diagnostics (the full state can hold
    /// megabytes of device data — never printed).
    fn kind(&self) -> &'static str {
        match self {
            BlockState::Conv { .. } => "conv",
            BlockState::Fc { .. } => "fc",
            BlockState::FcSpinBayes { .. } => "fc_spinbayes",
            BlockState::DigitalFc { .. } => "digital_fc",
            BlockState::Norm { .. } => "norm",
            BlockState::InvNorm { .. } => "inv_norm",
            BlockState::DropPerNeuron { .. } => "dropout_per_neuron",
            BlockState::DropPerChannel { .. } => "dropout_per_channel",
            BlockState::DropScale { .. } => "dropout_scale",
            BlockState::DropViScale { .. } => "dropout_vi_scale",
            BlockState::Stateless => "stateless",
        }
    }
}

impl HwBlock {
    /// Captures the block's complete mutable state.
    pub(crate) fn export_state(&self) -> BlockState {
        match self {
            HwBlock::Conv(b) => {
                BlockState::Conv { xbar: b.xbar.export_state(), local: b.local }
            }
            HwBlock::Fc(b) => BlockState::Fc { xbar: b.xbar.export_state(), local: b.local },
            HwBlock::FcSpinBayes(b) => BlockState::FcSpinBayes {
                xbars: b.xbars.iter().map(MlcCrossbar::export_state).collect(),
                arbiter: b.arbiter.state(),
                local: b.local,
            },
            HwBlock::DigitalFc(b) => BlockState::DigitalFc { local: b.local },
            HwBlock::Norm(b) => BlockState::Norm {
                mean: b.mean.clone(),
                var: b.var.clone(),
                stats: b.stats.clone(),
                local: b.local,
            },
            HwBlock::InvNorm(b) => BlockState::InvNorm {
                modules: b.modules.as_ref().map(|(g, be)| (g.rng_state(), be.rng_state())),
                local: b.local,
            },
            HwBlock::Dropout(HwDropout::PerNeuron { modules, .. }) => BlockState::DropPerNeuron {
                modules: modules.iter().map(SpinDropModule::rng_state).collect(),
            },
            HwBlock::Dropout(HwDropout::PerChannel { modules, .. }) => {
                BlockState::DropPerChannel {
                    modules: modules.iter().map(SpatialDropModule::rng_state).collect(),
                }
            }
            HwBlock::Dropout(HwDropout::Scale { module, local, .. }) => {
                BlockState::DropScale { module: module.rng_state(), local: *local }
            }
            HwBlock::Dropout(HwDropout::ViScale { local, .. }) => {
                BlockState::DropViScale { local: *local }
            }
            HwBlock::HardTanh | HwBlock::MaxPool(_) | HwBlock::Flatten => BlockState::Stateless,
        }
    }

    /// Reapplies a captured state onto this block. The block must be
    /// the same pipeline stage of a twin compiled from the same
    /// constructor inputs.
    ///
    /// # Panics
    ///
    /// Panics if the state variant does not match the block kind, or a
    /// module population differs.
    pub(crate) fn import_state(&mut self, state: &BlockState) {
        match (self, state) {
            (HwBlock::Conv(b), BlockState::Conv { xbar, local }) => {
                b.xbar.import_state(xbar);
                b.local = *local;
            }
            (HwBlock::Fc(b), BlockState::Fc { xbar, local }) => {
                b.xbar.import_state(xbar);
                b.local = *local;
            }
            (HwBlock::FcSpinBayes(b), BlockState::FcSpinBayes { xbars, arbiter, local }) => {
                assert_eq!(
                    b.xbars.len(),
                    xbars.len(),
                    "checkpoint SpinBayes instance count mismatch"
                );
                for (x, s) in b.xbars.iter_mut().zip(xbars) {
                    x.import_state(s);
                }
                b.arbiter.restore_state(arbiter);
                b.local = *local;
            }
            (HwBlock::DigitalFc(b), BlockState::DigitalFc { local }) => b.local = *local,
            (HwBlock::Norm(b), BlockState::Norm { mean, var, stats, local }) => {
                b.mean = mean.clone();
                b.var = var.clone();
                b.stats = stats.clone();
                b.local = *local;
            }
            (HwBlock::InvNorm(b), BlockState::InvNorm { modules, local }) => {
                match (&mut b.modules, modules) {
                    (Some((g, be)), Some((gs, bs))) => {
                        g.restore_rng_state(gs);
                        be.restore_rng_state(bs);
                    }
                    (None, None) => {}
                    _ => panic!("checkpoint InvNorm module presence mismatch"),
                }
                b.local = *local;
            }
            (
                HwBlock::Dropout(HwDropout::PerNeuron { modules, .. }),
                BlockState::DropPerNeuron { modules: states },
            ) => {
                assert_eq!(modules.len(), states.len(), "dropout module population mismatch");
                for (m, s) in modules.iter_mut().zip(states) {
                    m.restore_rng_state(s);
                }
            }
            (
                HwBlock::Dropout(HwDropout::PerChannel { modules, .. }),
                BlockState::DropPerChannel { modules: states },
            ) => {
                assert_eq!(modules.len(), states.len(), "dropout module population mismatch");
                for (m, s) in modules.iter_mut().zip(states) {
                    m.restore_rng_state(s);
                }
            }
            (
                HwBlock::Dropout(HwDropout::Scale { module, local, .. }),
                BlockState::DropScale { module: state, local: l },
            ) => {
                module.restore_rng_state(state);
                *local = *l;
            }
            (
                HwBlock::Dropout(HwDropout::ViScale { local, .. }),
                BlockState::DropViScale { local: l },
            ) => *local = *l,
            (HwBlock::HardTanh | HwBlock::MaxPool(_) | HwBlock::Flatten, BlockState::Stateless) => {
            }
            (block, state) => panic!(
                "checkpoint block state '{}' does not match pipeline block '{}'",
                state.kind(),
                block.kind()
            ),
        }
    }
}

fn max_pool(x: &Tensor, k: usize) -> Tensor {
    let mut out = Tensor::default();
    max_pool_into(x, k, &mut out);
    out
}

fn max_pool_into(x: &Tensor, k: usize, out: &mut Tensor) {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    assert!(h % k == 0 && w % k == 0, "pool window must divide input");
    let (oh, ow) = (h / k, w / k);
    out.resize_to(&[n, c, oh, ow]);
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..k {
                        for kx in 0..k {
                            let v = x[((ni * c + ci) * h + oy * k + ky) * w + ox * k + kx];
                            best = best.max(v);
                        }
                    }
                    out[((ni * c + ci) * oh + oy) * ow + ox] = best;
                }
            }
        }
    }
}
