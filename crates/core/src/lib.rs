//! # neuspin-core — the hardware/software co-design runtime
//!
//! The paper's primary contribution, as an executable pipeline:
//!
//! 1. **Train** a Bayesian binary network in software
//!    ([`neuspin_bayes::build_cnn`] + [`neuspin_nn::fit`]).
//! 2. **Compile** it onto the spintronic CIM simulator
//!    ([`HardwareModel::compile`]): binary weights → differential MTJ
//!    crossbars; each method's stochastic element → the matching
//!    MTJ dropout module (SpinDrop / Spatial / Scale / Arbiter);
//!    normalization → digital periphery.
//! 3. **Calibrate** the digital norm statistics on the compiled
//!    hardware ([`HardwareModel::calibrate`]).
//! 4. **Predict** with hardware-in-the-loop Monte-Carlo passes
//!    ([`HardwareModel::predict`]), tallying every device event for the
//!    energy model.
//!
//! Reliability scenarios — process variation, manufacturing defects,
//! post-calibration drift — are scripted by [`reliability::sweep`].
//!
//! ## Example
//!
//! ```no_run
//! use neuspin_bayes::{build_cnn, ArchConfig, Method};
//! use neuspin_core::{HardwareConfig, HardwareModel};
//! use neuspin_data::digits::{dataset, DigitStyle};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let arch = ArchConfig::default();
//! let mut model = build_cnn(Method::SpinDrop, &arch, &mut rng);
//! // ... train `model` with neuspin_nn::fit ...
//! let data = dataset(128, &DigitStyle::default(), &mut rng);
//! let mut hw = HardwareModel::compile(
//!     &mut model, Method::SpinDrop, &arch, &HardwareConfig::default(), &mut rng);
//! hw.calibrate(&data.inputs, 2, &mut rng);
//! let pred = hw.predict(&data.inputs, &mut rng);
//! println!("hardware accuracy: {:.2}%", 100.0 * pred.accuracy(&data.labels));
//! println!("energy: {}", hw.energy());
//! ```

pub mod blocks;
#[cfg(test)]
mod blocks_tests;
pub mod dist;
pub mod extract;
pub mod health;
pub mod json;
pub mod model;
pub mod pool;
pub mod reliability;
pub mod report;
pub mod rng;
pub mod runtime;
pub mod serve;
pub mod telemetry;
#[cfg(test)]
pub(crate) mod testutil;

pub use extract::TrainedParams;
pub use health::{HealthConfig, HealthMonitor, HealthPolicy};
pub use json::{Json, ToJson};
pub use model::{FaultManagementReport, HardwareConfig, HardwareModel, LayerFaultReport};
pub use pool::{mc_predict_par, ThreadPool};
pub use reliability::{reliability_base, sweep, SweepConfig, SweepKind, SweepPoint};
pub use report::{CorruptionResult, OodResult, Series, Table1Row};
pub use runtime::{
    RecoveryAction, RecoveryEvent, ServeReport, StepReport, Supervisor, SupervisorConfig,
};
pub use serve::fleet::{DieFleet, DieStatus, FleetError};
pub use serve::{serve, DrainReport, ServeConfig, ServerHandle, StatsSnapshot};
pub use telemetry::{Counter, Gauge, Histogram, MetricsSnapshot, SpanGuard, TraceEvent};

#[cfg(test)]
mod tests {
    use super::*;
    use neuspin_bayes::{build_cnn, ArchConfig, Method};
    use neuspin_cim::CrossbarConfig;
    use neuspin_nn::{Mode, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arch() -> ArchConfig {
        ArchConfig::default()
    }

    fn ideal_config() -> HardwareConfig {
        HardwareConfig {
            crossbar: CrossbarConfig::ideal(),
            passes: 4,
            ..HardwareConfig::default()
        }
    }

    #[test]
    fn compile_and_forward_all_methods() {
        let a = arch();
        let x = Tensor::from_fn(&[2, 1, 16, 16], |i| ((i * 13 % 29) as f32 / 14.5) - 1.0);
        for method in Method::ALL {
            let mut rng = StdRng::seed_from_u64(7);
            let mut sw = build_cnn(
                if method == Method::SpinBayes { Method::Deterministic } else { method },
                &a,
                &mut rng,
            );
            let mut hw = HardwareModel::compile(&mut sw, method, &a, &ideal_config(), &mut rng);
            hw.calibrate(&x, 1, &mut rng);
            let y = hw.forward(&x, method.is_bayesian(), &mut rng);
            assert_eq!(y.shape(), &[2, 10], "{method}");
            assert!(y.all_finite(), "{method}");
        }
    }

    #[test]
    fn ideal_hardware_matches_software_on_deterministic_model() {
        // With an ideal crossbar (no variation/noise/ADC) the hardware
        // forward must agree with the software model's Eval forward up
        // to calibrated-vs-running norm statistics. Compare argmax
        // decisions over a batch after calibrating on the same batch.
        let a = arch();
        let mut rng = StdRng::seed_from_u64(11);
        let mut sw = build_cnn(Method::Deterministic, &a, &mut rng);
        let x = Tensor::from_fn(&[16, 1, 16, 16], |i| ((i * 31 % 101) as f32 / 50.5) - 1.0);
        // A few software train passes to set running stats.
        for _ in 0..30 {
            let _ = sw.forward(&x, Mode::Train, &mut rng);
        }
        let sw_logits = sw.forward(&x, Mode::Eval, &mut rng);
        let mut hw = HardwareModel::compile(&mut sw, Method::Deterministic, &a, &ideal_config(), &mut rng);
        hw.calibrate(&x, 3, &mut rng);
        let hw_logits = hw.forward(&x, false, &mut rng);
        let agree = sw_logits
            .argmax_rows()
            .iter()
            .zip(hw_logits.argmax_rows())
            .filter(|(a, b)| **a == *b)
            .count();
        assert!(agree >= 14, "ideal hardware must track software: {agree}/16");
    }

    #[test]
    fn bayesian_hardware_prediction_is_stochastic() {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(13);
        let mut sw = build_cnn(Method::SpinDrop, &a, &mut rng);
        let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &a, &ideal_config(), &mut rng);
        let x = Tensor::from_fn(&[2, 1, 16, 16], |i| (i as f32 * 0.037).sin());
        hw.calibrate(&x, 1, &mut rng);
        let y1 = hw.forward(&x, true, &mut rng);
        let y2 = hw.forward(&x, true, &mut rng);
        assert_ne!(y1, y2, "dropout modules must vary the output");
        let pred = hw.predict(&x, &mut rng);
        assert_eq!(pred.passes, 4);
        assert!(pred.mutual_information.iter().any(|&mi| mi >= 0.0));
    }

    #[test]
    fn energy_accounting_counts_rng_for_dropout_methods() {
        let a = arch();
        let x = Tensor::from_fn(&[1, 1, 16, 16], |i| (i as f32 * 0.05).cos());
        let mut energies = Vec::new();
        for method in [Method::Deterministic, Method::SpinDrop, Method::SpinScaleDrop] {
            let mut rng = StdRng::seed_from_u64(17);
            let mut sw = build_cnn(method, &a, &mut rng);
            let mut hw = HardwareModel::compile(&mut sw, method, &a, &ideal_config(), &mut rng);
            hw.calibrate(&x, 1, &mut rng);
            hw.reset_counter();
            let _ = hw.predict(&x, &mut rng);
            let c = hw.counter();
            if method == Method::Deterministic {
                assert_eq!(c.rng_bits, 0);
            } else {
                assert!(c.rng_bits > 0, "{method} must consume RNG bits");
            }
            energies.push((method, hw.energy().0));
        }
        // SpinDrop (per-neuron bits × 4 passes) must dwarf ScaleDrop.
        let spindrop = energies[1].1;
        let scaledrop = energies[2].1;
        assert!(spindrop > scaledrop, "{spindrop} vs {scaledrop}");
    }

    #[test]
    fn module_counts_follow_method_hierarchy() {
        let a = arch();
        let x = Tensor::zeros(&[1, 1, 16, 16]);
        let _ = x;
        let mut counts = std::collections::HashMap::new();
        for method in [Method::SpinDrop, Method::SpatialSpinDrop, Method::SpinScaleDrop] {
            let mut rng = StdRng::seed_from_u64(19);
            let mut sw = build_cnn(method, &a, &mut rng);
            let hw = HardwareModel::compile(&mut sw, method, &a, &ideal_config(), &mut rng);
            counts.insert(method, hw.stochastic_module_count());
        }
        let sd = counts[&Method::SpinDrop];
        let sp = counts[&Method::SpatialSpinDrop];
        let sc = counts[&Method::SpinScaleDrop];
        assert!(sd > sp && sp > sc, "{sd} > {sp} > {sc} expected");
        assert_eq!(sc, 3, "one scale module per layer");
        // conv maps (8 + 16) + fc features (64) = 88 spatial modules.
        assert_eq!(sp, 88);
    }

    #[test]
    fn drift_injection_changes_outputs() {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(23);
        let mut sw = build_cnn(Method::Deterministic, &a, &mut rng);
        let mut hw = HardwareModel::compile(&mut sw, Method::Deterministic, &a, &ideal_config(), &mut rng);
        let x = Tensor::from_fn(&[2, 1, 16, 16], |i| (i as f32 * 0.021).sin());
        hw.calibrate(&x, 1, &mut rng);
        let before = hw.forward(&x, false, &mut rng);
        hw.inject_drift(0.8, 0.2, &mut rng);
        let after = hw.forward(&x, false, &mut rng);
        assert_ne!(before, after, "drift must perturb the computation");
        assert!(after.all_finite());
    }

    #[test]
    fn summary_describes_pipeline() {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(31);
        let mut sw = build_cnn(Method::SpinScaleDrop, &a, &mut rng);
        let hw = HardwareModel::compile(&mut sw, Method::SpinScaleDrop, &a, &ideal_config(), &mut rng);
        let s = hw.summary();
        assert!(s.contains("ScaleDrop: 1 module"), "{s}");
        assert!(s.contains("crossbar conv 9×8"), "{s}");
        assert!(s.contains("crossbar fc 256×64"), "{s}");
        assert!(s.contains("digital fc 64×10"), "{s}");
    }

    #[test]
    fn fault_management_flags_repairs_and_stays_finite() {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(41);
        let mut sw = build_cnn(Method::SpinDrop, &a, &mut rng);
        let config = HardwareConfig {
            crossbar: CrossbarConfig {
                defect_rates: neuspin_device::DefectRates {
                    short: 0.005,
                    open: 0.005,
                    ..neuspin_device::DefectRates::none()
                },
                read_noise: 0.02,
                ..CrossbarConfig::default()
            },
            spare_cols: 4,
            passes: 4,
            ..HardwareConfig::default()
        };
        let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &a, &config, &mut rng);
        let report = hw.fault_management(&neuspin_cim::BistConfig::default(), &mut rng);
        assert_eq!(report.layers.len(), 3, "two conv + one fc crossbar");
        assert!(report.total_flagged() > 0, "0.5 % hard faults must be seen");
        assert!(report.layers.iter().any(|l| l.repaired > 0), "{report:?}");
        let rate = report.repair_success_rate();
        assert!((0.0..=1.0).contains(&rate));
        let x = Tensor::from_fn(&[2, 1, 16, 16], |i| (i as f32 * 0.03).sin());
        hw.calibrate(&x, 1, &mut rng);
        let y = hw.forward(&x, true, &mut rng);
        assert!(y.all_finite());
    }

    #[test]
    fn gated_prediction_and_health_monitor_loop() {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(43);
        let mut sw = build_cnn(Method::SpinDrop, &a, &mut rng);
        let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &a, &ideal_config(), &mut rng);
        let x = Tensor::from_fn(&[8, 1, 16, 16], |i| ((i * 7 % 23) as f32 / 11.5) - 1.0);
        hw.calibrate(&x, 1, &mut rng);

        let threshold = hw.calibrate_abstention(&x, 0.75, &mut rng);
        assert!(threshold.is_finite() && threshold > 0.0);
        let (pred, gated) = hw.predict_gated(&x, threshold, &mut rng);
        assert_eq!(gated.accepted.len(), 8);
        assert!(gated.coverage() > 0.0);
        assert!(pred.entropy.iter().all(|h| h.is_finite()));

        // Feed the monitor a healthy baseline, then wreck the hardware.
        let mut monitor = HealthMonitor::new(HealthConfig { window: 2, ..Default::default() });
        hw.reset_sense_margins();
        let healthy = hw.predict(&x, &mut rng);
        let healthy_entropy =
            healthy.entropy.iter().sum::<f64>() / healthy.entropy.len() as f64;
        monitor.observe(healthy_entropy, hw.mean_sense_margin());
        monitor.freeze_baseline();
        assert_eq!(monitor.policy(), HealthPolicy::Healthy);

        hw.inject_drift(0.3, 0.4, &mut rng); // severe conductance collapse
        hw.reset_sense_margins();
        let sick = hw.predict(&x, &mut rng);
        let sick_entropy = sick.entropy.iter().sum::<f64>() / sick.entropy.len() as f64;
        monitor.observe(sick_entropy, hw.mean_sense_margin());
        monitor.observe(sick_entropy, hw.mean_sense_margin());
        assert!(monitor.drift_detected(), "70 % margin loss must be seen");
        assert!(monitor.policy() > HealthPolicy::Healthy, "{:?}", monitor.policy());
    }

    #[test]
    fn counter_window_resets() {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(29);
        let mut sw = build_cnn(Method::Deterministic, &a, &mut rng);
        let mut hw = HardwareModel::compile(&mut sw, Method::Deterministic, &a, &ideal_config(), &mut rng);
        let x = Tensor::zeros(&[1, 1, 16, 16]);
        assert_eq!(hw.counter().cell_reads, 0, "programming excluded from window");
        let _ = hw.forward(&x, false, &mut rng);
        let after_one = hw.counter().cell_reads;
        assert!(after_one > 0);
        hw.reset_counter();
        assert_eq!(hw.counter().cell_reads, 0);
    }
}
