//! # neuspin-core — the hardware/software co-design runtime
//!
//! The paper's primary contribution, as an executable pipeline:
//!
//! 1. **Train** a Bayesian binary network in software
//!    ([`neuspin_bayes::build_cnn`] + [`neuspin_nn::fit`]).
//! 2. **Compile** it onto the spintronic CIM simulator
//!    ([`HardwareModel::compile`]): binary weights → differential MTJ
//!    crossbars; each method's stochastic element → the matching
//!    MTJ dropout module (SpinDrop / Spatial / Scale / Arbiter);
//!    normalization → digital periphery.
//! 3. **Calibrate** the digital norm statistics on the compiled
//!    hardware ([`HardwareModel::calibrate`]).
//! 4. **Predict** with hardware-in-the-loop Monte-Carlo passes
//!    ([`HardwareModel::predict`]), tallying every device event for the
//!    energy model.
//!
//! Reliability scenarios — process variation, manufacturing defects,
//! post-calibration drift — are scripted by [`reliability::sweep`].
//!
//! ## Example
//!
//! ```no_run
//! use neuspin_bayes::{build_cnn, ArchConfig, Method};
//! use neuspin_core::{HardwareConfig, HardwareModel};
//! use neuspin_data::digits::{dataset, DigitStyle};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let arch = ArchConfig::default();
//! let mut model = build_cnn(Method::SpinDrop, &arch, &mut rng);
//! // ... train `model` with neuspin_nn::fit ...
//! let data = dataset(128, &DigitStyle::default(), &mut rng);
//! let mut hw = HardwareModel::compile(
//!     &mut model, Method::SpinDrop, &arch, &HardwareConfig::default(), &mut rng);
//! hw.calibrate(&data.inputs, 2, &mut rng);
//! let pred = hw.predict(&data.inputs, &mut rng);
//! println!("hardware accuracy: {:.2}%", 100.0 * pred.accuracy(&data.labels));
//! println!("energy: {}", hw.energy());
//! ```

pub mod blocks;
#[cfg(test)]
mod blocks_tests;
pub mod chaos;
pub mod checkpoint;
pub mod dist;
pub mod extract;
pub mod flight;
pub mod health;
pub mod json;
pub mod model;
pub mod pool;
pub mod reliability;
pub mod report;
pub mod rng;
pub mod runtime;
pub mod serve;
pub mod telemetry;
#[cfg(test)]
pub(crate) mod testutil;

pub use chaos::{ChaosConfig, ChaosPlan, ChaosSite};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use extract::TrainedParams;
pub use health::{HealthConfig, HealthMonitor, HealthPolicy};
pub use json::{Json, ToJson};
pub use model::{FaultManagementReport, HardwareConfig, HardwareModel, LayerFaultReport, ReplicaBank};
pub use pool::{mc_predict_par, mc_predict_par_on, ThreadPool};
pub use reliability::{reliability_base, sweep, SweepConfig, SweepKind, SweepPoint};
pub use report::{CorruptionResult, OodResult, Series, Table1Row};
pub use runtime::{
    BistGateReport, RecoveryAction, RecoveryEvent, ServeReport, StepReport, Supervisor,
    SupervisorConfig,
};
pub use flight::FlightEvent;
pub use serve::fleet::{DieFleet, DieStatus, FleetError};
pub use serve::trace::{RequestId, RequestTrace, SloTracker};
pub use serve::{serve, DrainReport, ServeConfig, ServerHandle, StatsSnapshot};
pub use telemetry::{Counter, Gauge, Histogram, MetricsSnapshot, SpanGuard, TraceEvent};

#[cfg(test)]
mod tests {
    use super::*;
    use neuspin_bayes::{build_cnn, ArchConfig, Method};
    use neuspin_cim::CrossbarConfig;
    use neuspin_nn::{Mode, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arch() -> ArchConfig {
        ArchConfig::default()
    }

    fn ideal_config() -> HardwareConfig {
        HardwareConfig {
            crossbar: CrossbarConfig::ideal(),
            passes: 4,
            ..HardwareConfig::default()
        }
    }

    #[test]
    fn compile_and_forward_all_methods() {
        let a = arch();
        let x = Tensor::from_fn(&[2, 1, 16, 16], |i| ((i * 13 % 29) as f32 / 14.5) - 1.0);
        for method in Method::ALL {
            let mut rng = StdRng::seed_from_u64(7);
            let mut sw = build_cnn(
                if method == Method::SpinBayes { Method::Deterministic } else { method },
                &a,
                &mut rng,
            );
            let mut hw = HardwareModel::compile(&mut sw, method, &a, &ideal_config(), &mut rng);
            hw.calibrate(&x, 1, &mut rng);
            let y = hw.forward(&x, method.is_bayesian(), &mut rng);
            assert_eq!(y.shape(), &[2, 10], "{method}");
            assert!(y.all_finite(), "{method}");
        }
    }

    #[test]
    fn ideal_hardware_matches_software_on_deterministic_model() {
        // With an ideal crossbar (no variation/noise/ADC) the hardware
        // forward must agree with the software model's Eval forward up
        // to calibrated-vs-running norm statistics. Compare argmax
        // decisions over a batch after calibrating on the same batch.
        let a = arch();
        let mut rng = StdRng::seed_from_u64(11);
        let mut sw = build_cnn(Method::Deterministic, &a, &mut rng);
        let x = Tensor::from_fn(&[16, 1, 16, 16], |i| ((i * 31 % 101) as f32 / 50.5) - 1.0);
        // A few software train passes to set running stats.
        for _ in 0..30 {
            let _ = sw.forward(&x, Mode::Train, &mut rng);
        }
        let sw_logits = sw.forward(&x, Mode::Eval, &mut rng);
        let mut hw = HardwareModel::compile(&mut sw, Method::Deterministic, &a, &ideal_config(), &mut rng);
        hw.calibrate(&x, 3, &mut rng);
        let hw_logits = hw.forward(&x, false, &mut rng);
        let agree = sw_logits
            .argmax_rows()
            .iter()
            .zip(hw_logits.argmax_rows())
            .filter(|(a, b)| **a == *b)
            .count();
        assert!(agree >= 14, "ideal hardware must track software: {agree}/16");
    }

    #[test]
    fn bayesian_hardware_prediction_is_stochastic() {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(13);
        let mut sw = build_cnn(Method::SpinDrop, &a, &mut rng);
        let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &a, &ideal_config(), &mut rng);
        let x = Tensor::from_fn(&[2, 1, 16, 16], |i| (i as f32 * 0.037).sin());
        hw.calibrate(&x, 1, &mut rng);
        let y1 = hw.forward(&x, true, &mut rng);
        let y2 = hw.forward(&x, true, &mut rng);
        assert_ne!(y1, y2, "dropout modules must vary the output");
        let pred = hw.predict(&x, &mut rng);
        assert_eq!(pred.passes, 4);
        assert!(pred.mutual_information.iter().any(|&mi| mi >= 0.0));
    }

    #[test]
    fn energy_accounting_counts_rng_for_dropout_methods() {
        let a = arch();
        let x = Tensor::from_fn(&[1, 1, 16, 16], |i| (i as f32 * 0.05).cos());
        let mut energies = Vec::new();
        for method in [Method::Deterministic, Method::SpinDrop, Method::SpinScaleDrop] {
            let mut rng = StdRng::seed_from_u64(17);
            let mut sw = build_cnn(method, &a, &mut rng);
            let mut hw = HardwareModel::compile(&mut sw, method, &a, &ideal_config(), &mut rng);
            hw.calibrate(&x, 1, &mut rng);
            hw.reset_counter();
            let _ = hw.predict(&x, &mut rng);
            let c = hw.counter();
            if method == Method::Deterministic {
                assert_eq!(c.rng_bits, 0);
            } else {
                assert!(c.rng_bits > 0, "{method} must consume RNG bits");
            }
            energies.push((method, hw.energy().0));
        }
        // SpinDrop (per-neuron bits × 4 passes) must dwarf ScaleDrop.
        let spindrop = energies[1].1;
        let scaledrop = energies[2].1;
        assert!(spindrop > scaledrop, "{spindrop} vs {scaledrop}");
    }

    #[test]
    fn module_counts_follow_method_hierarchy() {
        let a = arch();
        let x = Tensor::zeros(&[1, 1, 16, 16]);
        let _ = x;
        let mut counts = std::collections::HashMap::new();
        for method in [Method::SpinDrop, Method::SpatialSpinDrop, Method::SpinScaleDrop] {
            let mut rng = StdRng::seed_from_u64(19);
            let mut sw = build_cnn(method, &a, &mut rng);
            let hw = HardwareModel::compile(&mut sw, method, &a, &ideal_config(), &mut rng);
            counts.insert(method, hw.stochastic_module_count());
        }
        let sd = counts[&Method::SpinDrop];
        let sp = counts[&Method::SpatialSpinDrop];
        let sc = counts[&Method::SpinScaleDrop];
        assert!(sd > sp && sp > sc, "{sd} > {sp} > {sc} expected");
        assert_eq!(sc, 3, "one scale module per layer");
        // conv maps (8 + 16) + fc features (64) = 88 spatial modules.
        assert_eq!(sp, 88);
    }

    #[test]
    fn drift_injection_changes_outputs() {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(23);
        let mut sw = build_cnn(Method::Deterministic, &a, &mut rng);
        let mut hw = HardwareModel::compile(&mut sw, Method::Deterministic, &a, &ideal_config(), &mut rng);
        let x = Tensor::from_fn(&[2, 1, 16, 16], |i| (i as f32 * 0.021).sin());
        hw.calibrate(&x, 1, &mut rng);
        let before = hw.forward(&x, false, &mut rng);
        hw.inject_drift(0.8, 0.2, &mut rng);
        let after = hw.forward(&x, false, &mut rng);
        assert_ne!(before, after, "drift must perturb the computation");
        assert!(after.all_finite());
    }

    #[test]
    fn summary_describes_pipeline() {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(31);
        let mut sw = build_cnn(Method::SpinScaleDrop, &a, &mut rng);
        let hw = HardwareModel::compile(&mut sw, Method::SpinScaleDrop, &a, &ideal_config(), &mut rng);
        let s = hw.summary();
        assert!(s.contains("ScaleDrop: 1 module"), "{s}");
        assert!(s.contains("crossbar conv 9×8"), "{s}");
        assert!(s.contains("crossbar fc 256×64"), "{s}");
        assert!(s.contains("digital fc 64×10"), "{s}");
    }

    #[test]
    fn fault_management_flags_repairs_and_stays_finite() {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(41);
        let mut sw = build_cnn(Method::SpinDrop, &a, &mut rng);
        let config = HardwareConfig {
            crossbar: CrossbarConfig {
                defect_rates: neuspin_device::DefectRates {
                    short: 0.005,
                    open: 0.005,
                    ..neuspin_device::DefectRates::none()
                },
                read_noise: 0.02,
                ..CrossbarConfig::default()
            },
            spare_cols: 4,
            passes: 4,
            ..HardwareConfig::default()
        };
        let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &a, &config, &mut rng);
        let report = hw.fault_management(&neuspin_cim::BistConfig::default(), &mut rng);
        assert_eq!(report.layers.len(), 3, "two conv + one fc crossbar");
        assert!(report.total_flagged() > 0, "0.5 % hard faults must be seen");
        assert!(report.layers.iter().any(|l| l.repaired > 0), "{report:?}");
        let rate = report.repair_success_rate();
        assert!((0.0..=1.0).contains(&rate));
        let x = Tensor::from_fn(&[2, 1, 16, 16], |i| (i as f32 * 0.03).sin());
        hw.calibrate(&x, 1, &mut rng);
        let y = hw.forward(&x, true, &mut rng);
        assert!(y.all_finite());
    }

    #[test]
    fn gated_prediction_and_health_monitor_loop() {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(43);
        let mut sw = build_cnn(Method::SpinDrop, &a, &mut rng);
        let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &a, &ideal_config(), &mut rng);
        let x = Tensor::from_fn(&[8, 1, 16, 16], |i| ((i * 7 % 23) as f32 / 11.5) - 1.0);
        hw.calibrate(&x, 1, &mut rng);

        let threshold = hw.calibrate_abstention(&x, 0.75, &mut rng);
        assert!(threshold.is_finite() && threshold > 0.0);
        let (pred, gated) = hw.predict_gated(&x, threshold, &mut rng);
        assert_eq!(gated.accepted.len(), 8);
        assert!(gated.coverage() > 0.0);
        assert!(pred.entropy.iter().all(|h| h.is_finite()));

        // Feed the monitor a healthy baseline, then wreck the hardware.
        let mut monitor = HealthMonitor::new(HealthConfig { window: 2, ..Default::default() });
        hw.reset_sense_margins();
        let healthy = hw.predict(&x, &mut rng);
        let healthy_entropy =
            healthy.entropy.iter().sum::<f64>() / healthy.entropy.len() as f64;
        monitor.observe(healthy_entropy, hw.mean_sense_margin());
        monitor.freeze_baseline();
        assert_eq!(monitor.policy(), HealthPolicy::Healthy);

        hw.inject_drift(0.3, 0.4, &mut rng); // severe conductance collapse
        hw.reset_sense_margins();
        let sick = hw.predict(&x, &mut rng);
        let sick_entropy = sick.entropy.iter().sum::<f64>() / sick.entropy.len() as f64;
        monitor.observe(sick_entropy, hw.mean_sense_margin());
        monitor.observe(sick_entropy, hw.mean_sense_margin());
        assert!(monitor.drift_detected(), "70 % margin loss must be seen");
        assert!(monitor.policy() > HealthPolicy::Healthy, "{:?}", monitor.policy());
    }

    /// A compiled noisy Bayesian model for the planned-engine batteries
    /// (noise keeps the packed kernel out, exercising the scalar
    /// scratch paths).
    fn noisy_bayesian_model(seed: u64) -> HardwareModel {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sw = build_cnn(Method::SpinDrop, &a, &mut rng);
        let config = HardwareConfig {
            crossbar: CrossbarConfig {
                read_noise: 0.03,
                ir_drop: 0.02,
                ..CrossbarConfig::default()
            },
            passes: 4,
            ..HardwareConfig::default()
        };
        let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &a, &config, &mut rng);
        let x = Tensor::from_fn(&[4, 1, 16, 16], |i| (i as f32 * 0.029).sin());
        hw.calibrate(&x, 1, &mut rng);
        hw
    }

    fn assert_predictive_bits_eq(a: &neuspin_bayes::Predictive, b: &neuspin_bayes::Predictive) {
        assert_eq!(a.passes, b.passes);
        assert_eq!(a.mean_probs.shape(), b.mean_probs.shape());
        for (x, y) in a.mean_probs.as_slice().iter().zip(b.mean_probs.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.entropy.iter().zip(&b.entropy) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.mutual_information.iter().zip(&b.mutual_information) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.variance.iter().zip(&b.variance) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn planned_engine_is_bit_identical_to_unplanned() {
        let mut planned = noisy_bayesian_model(101);
        let mut legacy = planned.clone();
        let x = Tensor::from_fn(&[3, 1, 16, 16], |i| ((i * 11 % 37) as f32 / 18.5) - 1.0);
        for seed in [5u64, 6, 7] {
            let a = planned.predict_seeded(&x, seed);
            let b = legacy.predict_seeded_unplanned(&x, seed);
            assert_predictive_bits_eq(&a, &b);
        }
        // Same op tallies and sense-margin trajectory, pass for pass.
        assert_eq!(planned.counter(), legacy.counter());
        assert_eq!(
            planned.mean_sense_margin().to_bits(),
            legacy.mean_sense_margin().to_bits(),
            "planned path must advance margins identically"
        );
        assert_eq!(planned.plan_rebuilds(), 1, "steady shape → one plan build");
        assert!(planned.scratch_bytes() > 0, "arenas must be warm after a pass");
    }

    #[test]
    fn plan_invalidation_rebuilds_and_stays_bit_identical() {
        let mut hw = noisy_bayesian_model(103);
        let shapes: [&[usize]; 4] =
            [&[4, 1, 16, 16], &[2, 1, 16, 16], &[4, 1, 16, 16], &[1, 1, 16, 16]];
        for (i, shape) in shapes.iter().enumerate() {
            let x = Tensor::from_fn(shape, |j| ((j * 13 + i) as f32 * 0.017).cos());
            let got = hw.predict_seeded(&x, 40 + i as u64);
            // Ground truth: a fresh model that only ever saw this shape.
            let mut fresh = noisy_bayesian_model(103);
            let want = fresh.predict_seeded(&x, 40 + i as u64);
            assert_predictive_bits_eq(&got, &want);
            assert_eq!(hw.plan_rebuilds(), i as u64 + 1, "each shape change rebuilds");
        }
    }

    #[test]
    fn predict_par_short_circuits_to_bit_identical_sequential() {
        let x = Tensor::from_fn(&[3, 1, 16, 16], |i| (i as f32 * 0.041).sin());
        let mut reference = noisy_bayesian_model(107);
        let want = reference.predict_seeded(&x, 99);
        for threads in [1usize, 2, 4] {
            let mut hw = noisy_bayesian_model(107);
            let pool = ThreadPool::new(threads);
            let got = hw.predict_par(&x, 99, &pool);
            assert_predictive_bits_eq(&got, &want);
            assert_eq!(hw.counter(), reference.counter(), "{threads} threads");
        }
        // passes == 1 also short-circuits, on any pool width.
        let mut one = noisy_bayesian_model(107);
        one.set_passes(1);
        let mut one_ref = one.clone();
        let a = one.predict_par(&x, 3, &ThreadPool::new(4));
        let b = one_ref.predict_seeded(&x, 3);
        assert_predictive_bits_eq(&a, &b);
    }

    #[test]
    fn replica_bank_matches_single_worker_ground_truth() {
        let mut served = noisy_bayesian_model(109);
        let mut truth = served.clone();
        let pool = ThreadPool::new(4);
        let mut bank = ReplicaBank::new();
        // N interleaved serve calls over two request shapes.
        for i in 0..6u64 {
            let n = if i % 2 == 0 { 3 } else { 2 };
            let x = Tensor::from_fn(&[n, 1, 16, 16], |j| ((j as u64 + 31 * i) as f32 * 0.013).sin());
            let got = served.predict_par_in(&x, 700 + i, &pool, &mut bank);
            let want = truth.predict_seeded(&x, 700 + i);
            assert_predictive_bits_eq(&got, &want);
        }
        assert_eq!(bank.len(), 4, "one persistent replica per pool worker");
        assert_eq!(bank.syncs(), 6, "every call resyncs the deltas");
        // Counters must match the sequential ground truth exactly; the
        // margin trajectory up to reassociation of the f64 sums.
        assert_eq!(served.counter(), truth.counter());
        let (a, b) = (served.mean_sense_margin(), truth.mean_sense_margin());
        assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
        // Invalidation drops the replicas; the next call re-clones and
        // still matches ground truth.
        bank.invalidate();
        assert!(bank.is_empty());
        let x = Tensor::from_fn(&[3, 1, 16, 16], |j| (j as f32 * 0.019).cos());
        let got = served.predict_par_in(&x, 900, &pool, &mut bank);
        let want = truth.predict_seeded(&x, 900);
        assert_predictive_bits_eq(&got, &want);
        assert_eq!(bank.len(), 4);
    }

    #[test]
    fn counter_window_resets() {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(29);
        let mut sw = build_cnn(Method::Deterministic, &a, &mut rng);
        let mut hw = HardwareModel::compile(&mut sw, Method::Deterministic, &a, &ideal_config(), &mut rng);
        let x = Tensor::zeros(&[1, 1, 16, 16]);
        assert_eq!(hw.counter().cell_reads, 0, "programming excluded from window");
        let _ = hw.forward(&x, false, &mut rng);
        let after_one = hw.counter().cell_reads;
        assert!(after_one > 0);
        hw.reset_counter();
        assert_eq!(hw.counter().cell_reads, 0);
    }
}

