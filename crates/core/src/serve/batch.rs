//! Bounded blocking queues for the serving pipeline.
//!
//! Two policies live here, both over the same `Mutex` + `Condvar`
//! core:
//!
//! * [`BatchQueue::try_push`] — *shed, don't queue*: a full queue
//!   rejects immediately so the caller can answer `429` while the
//!   system is still healthy enough to say so.
//! * [`BatchQueue::pop_batch`] — *coalesce under a max-batch /
//!   max-wait policy*: the consumer takes everything available up to
//!   `max_batch`, waiting at most `max_wait` for the first item and a
//!   short linger after it so singles coalesce into real batches.
//!
//! Closing the queue wakes all waiters; producers see `Closed`,
//! consumers drain what remains and then observe emptiness. No
//! spin-waiting, no unbounded growth, no external crates.

use super::lock_recover;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Queue is at capacity: shed the request instead of queueing.
    Full,
    /// Queue is closed: the server is draining or down.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with batch-coalescing pops.
pub struct BatchQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BatchQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BatchQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item`, or refuses without blocking.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut inner = lock_recover(&self.inner);
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops up to `max_batch` items.
    ///
    /// Blocks up to `max_wait` for the first item; once one arrives,
    /// lingers up to `linger` more for stragglers so that singles
    /// coalesce (the max-batch / max-wait policy: a batch departs when
    /// it is full or when its oldest member has waited `linger`).
    /// Returns an empty vec on timeout; returns whatever is left
    /// (possibly empty) once the queue is closed and drained.
    pub fn pop_batch(&self, max_batch: usize, max_wait: Duration, linger: Duration) -> Vec<T> {
        assert!(max_batch > 0, "max_batch must be positive");
        let deadline = Instant::now() + max_wait;
        let mut inner = lock_recover(&self.inner);
        // Phase 1: wait for the first item (or close, or timeout).
        while inner.items.is_empty() && !inner.closed {
            let now = Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            inner = wait_recover(&self.not_empty, inner, deadline - now);
        }
        // Phase 2: linger briefly to let stragglers coalesce.
        let linger_deadline = Instant::now() + linger;
        while inner.items.len() < max_batch && !inner.closed {
            let now = Instant::now();
            if now >= linger_deadline || inner.items.is_empty() {
                break;
            }
            inner = wait_recover(&self.not_empty, inner, linger_deadline - now);
        }
        let take = inner.items.len().min(max_batch);
        inner.items.drain(..take).collect()
    }

    /// Deliberately poisons the queue mutex (panic while holding the
    /// guard) so tests can prove the queue keeps serving afterwards.
    #[cfg(test)]
    pub(crate) fn poison_for_test(&self) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.inner.lock().unwrap();
            panic!("poisoning the queue mutex");
        }));
    }

    /// Number of queued items right now.
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).items.len()
    }

    /// The fixed capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`BatchQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock_recover(&self.inner).closed
    }

    /// Closes the queue: producers are refused, waiting consumers wake.
    pub fn close(&self) {
        let mut inner = lock_recover(&self.inner);
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }
}

/// Condvar wait that recovers a poisoned queue (another thread panicked
/// while holding the lock) instead of propagating the panic: the
/// protected state is a plain deque + flag, valid whatever the panic
/// interrupted, so recovery is always safe.
fn wait_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, Inner<T>>,
    timeout: Duration,
) -> MutexGuard<'a, Inner<T>> {
    match cv.wait_timeout(guard, timeout) {
        Ok((guard, _timeout)) => guard,
        Err(poisoned) => {
            super::count_lock_poisoned();
            poisoned.into_inner().0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    const SHORT: Duration = Duration::from_millis(20);
    const TINY: Duration = Duration::from_millis(2);

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let q = BatchQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (item, err) = q.try_push(3).unwrap_err();
        assert_eq!((item, err), (3, PushError::Full));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_batch_coalesces_up_to_max_batch() {
        let q = BatchQueue::new(16);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let batch = q.pop_batch(3, SHORT, TINY);
        assert_eq!(batch, vec![0, 1, 2]);
        let rest = q.pop_batch(8, SHORT, TINY);
        assert_eq!(rest, vec![3, 4]);
    }

    #[test]
    fn linger_coalesces_a_straggler_into_the_batch() {
        let q: Arc<BatchQueue<u32>> = Arc::new(BatchQueue::new(8));
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            q2.try_push(1).unwrap();
            std::thread::sleep(Duration::from_millis(15));
            q2.try_push(2).unwrap();
        });
        let batch = q.pop_batch(4, Duration::from_millis(200), Duration::from_millis(100));
        producer.join().unwrap();
        assert_eq!(batch, vec![1, 2], "straggler must coalesce within the linger window");
    }

    #[test]
    fn pop_batch_times_out_empty() {
        let q: BatchQueue<u32> = BatchQueue::new(4);
        let start = Instant::now();
        assert!(q.pop_batch(4, Duration::from_millis(10), TINY).is_empty());
        assert!(start.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn close_wakes_blocked_consumer_and_refuses_producers() {
        let q: Arc<BatchQueue<u32>> = Arc::new(BatchQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_batch(4, Duration::from_secs(5), TINY));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(consumer.join().unwrap().is_empty());
        let (_, err) = q.try_push(9).unwrap_err();
        assert_eq!(err, PushError::Closed);
    }

    #[test]
    fn close_still_drains_queued_items() {
        let q = BatchQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.pop_batch(4, SHORT, TINY), vec![7]);
        assert!(q.pop_batch(4, TINY, TINY).is_empty());
    }

    #[test]
    fn poisoned_queue_recovers_and_keeps_serving() {
        let q = BatchQueue::new(4);
        q.try_push(1).unwrap();
        q.poison_for_test();
        // Every entry point must recover the lock rather than panic.
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert!(!q.is_closed());
        assert_eq!(q.pop_batch(4, SHORT, TINY), vec![1, 2]);
        q.close();
        assert!(q.is_closed());
    }

    #[test]
    fn concurrent_producers_never_exceed_capacity() {
        let q: Arc<BatchQueue<usize>> = Arc::new(BatchQueue::new(8));
        let mut handles = Vec::new();
        for t in 0..4 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut accepted = 0usize;
                for i in 0..64 {
                    if q.try_push(t * 1000 + i).is_ok() {
                        accepted += 1;
                    }
                }
                accepted
            }));
        }
        let accepted: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(q.len() <= 8, "queue overflowed its bound: {}", q.len());
        assert_eq!(q.len(), accepted, "accepted items must all be queued");
    }
}
