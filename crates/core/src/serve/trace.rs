//! Request lineage for the serving front door: deterministic request
//! ids, per-stage waterfall timings, and SLO burn-rate math.
//!
//! Three pieces live here:
//!
//! * [`RequestId`] — assigned from a process-local counter the moment a
//!   `/predict` body parses, and carried through the batch queue, die
//!   routing, failover, and the response write. Deterministic under a
//!   sequential closed-loop driver (no RNG, no wall-clock).
//! * [`RequestTrace`] — the per-request waterfall: queue wait, batch
//!   assembly, die compute, retry, write. The *identity* fields (rid,
//!   batch, die, failovers, retries) are deterministic and echoed in
//!   the `X-NeuSpin-Trace` response header; the *timing* fields are
//!   wall-clock and flow only into the per-stage [`Histogram`]s, per
//!   the PR-5 determinism contract.
//! * [`SloTracker`] — a rolling window over the same per-request
//!   outcomes that feed `serve_request_ms`, reduced to availability and
//!   latency burn rates (how fast the error budget is being spent: a
//!   burn of 1.0 exhausts the budget exactly at the window's pace).
//!
//! [`Histogram`]: crate::telemetry::Histogram

use crate::json::Json;
use crate::telemetry;
use std::collections::VecDeque;
use std::sync::Mutex;

/// A deterministic per-request identity: dense, zero-based, assigned at
/// accept time in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Renders a request-id slice as a JSON array for flight events.
pub(crate) fn rids_json(rids: &[RequestId]) -> Json {
    Json::Arr(rids.iter().map(|r| Json::Num(r.0 as f64)).collect())
}

/// The per-request waterfall, filled in as the request moves through
/// the pipeline and observed into the stage histograms at response
/// write time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestTrace {
    /// Identity assigned at accept.
    pub rid: RequestId,
    /// Index of the batch that carried the request to a die.
    pub batch: u64,
    /// Die that produced the answer.
    pub die: usize,
    /// Whole-batch failover attempts before the answering die.
    pub failovers: u32,
    /// Per-sample abstention retries this request consumed.
    pub retries: u32,
    /// Accept → batch pop (wall-clock, histogram-only).
    pub queue_wait_ns: u64,
    /// Batch pop → tensor assembled (wall-clock, histogram-only).
    pub assembly_ns: u64,
    /// Successful MC forward on the answering die (wall-clock,
    /// histogram-only).
    pub compute_ns: u64,
    /// Failed attempts, backoff, and abstention retries (wall-clock,
    /// histogram-only).
    pub retry_ns: u64,
}

impl RequestTrace {
    /// The `X-NeuSpin-Trace` header value. Deterministic fields only —
    /// the header must be byte-identical across `NEUSPIN_THREADS`, so
    /// no timing ever appears here.
    pub fn header_value(&self) -> String {
        format!(
            "rid={};batch={};die={};failovers={};retries={}",
            self.rid, self.batch, self.die, self.failovers, self.retries
        )
    }

    /// Parses a header produced by [`RequestTrace::header_value`]
    /// (timing fields come back zero — they are never in the header).
    pub fn parse_header(value: &str) -> Option<RequestTrace> {
        let mut rid = None;
        let mut batch = None;
        let mut die = None;
        let mut failovers = None;
        let mut retries = None;
        for part in value.split(';') {
            let (key, num) = part.split_once('=')?;
            match key {
                "rid" => rid = num.parse::<u64>().ok(),
                "batch" => batch = num.parse::<u64>().ok(),
                "die" => die = num.parse::<usize>().ok(),
                "failovers" => failovers = num.parse::<u32>().ok(),
                "retries" => retries = num.parse::<u32>().ok(),
                _ => return None,
            }
        }
        Some(RequestTrace {
            rid: RequestId(rid?),
            batch: batch?,
            die: die?,
            failovers: failovers?,
            retries: retries?,
            queue_wait_ns: 0,
            assembly_ns: 0,
            compute_ns: 0,
            retry_ns: 0,
        })
    }

    /// Observes the waterfall into the per-stage histograms plus the
    /// end-to-end `serve_request_ms` total. `write_ns` is the final
    /// stage (compute done → response bytes written), measured by the
    /// caller. No-op while metrics are disabled.
    pub fn observe(&self, write_ns: u64) {
        if !telemetry::metrics_enabled() {
            return;
        }
        let ms = |ns: u64| ns as f64 / 1e6;
        let bounds = telemetry::serve_latency_buckets_ms();
        telemetry::histogram("serve_stage_queue_wait_ms", &bounds).observe(ms(self.queue_wait_ns));
        telemetry::histogram("serve_stage_batch_assembly_ms", &bounds)
            .observe(ms(self.assembly_ns));
        telemetry::histogram("serve_stage_die_compute_ms", &bounds).observe(ms(self.compute_ns));
        telemetry::histogram("serve_stage_retry_ms", &bounds).observe(ms(self.retry_ns));
        telemetry::histogram("serve_stage_write_ms", &bounds).observe(ms(write_ns));
        let total =
            self.queue_wait_ns + self.assembly_ns + self.compute_ns + self.retry_ns + write_ns;
        telemetry::histogram("serve_request_ms", &bounds).observe(ms(total));
    }

    /// End-to-end latency in milliseconds given the final write stage.
    pub fn total_ms(&self, write_ns: u64) -> f64 {
        (self.queue_wait_ns + self.assembly_ns + self.compute_ns + self.retry_ns + write_ns)
            as f64
            / 1e6
    }
}

/// One terminal request outcome as the SLO window sees it.
#[derive(Debug, Clone, Copy)]
struct SloSample {
    /// Did the request get a 200 answer?
    ok: bool,
    /// Was it over the latency SLO?
    slow: bool,
    /// Answering die, when one was reached.
    die: Option<usize>,
}

/// Rolling-window availability and latency burn rates.
///
/// Two SLOs, both measured over the last `window` terminal outcomes:
///
/// * **availability** — at least `availability_target` of requests
///   answered (shed / unserveable / expired count against it);
/// * **latency** — at least `latency_target` of requests under
///   `latency_slo_ms`.
///
/// The burn rate is `violating_fraction / error_budget`: 1.0 means the
/// budget is being spent exactly as fast as the SLO allows, above 1.0
/// the window is out of compliance. Timing inputs are wall-clock and
/// flow only into the gauges/debug endpoint (metrics sinks), never
/// into deterministic responses.
pub struct SloTracker {
    inner: Mutex<VecDeque<SloSample>>,
    window: usize,
    availability_target: f64,
    latency_slo_ms: f64,
    latency_target: f64,
}

impl Default for SloTracker {
    fn default() -> Self {
        SloTracker::new(256, 0.99, 50.0, 0.95)
    }
}

impl SloTracker {
    /// Creates a tracker over the last `window` outcomes.
    pub fn new(
        window: usize,
        availability_target: f64,
        latency_slo_ms: f64,
        latency_target: f64,
    ) -> Self {
        assert!(window > 0, "SLO window must be positive");
        assert!(
            (0.0..1.0).contains(&(1.0 - availability_target))
                && availability_target < 1.0
                && latency_target < 1.0,
            "SLO targets must leave a non-empty error budget"
        );
        SloTracker {
            inner: Mutex::new(VecDeque::with_capacity(window)),
            window,
            availability_target,
            latency_slo_ms,
            latency_target,
        }
    }

    /// Records one terminal outcome and refreshes the burn gauges.
    pub fn record(&self, ok: bool, latency_ms: f64, die: Option<usize>) {
        let sample = SloSample { ok, slow: latency_ms > self.latency_slo_ms, die };
        {
            let mut win = super::lock_recover(&self.inner);
            if win.len() >= self.window {
                win.pop_front();
            }
            win.push_back(sample);
        }
        if telemetry::metrics_enabled() {
            let (avail, latency) = self.burns();
            telemetry::gauge("serve_slo_availability_burn").set(avail);
            telemetry::gauge("serve_slo_latency_burn").set(latency);
        }
    }

    /// `(availability_burn, latency_burn)` over the current window
    /// (both 0.0 while the window is empty).
    pub fn burns(&self) -> (f64, f64) {
        let win = super::lock_recover(&self.inner);
        if win.is_empty() {
            return (0.0, 0.0);
        }
        let n = win.len() as f64;
        let errors = win.iter().filter(|s| !s.ok).count() as f64;
        let slow = win.iter().filter(|s| s.slow).count() as f64;
        ((errors / n) / (1.0 - self.availability_target), (slow / n) / (1.0 - self.latency_target))
    }

    /// Availability burn restricted to outcomes answered by `die`
    /// (0.0 when the die has no samples in the window).
    pub fn die_burn(&self, die: usize) -> f64 {
        let win = super::lock_recover(&self.inner);
        let mut total = 0u64;
        let mut errors = 0u64;
        for s in win.iter().filter(|s| s.die == Some(die)) {
            total += 1;
            if !s.ok {
                errors += 1;
            }
        }
        if total == 0 {
            return 0.0;
        }
        (errors as f64 / total as f64) / (1.0 - self.availability_target)
    }

    /// The full SLO report for `GET /debug/slo`: window occupancy,
    /// both burn rates, and a per-die breakdown.
    pub fn report(&self, dies: usize) -> Json {
        let (availability_burn, latency_burn) = self.burns();
        let win = super::lock_recover(&self.inner);
        let n = win.len();
        let ok = win.iter().filter(|s| s.ok).count();
        let slow = win.iter().filter(|s| s.slow).count();
        let availability = if n == 0 { 1.0 } else { ok as f64 / n as f64 };
        let slow_fraction = if n == 0 { 0.0 } else { slow as f64 / n as f64 };
        let mut per_die = Vec::with_capacity(dies);
        for d in 0..dies {
            let mut total = 0u64;
            let mut errors = 0u64;
            for s in win.iter().filter(|s| s.die == Some(d)) {
                total += 1;
                if !s.ok {
                    errors += 1;
                }
            }
            let burn = if total == 0 {
                0.0
            } else {
                (errors as f64 / total as f64) / (1.0 - self.availability_target)
            };
            per_die.push(Json::obj([
                ("die", Json::Num(d as f64)),
                ("requests", Json::Num(total as f64)),
                ("errors", Json::Num(errors as f64)),
                ("burn", Json::Num(burn)),
            ]));
        }
        drop(win);
        Json::obj([
            ("window", Json::Num(n as f64)),
            ("window_capacity", Json::Num(self.window as f64)),
            ("availability", Json::Num(availability)),
            ("availability_target", Json::Num(self.availability_target)),
            ("availability_burn", Json::Num(availability_burn)),
            ("latency_slo_ms", Json::Num(self.latency_slo_ms)),
            ("latency_target", Json::Num(self.latency_target)),
            ("slow_fraction", Json::Num(slow_fraction)),
            ("latency_burn", Json::Num(latency_burn)),
            ("dies", Json::Arr(per_die)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(rid: u64) -> RequestTrace {
        RequestTrace {
            rid: RequestId(rid),
            batch: 3,
            die: 1,
            failovers: 2,
            retries: 1,
            queue_wait_ns: 1_000_000,
            assembly_ns: 50_000,
            compute_ns: 9_000_000,
            retry_ns: 2_000_000,
        }
    }

    #[test]
    fn header_round_trips_deterministic_fields_only() {
        let t = trace(41);
        let header = t.header_value();
        assert_eq!(header, "rid=41;batch=3;die=1;failovers=2;retries=1");
        let parsed = RequestTrace::parse_header(&header).unwrap();
        assert_eq!(parsed.rid, t.rid);
        assert_eq!(parsed.batch, t.batch);
        assert_eq!(parsed.die, t.die);
        assert_eq!(parsed.failovers, t.failovers);
        assert_eq!(parsed.retries, t.retries);
        assert_eq!(parsed.queue_wait_ns, 0, "timings never ride the header");
        assert!(RequestTrace::parse_header("rid=1;bogus=2").is_none());
        assert!(RequestTrace::parse_header("rid=1;batch=2").is_none());
    }

    #[test]
    fn observe_fills_every_stage_histogram() {
        let _guard = telemetry::test_lock();
        telemetry::reset();
        telemetry::set_enabled(true, false);
        let t = trace(7);
        t.observe(500_000);
        let snap = telemetry::snapshot();
        for stage in
            ["queue_wait", "batch_assembly", "die_compute", "retry", "write"]
        {
            let h = snap
                .histogram(&format!("serve_stage_{stage}_ms"))
                .unwrap_or_else(|| panic!("missing stage histogram {stage}"));
            assert_eq!(h.count, 1, "{stage}");
            assert_eq!(h.bounds, telemetry::serve_latency_buckets_ms());
        }
        let h = snap.histogram("serve_request_ms").unwrap();
        assert_eq!(h.count, 1);
        assert!((h.sum - t.total_ms(500_000)).abs() < 1e-9);
        telemetry::set_enabled(false, false);
        telemetry::reset();
    }

    #[test]
    fn burn_rates_track_the_rolling_window() {
        let slo = SloTracker::new(4, 0.99, 50.0, 0.95);
        assert_eq!(slo.burns(), (0.0, 0.0));
        for _ in 0..4 {
            slo.record(true, 10.0, Some(0));
        }
        let (avail, lat) = slo.burns();
        assert_eq!((avail, lat), (0.0, 0.0), "healthy window burns nothing");
        // One error + one slow answer in a window of 4: 25 % error rate
        // against a 1 % budget → burn 25; 25 % slow against 5 % → 5.
        slo.record(false, 0.0, None);
        slo.record(true, 80.0, Some(1));
        let (avail, lat) = slo.burns();
        assert!((avail - 25.0).abs() < 1e-9, "{avail}");
        assert!((lat - 5.0).abs() < 1e-9, "{lat}");
        // The window rolls: four fresh healthy samples evict the bad ones.
        for _ in 0..4 {
            slo.record(true, 10.0, Some(0));
        }
        assert_eq!(slo.burns(), (0.0, 0.0));
    }

    #[test]
    fn per_die_burn_isolates_the_sick_die() {
        let slo = SloTracker::new(8, 0.99, 50.0, 0.95);
        for _ in 0..3 {
            slo.record(true, 10.0, Some(0));
        }
        slo.record(false, 0.0, Some(1));
        slo.record(true, 10.0, Some(1));
        assert_eq!(slo.die_burn(0), 0.0);
        assert!((slo.die_burn(1) - 50.0).abs() < 1e-9);
        assert_eq!(slo.die_burn(2), 0.0, "unseen die has no burn");
        let report = slo.report(2);
        assert_eq!(report.get("window").and_then(Json::as_f64), Some(5.0));
        let dies = report.get("dies").and_then(Json::as_arr).unwrap();
        assert_eq!(dies.len(), 2);
        assert_eq!(dies[1].get("errors").and_then(Json::as_f64), Some(1.0));
        // The report must serialize (finite numbers only).
        let _ = report.to_string();
    }
}
