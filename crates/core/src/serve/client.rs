//! A minimal blocking HTTP/1.1 client for exercising the server from
//! tests and the `exp_serving` load campaign — same zero-dependency
//! discipline as the server: raw [`TcpStream`], one request per
//! connection, `Connection: close` framing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code, headers, and body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Case-insensitive header lookup (first match wins).
    pub fn header(&self, name: &str) -> Option<&str> {
        let needle = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == needle)
            .map(|(_, v)| v.as_str())
    }
}

/// Issues one request and reads the full response.
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed response
/// framing as [`std::io::Error`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<Response> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    let body_bytes = body.unwrap_or("").as_bytes();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body_bytes.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body_bytes)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Convenience: `POST /predict` with a single flattened sample.
pub fn predict(
    addr: SocketAddr,
    input: &[f32],
    timeout: Duration,
) -> std::io::Result<Response> {
    let elems: Vec<String> = input.iter().map(|x| format!("{x}")).collect();
    let body = format!("{{\"input\": [{}]}}", elems.join(", "));
    request(addr, "POST", "/predict", Some(&body), timeout)
}

/// Splits a raw HTTP/1.1 response into status + headers + body.
fn parse_response(raw: &[u8]) -> std::io::Result<Response> {
    let bad = |why: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, why.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF8 head"))?;
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':').ok_or_else(|| bad("header without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Response { status, headers, body: raw[head_end + 4..].to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response_with_headers() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\nX-NeuSpin-Trace: rid=4;batch=1;die=0;failovers=0;retries=0\r\n\r\nhi";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.text(), "hi");
        assert_eq!(resp.header("content-length"), Some("2"));
        assert_eq!(
            resp.header("X-NEUSPIN-TRACE"),
            Some("rid=4;batch=1;die=0;failovers=0;retries=0"),
            "lookup must be case-insensitive"
        );
        assert_eq!(resp.header("absent"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 banana\r\n\r\n").is_err());
        assert!(parse_response(b"HTTP/1.1 200 OK\r\nno-colon-line\r\n\r\n").is_err());
    }
}
