//! `neuspin-serve`: the fault-tolerant batched inference front door.
//!
//! A zero-dependency HTTP/1.1 server over [`std::net::TcpListener`]
//! and the existing [`ThreadPool`], serving a [`DieFleet`] of
//! independently-aging simulated dies:
//!
//! * `POST /predict` — one sample in (`{"input": [f32; D]}`), one
//!   uncertainty-annotated answer out. Requests coalesce in a bounded
//!   [`BatchQueue`] under a max-batch / max-wait policy before hitting
//!   the batched Monte-Carlo predict path.
//! * `GET /healthz` — fleet status: per-die latched health tier and
//!   served-sample counts.
//! * `GET /metrics` — the existing Prometheus text exposition
//!   ([`crate::telemetry::prometheus_text`]).
//! * `GET /debug/flight` — the flight recorder's current ring as
//!   JSONL ([`crate::flight`]); `GET /debug/slo` — the rolling
//!   availability/latency burn-rate report ([`trace::SloTracker`]).
//!
//! **Routing.** Every batch goes to the healthiest least-loaded die
//! ([`DieFleet::pick`]). A die whose latched policy is Abstain refuses
//! the batch and the batcher fails over — bounded retries, jittered
//! exponential backoff — to the next-healthiest die. Samples the
//! serving die *individually* abstained on (entropy over the
//! calibrated threshold) get one re-try round on a different die
//! before the abstention is surfaced to the client. When every die
//! abstains the request is answered `503`, and when queues are full
//! the server sheds load with `429` instead of queueing unboundedly.
//!
//! **Shutdown.** [`ServerHandle::shutdown`] drains: the acceptor stops,
//! queued connections are served, queued predictions are answered, and
//! only then do the workers exit — bounded by a deadline after which
//! remaining work is abandoned (reported in the [`DrainReport`]).
//!
//! **Determinism.** Per-batch prediction seeds derive from the
//! configured master seed and a batch counter via SplitMix64. Batch
//! *composition* depends on arrival timing, but a given `(die state,
//! batch composition, batch index)` always produces bit-identical
//! predictions — see DESIGN.md, "Serving and failover". Failover
//! backoff jitter draws from its own tagged stream ([`TAG_BACKOFF`]),
//! never from anything that feeds predictions, so injected retries
//! cannot shift an answer.
//!
//! **Accounting.** Every accepted connection ends in exactly one
//! terminal counter — see [`StatsSnapshot::is_conserved`]. The serve
//! layer also carries the chaos-injection hooks ([`crate::chaos`]):
//! a quiet [`ChaosPlan`] (the default) probes cost one hash and never
//! fire; a campaign turns intensities up in [`ServeConfig::chaos`].
//!
//! **Lineage.** Every parsed `/predict` body gets a deterministic
//! [`trace::RequestId`] and a [`trace::RequestTrace`] waterfall:
//! identity fields ride the `X-NeuSpin-Trace` response header and the
//! flight-recorder events; timing fields feed only the per-stage
//! histograms (the PR-5 determinism contract). The flight recorder
//! ([`crate::flight`]) logs routing, failover, retry, shed, chaos,
//! crash/restore, and drain events — each with the request ids
//! involved — and dumps its ring on caught panics, die crashes, and
//! drain.

pub mod batch;
pub mod client;
pub mod fleet;
pub mod http;
pub mod trace;

use crate::chaos::{ChaosConfig, ChaosPlan, ChaosSite};
use crate::flight;
use crate::health::HealthPolicy;
use crate::json::Json;
use crate::pool::ThreadPool;
use crate::rng::{stream, RngExt, SplitMix64, StdRng};
use batch::{BatchQueue, PushError};
use fleet::{DieFleet, FleetError};
use http::Request;
use trace::{RequestId, RequestTrace, SloTracker};
use neuspin_nn::Tensor;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Tag of the failover-backoff RNG stream (split from the serve master
/// seed, one stream per batcher). Backoff jitter draws from this stream
/// and nothing else, so chaos-induced retries can never shift the
/// per-batch prediction-seed assignment.
const TAG_BACKOFF: u64 = 0xBAC0_FF5E;

/// Locks a serving mutex, recovering a poisoned one (a worker panicked
/// while holding it) instead of propagating: every serving critical
/// section leaves its protected state valid at all panic points, so
/// recovery is always safe. Counted in `serve_lock_poisoned_total`.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        count_lock_poisoned();
        poisoned.into_inner()
    })
}

/// Bumps the poisoned-lock recovery counter.
pub(crate) fn count_lock_poisoned() {
    crate::telemetry::counter("serve_lock_poisoned_total").inc();
}

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Per-sample input shape (without the batch axis).
    pub input_shape: Vec<usize>,
    /// Most samples coalesced into one predict batch.
    pub max_batch: usize,
    /// How long a batch lingers for stragglers once it has its first
    /// sample.
    pub max_wait: Duration,
    /// Bound on queued predict samples (beyond: shed with 429).
    pub queue_capacity: usize,
    /// Bound on accepted-but-unserviced connections (beyond: 429).
    pub conn_capacity: usize,
    /// Connection-handling workers.
    pub http_workers: usize,
    /// Batch-assembly/dispatch workers (keep at 1 for a deterministic
    /// batch-index → seed mapping).
    pub batchers: usize,
    /// Bound on whole-batch failover attempts (distinct dies tried).
    pub max_retries: usize,
    /// Base delay of the jittered exponential failover backoff.
    pub backoff_base: Duration,
    /// Per-request deadline: how long a connection waits for its
    /// prediction before answering 504.
    pub request_timeout: Duration,
    /// Socket read timeout while parsing a request.
    pub read_timeout: Duration,
    /// Master seed for the per-batch prediction-seed stream.
    pub seed: u64,
    /// Fault-injection intensities. The default is fully quiet; chaos
    /// campaigns raise per-site intensities (see [`crate::chaos`]).
    pub chaos: ChaosConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            input_shape: vec![1, 8, 8],
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 64,
            conn_capacity: 64,
            http_workers: 4,
            batchers: 1,
            max_retries: 3,
            backoff_base: Duration::from_micros(200),
            request_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(2),
            seed: 0x5E4E,
            chaos: ChaosConfig::default(),
        }
    }
}

impl ServeConfig {
    fn input_len(&self) -> usize {
        self.input_shape.iter().product()
    }
}

/// Monotonic serving counters (atomics; read with [`ServeStats::snapshot`]).
///
/// Terminal counters (everything except `accepted`, `failovers`, and
/// `sample_retries`) are bumped exactly once per connection, at the
/// point the response is written — never in the batcher, whose verdicts
/// reach the connection worker over a channel and are counted there.
/// That single-count discipline is what makes the conservation law of
/// [`StatsSnapshot::is_conserved`] exact.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Predict requests answered 200 with an accepted prediction.
    pub answered: AtomicU64,
    /// Predict requests answered 200 but flagged abstained.
    pub abstained: AtomicU64,
    /// Requests shed with 429 (either queue full).
    pub shed: AtomicU64,
    /// Whole-batch failovers (a die refused; batch retried elsewhere).
    pub failovers: AtomicU64,
    /// Samples retried on a second die after per-sample abstention.
    pub sample_retries: AtomicU64,
    /// Requests answered 503 because every die was abstaining.
    pub unserveable: AtomicU64,
    /// Requests answered 504 (deadline passed before a prediction).
    pub deadline_expired: AtomicU64,
    /// Malformed/unroutable requests answered 4xx.
    pub bad_requests: AtomicU64,
    /// Requests answered 503 because the server was draining.
    pub draining: AtomicU64,
    /// `GET /healthz` and `GET /metrics` requests answered.
    pub info_requests: AtomicU64,
}

/// A point-in-time copy of [`ServeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// 200s with an accepted prediction.
    pub answered: u64,
    /// 200s flagged abstained.
    pub abstained: u64,
    /// 429s.
    pub shed: u64,
    /// Whole-batch failovers.
    pub failovers: u64,
    /// Per-sample failover retries.
    pub sample_retries: u64,
    /// 503s (fleet-wide abstention).
    pub unserveable: u64,
    /// 504s.
    pub deadline_expired: u64,
    /// 4xxs.
    pub bad_requests: u64,
    /// 503s while draining.
    pub draining: u64,
    /// healthz/metrics responses.
    pub info_requests: u64,
}

impl ServeStats {
    /// Reads every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            abstained: self.abstained.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            sample_retries: self.sample_retries.load(Ordering::Relaxed),
            unserveable: self.unserveable.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::Relaxed),
            info_requests: self.info_requests.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Requests that got *some* terminal answer.
    pub fn responded(&self) -> u64 {
        self.answered
            + self.abstained
            + self.shed
            + self.unserveable
            + self.deadline_expired
            + self.bad_requests
            + self.draining
            + self.info_requests
    }

    /// The request-conservation law: at quiescence (no in-flight
    /// connections — e.g. after a graceful drain), every accepted
    /// connection has exactly one terminal outcome. A force-stopped
    /// drain abandons in-flight work, which legitimately breaks the
    /// equality; chaos campaigns gate on it after graceful drains only.
    pub fn is_conserved(&self) -> bool {
        self.accepted == self.responded()
    }
}

/// How one predict request was resolved (sent from batcher to the
/// waiting connection worker).
#[derive(Debug, Clone)]
enum Outcome {
    Answered {
        class: usize,
        probs: Vec<f32>,
        entropy: f64,
        abstained: bool,
        /// The request's lineage: identity fields (rid, batch, die,
        /// failovers, retries) plus the wall-clock waterfall so far.
        trace: RequestTrace,
        /// When the batcher finished computing — the write stage is
        /// measured from here by the connection worker.
        computed_at: Instant,
    },
    /// Every die in the fleet is at the Abstain tier.
    Unserveable,
    /// The request's deadline passed while it was still queued.
    Expired,
}

/// One queued predict sample.
struct PredictJob {
    /// Lineage id, assigned in arrival order at accept.
    rid: RequestId,
    input: Vec<f32>,
    deadline: Instant,
    /// When the request was accepted (queue-wait stage starts here).
    accepted_at: Instant,
    resp: mpsc::Sender<Outcome>,
}

/// Shared server state (one `Arc` across acceptor/batchers/workers).
struct ServeState {
    config: ServeConfig,
    fleet: DieFleet,
    listener: Mutex<Option<TcpListener>>,
    conns: BatchQueue<TcpStream>,
    predicts: BatchQueue<PredictJob>,
    shutdown: AtomicBool,
    force_stop: AtomicBool,
    done: AtomicBool,
    live_conn_workers: AtomicUsize,
    batch_counter: AtomicU64,
    conn_jobs: AtomicU64,
    /// Next request id (dense, assigned in accept order).
    next_rid: AtomicU64,
    stats: ServeStats,
    chaos: ChaosPlan,
    /// Rolling-window SLO burn tracker fed by terminal outcomes.
    slo: SloTracker,
}

/// What the drain achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// True when every worker exited before the deadline.
    pub drained: bool,
    /// True when the deadline forced abandonment of remaining work.
    pub forced: bool,
    /// Requests still queued (either queue) when force-stop fired.
    pub abandoned: usize,
}

/// A running server: address, stats, fleet access, and shutdown.
pub struct ServerHandle {
    state: Arc<ServeState>,
    addr: SocketAddr,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.state.stats.snapshot()
    }

    /// The fleet behind the server (for scenario drivers: aging a die
    /// mid-traffic, inspecting tiers).
    pub fn fleet(&self) -> &DieFleet {
        &self.state.fleet
    }

    /// Graceful shutdown: stop accepting, drain queued connections and
    /// predictions, bounded by `deadline`. Idempotent.
    ///
    /// The first (real) drain is also recorded post-hoc: the
    /// [`DrainReport`] lands in the registry counters
    /// (`serve_drains_total`, `serve_drain_forced_total`,
    /// `serve_drain_abandoned_total`), a `drain` event enters the
    /// flight recorder, and the recorder dumps to its configured path.
    pub fn shutdown(&mut self, deadline: Duration) -> DrainReport {
        let state = &self.state;
        let first = self.join.is_some();
        state.shutdown.store(true, Ordering::SeqCst);
        let start = Instant::now();
        while !state.done.load(Ordering::SeqCst) && start.elapsed() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let drained = state.done.load(Ordering::SeqCst);
        let mut abandoned = 0;
        if !drained {
            abandoned = state.conns.len() + state.predicts.len();
            state.force_stop.store(true, Ordering::SeqCst);
            state.conns.close();
            state.predicts.close();
        }
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        let report = DrainReport { drained, forced: !drained, abandoned };
        if first {
            crate::telemetry::counter("serve_drains_total").inc();
            if report.forced {
                crate::telemetry::counter("serve_drain_forced_total").inc();
            }
            crate::telemetry::counter("serve_drain_abandoned_total").add(abandoned as u64);
            flight::record(
                "drain",
                vec![
                    ("drained", Json::Bool(report.drained)),
                    ("forced", Json::Bool(report.forced)),
                    ("abandoned", Json::Num(abandoned as f64)),
                ],
            );
            flight::dump_if_configured();
        }
        report
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.shutdown(Duration::from_secs(5));
        }
    }
}

/// Starts the server over `fleet` and returns once the listener is
/// bound. The serving loop (acceptor + batchers + connection workers,
/// multiplexed over one [`ThreadPool::run_chunked`] call) runs on a
/// background thread until [`ServerHandle::shutdown`].
///
/// # Errors
///
/// Returns the bind error if the address cannot be bound.
pub fn serve(fleet: DieFleet, config: ServeConfig) -> std::io::Result<ServerHandle> {
    assert!(config.max_batch > 0, "max_batch must be positive");
    assert!(config.http_workers > 0, "need at least one connection worker");
    assert!(config.batchers > 0, "need at least one batcher");
    assert!(config.input_len() > 0, "input_shape must be non-empty");
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServeState {
        conns: BatchQueue::new(config.conn_capacity),
        predicts: BatchQueue::new(config.queue_capacity),
        listener: Mutex::new(Some(listener)),
        shutdown: AtomicBool::new(false),
        force_stop: AtomicBool::new(false),
        done: AtomicBool::new(false),
        live_conn_workers: AtomicUsize::new(config.http_workers),
        batch_counter: AtomicU64::new(0),
        conn_jobs: AtomicU64::new(0),
        next_rid: AtomicU64::new(0),
        stats: ServeStats::default(),
        chaos: ChaosPlan::new(config.chaos),
        slo: SloTracker::default(),
        fleet,
        config,
    });
    let loop_state = Arc::clone(&state);
    let join = std::thread::Builder::new()
        .name("neuspin-serve".to_string())
        .spawn(move || {
            let jobs = 1 + loop_state.config.batchers + loop_state.config.http_workers;
            // One pool thread per role: every job is a long-running
            // loop, so the pool must not multiplex them.
            let pool = ThreadPool::new(jobs);
            let state = &loop_state;
            pool.run_chunked(
                jobs,
                |_w| (),
                |(), t| {
                    if t == 0 {
                        run_acceptor(state);
                    } else if t <= state.config.batchers {
                        run_batcher(state, t - 1);
                    } else {
                        run_conn_worker(state);
                    }
                },
            );
            loop_state.done.store(true, Ordering::SeqCst);
        })?;
    Ok(ServerHandle { state, addr, join: Some(join) })
}

/// Job 0: accept connections, shed when the connection queue is full.
fn run_acceptor(state: &ServeState) {
    let listener = lock_recover(&state.listener).take().expect("acceptor started twice");
    listener.set_nonblocking(true).expect("set_nonblocking failed");
    while !state.shutdown.load(Ordering::SeqCst) && !state.force_stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                state.stats.accepted.fetch_add(1, Ordering::Relaxed);
                if let Err((mut stream, _)) = state.conns.try_push(stream) {
                    // Too many unserviced connections: shed right here.
                    state.stats.shed.fetch_add(1, Ordering::Relaxed);
                    crate::telemetry::counter("serve_shed_total").inc();
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
                    let _ = http::write_json_response(
                        &mut stream,
                        429,
                        "Too Many Requests",
                        "{\"error\": \"connection queue full\"}",
                    );
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // No more producers: once drained, the connection workers exit.
    state.conns.close();
}

/// Batcher job: coalesce queued samples and dispatch to the fleet.
///
/// Backoff jitter draws from a dedicated stream keyed by the batcher
/// index — isolated from the per-batch prediction seeds (pure functions
/// of the batch counter), so however many retries chaos injects, the
/// seed each batch predicts with is untouched.
fn run_batcher(state: &ServeState, batcher: usize) {
    let mut backoff_rng = stream(state.config.seed, TAG_BACKOFF.wrapping_add(batcher as u64));
    let poll = Duration::from_millis(5);
    loop {
        if state.force_stop.load(Ordering::SeqCst) {
            break;
        }
        let batch =
            state.predicts.pop_batch(state.config.max_batch, poll, state.config.max_wait);
        if batch.is_empty() {
            if state.predicts.is_closed() && state.predicts.is_empty() {
                break;
            }
            continue;
        }
        execute_batch(state, batch, &mut backoff_rng);
    }
}

/// Per-batch prediction seed: SplitMix64 stream over the batch index,
/// keyed by the master seed. Batch `k` always predicts with the same
/// seed, whatever thread runs it.
fn batch_seed(master: u64, index: u64) -> u64 {
    let mut mix = SplitMix64::new(master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    mix.next_u64()
}

/// Runs one coalesced batch through the fleet with failover.
///
/// Stage accounting: `queue_wait` is accept → pop (per request);
/// `batch_assembly` is pop → tensor built (shared by the batch);
/// `die_compute` is the successful MC forward; everything else in the
/// dispatch window — chaos stalls/spikes, failed attempts, backoff,
/// and the per-sample retry round — lands in the `retry` stage. All of
/// it is wall-clock and flows only into histograms; the flight events
/// recorded here carry deterministic fields (batch index, die ids,
/// request ids) exclusively.
fn execute_batch(state: &ServeState, mut batch: Vec<PredictJob>, rng: &mut StdRng) {
    let popped_at = Instant::now();
    // Expire whatever already missed its deadline (the connection
    // worker has answered 504 and gone; don't burn MC passes on it).
    let mut live = Vec::with_capacity(batch.len());
    for job in batch.drain(..) {
        if popped_at >= job.deadline {
            flight::record("expired", vec![("rid", Json::Num(job.rid.0 as f64))]);
            let _ = job.resp.send(Outcome::Expired);
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }
    let rids: Vec<RequestId> = live.iter().map(|j| j.rid).collect();

    let d = state.config.input_len();
    let mut shape = vec![live.len()];
    shape.extend_from_slice(&state.config.input_shape);
    let data: Vec<f32> = live.iter().flat_map(|j| j.input.iter().copied()).collect();
    let inputs = Tensor::from_vec(data, &shape);
    let index = state.batch_counter.fetch_add(1, Ordering::Relaxed);
    let seed = batch_seed(state.config.seed, index);
    let assembly_ns = elapsed_ns(popped_at);
    let dispatch_start = Instant::now();
    if state.chaos.fires(ChaosSite::QueueStall, index) {
        crate::telemetry::counter("serve_chaos_stalls_total").inc();
        flight::record(
            "chaos_stall",
            vec![("batch", Json::Num(index as f64)), ("rids", trace::rids_json(&rids))],
        );
        std::thread::sleep(Duration::from_millis(state.chaos.config().stall_millis));
    }

    // Whole-batch failover: walk the fleet healthiest-first with
    // jittered exponential backoff between attempts.
    let mut tried: Vec<usize> = Vec::new();
    let mut report = None;
    let mut compute_ns = 0u64;
    for attempt in 0..=state.config.max_retries {
        let Some(die) = state.fleet.pick(&tried) else { break };
        flight::record(
            "route",
            vec![
                ("batch", Json::Num(index as f64)),
                ("attempt", Json::Num(attempt as f64)),
                ("die", Json::Num(die as f64)),
                ("rids", trace::rids_json(&rids)),
            ],
        );
        let spike_key =
            index.wrapping_mul(state.fleet.len() as u64).wrapping_add(die as u64);
        if state.chaos.fires(ChaosSite::LatencySpike, spike_key) {
            crate::telemetry::counter("serve_chaos_spikes_total").inc();
            flight::record(
                "chaos_spike",
                vec![
                    ("batch", Json::Num(index as f64)),
                    ("die", Json::Num(die as f64)),
                    ("rids", trace::rids_json(&rids)),
                ],
            );
            std::thread::sleep(Duration::from_millis(state.chaos.config().spike_millis));
        }
        let attempt_start = Instant::now();
        match state.fleet.predict_on(die, &inputs, seed) {
            Ok(r) => {
                compute_ns = elapsed_ns(attempt_start);
                report = Some((die, r));
                break;
            }
            Err(
                err @ (FleetError::DieAbstaining { .. }
                | FleetError::DieDown { .. }
                | FleetError::NoEligibleDie),
            ) => {
                flight::record(
                    "failover",
                    vec![
                        ("batch", Json::Num(index as f64)),
                        ("die", Json::Num(die as f64)),
                        ("err", Json::Str(fleet_err_name(&err).to_string())),
                        ("rids", trace::rids_json(&rids)),
                    ],
                );
                tried.push(die);
                state.stats.failovers.fetch_add(live.len() as u64, Ordering::Relaxed);
                crate::telemetry::counter("serve_failover_total").add(live.len() as u64);
                if attempt < state.config.max_retries {
                    backoff(state.config.backoff_base, attempt, rng);
                }
            }
        }
    }
    let Some((die, report)) = report else {
        // Fleet-wide abstention: answer honestly rather than dropping.
        // (Counted by the connection worker when it writes the 503, so
        // the terminal outcome is counted exactly once.)
        flight::record(
            "unserveable",
            vec![("batch", Json::Num(index as f64)), ("rids", trace::rids_json(&rids))],
        );
        for job in live {
            let _ = job.resp.send(Outcome::Unserveable);
        }
        return;
    };
    let failovers = tried.len() as u64;

    // Per-sample retry round: samples this die abstained on get one
    // shot on a different die before the abstention is surfaced.
    let abstained_rows: Vec<usize> = (0..live.len())
        .filter(|&i| !report.gated.accepted[i])
        .collect();
    let mut retried: Option<(usize, neuspin_bayes::Predictive, Vec<bool>)> = None;
    if !abstained_rows.is_empty() {
        let mut exclude = tried.clone();
        exclude.push(die);
        if let Some(alt) = state.fleet.pick(&exclude) {
            let sub_data: Vec<f32> = abstained_rows
                .iter()
                .flat_map(|&i| live[i].input.iter().copied())
                .collect();
            let mut sub_shape = vec![abstained_rows.len()];
            sub_shape.extend_from_slice(&state.config.input_shape);
            let sub = Tensor::from_vec(sub_data, &sub_shape);
            let sub_seed = batch_seed(state.config.seed, index ^ 0x8000_0000_0000_0000);
            if let Ok(r2) = state.fleet.predict_on(alt, &sub, sub_seed) {
                state
                    .stats
                    .sample_retries
                    .fetch_add(abstained_rows.len() as u64, Ordering::Relaxed);
                let retry_rids: Vec<RequestId> =
                    abstained_rows.iter().map(|&i| live[i].rid).collect();
                flight::record(
                    "sample_retry",
                    vec![
                        ("batch", Json::Num(index as f64)),
                        ("from_die", Json::Num(die as f64)),
                        ("alt_die", Json::Num(alt as f64)),
                        ("rids", trace::rids_json(&retry_rids)),
                    ],
                );
                retried = Some((alt, r2.predictive, r2.gated.accepted));
            }
        }
    }
    // The dispatch window minus the successful forward: stalls, spikes,
    // failed attempts, backoff, and the per-sample retry round.
    let retry_ns = elapsed_ns(dispatch_start).saturating_sub(compute_ns);
    let computed_at = Instant::now();

    let classes = report.predictive.mean_probs.shape()[1];
    let mut abstained_final = 0u64;
    let mut outbox = Vec::with_capacity(live.len());
    for (i, job) in live.into_iter().enumerate() {
        // Default answer: carved from the primary batch report.
        let mut src =
            (&report.predictive, i, die, !report.gated.accepted[i], failovers, 0u32);
        if let Some((alt, pred2, accepted2)) = retried.as_ref() {
            if let Some(sub_i) = abstained_rows.iter().position(|&r| r == i) {
                src = (pred2, sub_i, *alt, !accepted2[sub_i], failovers + 1, 1);
            }
        }
        let (pred, row, from_die, abstained, fo, retries) = src;
        abstained_final += u64::from(abstained);
        let probs = pred.mean_probs.row(row).to_vec();
        let class = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(k, _)| k)
            .unwrap_or(0);
        debug_assert_eq!(probs.len(), classes);
        debug_assert_eq!(job.input.len(), d);
        let trace = RequestTrace {
            rid: job.rid,
            batch: index,
            die: from_die,
            failovers: fo as u32,
            retries,
            queue_wait_ns: duration_ns(popped_at.saturating_duration_since(job.accepted_at)),
            assembly_ns,
            compute_ns,
            retry_ns,
        };
        let outcome = Outcome::Answered {
            class,
            probs,
            entropy: pred.entropy[row],
            abstained,
            trace,
            computed_at,
        };
        outbox.push((job, outcome));
    }
    // Record before sending: once an outcome is sent, the connection
    // worker (and, closed-loop, the client's next request) may record
    // further events — the batch's own event must already be sequenced.
    flight::record(
        "answered",
        vec![
            ("batch", Json::Num(index as f64)),
            ("die", Json::Num(die as f64)),
            ("failovers", Json::Num(failovers as f64)),
            ("abstained", Json::Num(abstained_final as f64)),
            ("rids", trace::rids_json(&rids)),
        ],
    );
    for (job, outcome) in outbox {
        let _ = job.resp.send(outcome);
    }
}

/// Nanoseconds since `start`, saturating into `u64`.
fn elapsed_ns(start: Instant) -> u64 {
    duration_ns(start.elapsed())
}

/// A duration as nanoseconds, saturating into `u64`.
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The flight-event name of a fleet routing error.
fn fleet_err_name(err: &FleetError) -> &'static str {
    match err {
        FleetError::DieAbstaining { .. } => "die_abstaining",
        FleetError::DieDown { .. } => "die_down",
        FleetError::NoEligibleDie => "no_eligible_die",
    }
}

/// Jittered exponential backoff: `base · 2^attempt · U(0.5, 1.5)`.
fn backoff(base: Duration, attempt: usize, rng: &mut StdRng) {
    let exp = base.as_secs_f64() * (1u64 << attempt.min(16)) as f64;
    let jitter = 0.5 + rng.random::<f64>();
    std::thread::sleep(Duration::from_secs_f64(exp * jitter));
}

/// Connection-worker job: pull connections and answer them.
fn run_conn_worker(state: &ServeState) {
    let poll = Duration::from_millis(5);
    loop {
        if state.force_stop.load(Ordering::SeqCst) {
            break;
        }
        let mut conns = state.conns.pop_batch(1, poll, Duration::ZERO);
        let Some(stream) = conns.pop() else {
            if state.conns.is_closed() && state.conns.is_empty() {
                break;
            }
            continue;
        };
        // A hostile or broken connection must never take the worker
        // down with it. Chaos panics fire at the job boundary — after
        // the response for this job was written — so a surviving worker
        // loop proves the panic cost nothing client-visible.
        let job_id = state.conn_jobs.fetch_add(1, Ordering::Relaxed);
        // Probing is pure, so the injection is known before the job
        // runs; recording it *here* keeps the event strictly before
        // anything the job (or, closed-loop, the client's next
        // request) records. `rid` is the id the connection's request
        // will get if it parses — the request the panic rides behind.
        let will_panic = state.chaos.fires(ChaosSite::WorkerPanic, job_id);
        if will_panic {
            flight::record(
                "chaos_worker_panic",
                vec![
                    ("job", Json::Num(job_id as f64)),
                    ("rid", Json::Num(state.next_rid.load(Ordering::Relaxed) as f64)),
                ],
            );
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(state, stream);
            if will_panic {
                crate::telemetry::counter("serve_chaos_worker_panics_total").inc();
                panic!("chaos: injected connection-worker panic");
            }
        }));
        if result.is_err() {
            crate::telemetry::counter("serve_conn_panics_total").inc();
            // The black-box moment: a worker just died mid-flight.
            flight::dump_if_configured();
        }
    }
    // The last connection worker out closes the predict queue: no
    // in-flight connection remains that could enqueue more work, so
    // the batchers can drain and exit.
    if state.live_conn_workers.fetch_sub(1, Ordering::SeqCst) == 1 {
        state.predicts.close();
    }
}

/// Parses, routes, and answers one connection.
fn handle_connection(state: &ServeState, mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_write_timeout(Some(state.config.read_timeout));
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(err) => {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            if let Some((code, reason)) = err.status() {
                let body = Json::obj([("error", Json::Str(err.to_string()))]).to_string();
                let _ = http::write_json_response(&mut stream, code, reason, &body);
                // The request may have unread bytes left (an oversized
                // head stops reading mid-stream). Closing now would RST
                // the response out of the client's buffer; drain a
                // bounded amount first so the error code is delivered.
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let mut sink = [0u8; 4096];
                for _ in 0..64 {
                    match std::io::Read::read(&mut stream, &mut sink) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
            }
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/predict") => handle_predict(state, &mut stream, &request),
        ("GET", "/healthz") => {
            state.stats.info_requests.fetch_add(1, Ordering::Relaxed);
            handle_healthz(state, &mut stream);
        }
        ("GET", "/metrics") => {
            state.stats.info_requests.fetch_add(1, Ordering::Relaxed);
            let text = crate::telemetry::prometheus_text();
            let _ = http::write_response(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                text.as_bytes(),
            );
        }
        ("GET", "/debug/flight") => {
            // The live black box: the current ring as JSONL. Info
            // traffic records no flight events itself, so scraping
            // the recorder never perturbs what it records.
            state.stats.info_requests.fetch_add(1, Ordering::Relaxed);
            let dump = flight::to_jsonl();
            let _ = http::write_response(
                &mut stream,
                200,
                "OK",
                "application/jsonl",
                dump.as_bytes(),
            );
        }
        ("GET", "/debug/slo") => {
            state.stats.info_requests.fetch_add(1, Ordering::Relaxed);
            let body = state.slo.report(state.fleet.len()).to_string();
            let _ = http::write_json_response(&mut stream, 200, "OK", &body);
        }
        ("GET", "/predict") | ("POST", "/healthz") | ("POST", "/metrics") => {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_json_response(
                &mut stream,
                405,
                "Method Not Allowed",
                "{\"error\": \"method not allowed\"}",
            );
        }
        _ => {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_json_response(
                &mut stream,
                404,
                "Not Found",
                "{\"error\": \"unknown path\"}",
            );
        }
    }
}

/// `POST /predict`: validate, enqueue, await the batcher's outcome.
fn handle_predict(state: &ServeState, stream: &mut TcpStream, request: &Request) {
    let accepted_at = Instant::now();
    let input = match parse_predict_body(&request.body, state.config.input_len()) {
        Ok(v) => v,
        Err(why) => {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let body = Json::obj([("error", Json::Str(why.to_string()))]).to_string();
            let _ = http::write_json_response(stream, 400, "Bad Request", &body);
            return;
        }
    };
    // Lineage starts here: a parsed predict body gets the next dense
    // request id, whatever its fate (queued, shed, or drained).
    let rid = RequestId(state.next_rid.fetch_add(1, Ordering::Relaxed));
    let deadline = accepted_at + state.config.request_timeout;
    let (tx, rx) = mpsc::channel();
    let job = PredictJob { rid, input, deadline, accepted_at, resp: tx };
    if let Err((_, err)) = state.predicts.try_push(job) {
        match err {
            PushError::Full => {
                state.stats.shed.fetch_add(1, Ordering::Relaxed);
                crate::telemetry::counter("serve_shed_total").inc();
                flight::record("shed", vec![("rid", Json::Num(rid.0 as f64))]);
                state.slo.record(false, 0.0, None);
                let _ = http::write_json_response(
                    stream,
                    429,
                    "Too Many Requests",
                    "{\"error\": \"predict queue full\"}",
                );
            }
            PushError::Closed => {
                state.stats.draining.fetch_add(1, Ordering::Relaxed);
                let _ = http::write_json_response(
                    stream,
                    503,
                    "Service Unavailable",
                    "{\"error\": \"server is draining\"}",
                );
            }
        }
        return;
    }
    crate::telemetry::counter("serve_requests_total").inc();
    let wait = state.config.request_timeout + Duration::from_millis(250);
    match rx.recv_timeout(wait) {
        Ok(Outcome::Answered { class, probs, entropy, abstained, trace, computed_at }) => {
            if abstained {
                state.stats.abstained.fetch_add(1, Ordering::Relaxed);
            } else {
                state.stats.answered.fetch_add(1, Ordering::Relaxed);
            }
            let body = Json::obj([
                ("class", Json::Num(class as f64)),
                ("entropy", Json::Num(entropy)),
                ("abstained", Json::Bool(abstained)),
                ("die", Json::Num(trace.die as f64)),
                ("failovers", Json::Num(f64::from(trace.failovers))),
                (
                    "probs",
                    Json::Arr(probs.iter().map(|&p| Json::Num(f64::from(p))).collect()),
                ),
            ])
            .to_string();
            let _ = http::write_json_response_with(
                stream,
                200,
                "OK",
                &body,
                &[("X-NeuSpin-Trace", &trace.header_value())],
            );
            // Write stage: compute finished → response bytes on the
            // wire. Observed after the write so it includes it.
            let write_ns = elapsed_ns(computed_at);
            trace.observe(write_ns);
            state.slo.record(true, trace.total_ms(write_ns), Some(trace.die));
        }
        Ok(Outcome::Unserveable) => {
            state.stats.unserveable.fetch_add(1, Ordering::Relaxed);
            state.slo.record(false, 0.0, None);
            let _ = http::write_json_response(
                stream,
                503,
                "Service Unavailable",
                "{\"error\": \"all dies abstaining\"}",
            );
        }
        Ok(Outcome::Expired) | Err(_) => {
            state.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
            state.slo.record(false, 0.0, None);
            let _ = http::write_json_response(
                stream,
                504,
                "Gateway Timeout",
                "{\"error\": \"prediction deadline expired\"}",
            );
        }
    }
}

/// Validates `{"input": [f32; D]}`.
fn parse_predict_body(body: &[u8], want_len: usize) -> Result<Vec<f32>, &'static str> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8")?;
    let json = crate::json::parse(text).map_err(|_| "body is not valid JSON")?;
    let arr = json
        .get("input")
        .and_then(|v| v.as_arr())
        .ok_or("body must be {\"input\": [numbers]}")?;
    if arr.len() != want_len {
        return Err("input has the wrong number of elements");
    }
    let mut out = Vec::with_capacity(arr.len());
    for v in arr {
        let x = v.as_f64().ok_or("input elements must be numbers")?;
        if !x.is_finite() {
            return Err("input elements must be finite");
        }
        out.push(x as f32);
    }
    Ok(out)
}

/// `GET /healthz`: fleet snapshot (with per-die SLO burn); 503 once no
/// die is eligible.
fn handle_healthz(state: &ServeState, stream: &mut TcpStream) {
    let snapshot = state.fleet.snapshot();
    let eligible = state.fleet.eligible_count();
    let dies: Vec<Json> = snapshot
        .iter()
        .map(|d| {
            Json::obj([
                ("id", Json::Num(d.id as f64)),
                ("tier", Json::Str(d.policy.to_string())),
                ("tier_index", Json::Num(f64::from(d.policy.tier_index()))),
                ("served", Json::Num(d.served as f64)),
                ("down", Json::Bool(d.down)),
                ("burn", Json::Num(state.slo.die_burn(d.id))),
            ])
        })
        .collect();
    let status = if eligible == 0 {
        "unserveable"
    } else if eligible < snapshot.len() || snapshot.iter().any(|d| d.policy != HealthPolicy::Healthy)
    {
        "degraded"
    } else {
        "ok"
    };
    let body = Json::obj([
        ("status", Json::Str(status.to_string())),
        ("eligible", Json::Num(eligible as f64)),
        ("dies", Json::Arr(dies)),
    ])
    .to_string();
    if eligible == 0 {
        let _ = http::write_json_response(stream, 503, "Service Unavailable", &body);
    } else {
        let _ = http::write_json_response(stream, 200, "OK", &body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;
    use crate::testutil::{small_commissioned_supervisor, small_inputs};

    const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

    fn two_die_fleet(seed: u64) -> DieFleet {
        DieFleet::new(vec![
            small_commissioned_supervisor(seed),
            small_commissioned_supervisor(seed + 1),
        ])
    }

    fn sample(i: usize) -> Vec<f32> {
        (0..64).map(|k| ((i * 64 + k) % 7) as f32 * 0.11 - 0.3).collect()
    }

    #[test]
    fn stats_conservation_holds_across_mixed_traffic() {
        let mut handle = serve(two_die_fleet(70), ServeConfig::default()).unwrap();
        let addr = handle.addr();
        for i in 0..6 {
            let resp = client::predict(addr, &sample(i), CLIENT_TIMEOUT).unwrap();
            assert_eq!(resp.status, 200, "{}", resp.text());
        }
        let bad = [
            ("POST", "/predict", Some("{\"input\": \"nope\"}"), 400),
            ("POST", "/predict", Some("this is not json"), 400),
            ("GET", "/nope", None, 404),
            ("GET", "/predict", None, 405),
        ];
        for (method, path, body, want) in bad {
            let resp = client::request(addr, method, path, body, CLIENT_TIMEOUT).unwrap();
            assert_eq!(resp.status, want, "{method} {path}: {}", resp.text());
        }
        assert_eq!(client::request(addr, "GET", "/healthz", None, CLIENT_TIMEOUT).unwrap().status, 200);
        assert_eq!(client::request(addr, "GET", "/metrics", None, CLIENT_TIMEOUT).unwrap().status, 200);
        assert_eq!(client::request(addr, "GET", "/debug/flight", None, CLIENT_TIMEOUT).unwrap().status, 200);
        assert_eq!(client::request(addr, "GET", "/debug/slo", None, CLIENT_TIMEOUT).unwrap().status, 200);
        let report = handle.shutdown(Duration::from_secs(20));
        assert!(report.drained, "graceful drain must finish: {report:?}");
        let snap = handle.stats();
        assert!(snap.is_conserved(), "accepted != responded: {snap:?}");
        assert_eq!(snap.accepted, 14);
        assert_eq!(snap.answered + snap.abstained, 6);
        assert_eq!(snap.bad_requests, 4);
        assert_eq!(snap.info_requests, 4);
        assert_eq!(snap.draining + snap.shed + snap.unserveable + snap.deadline_expired, 0);
    }

    /// Runs the same sequential workload against an identically-built
    /// fleet and returns every response body verbatim.
    fn run_workload(chaos: ChaosConfig) -> (Vec<String>, StatsSnapshot) {
        let fleet = two_die_fleet(80);
        // Latch die 0 at Abstain so routing is pinned to die 1 — the
        // workload's answers then depend only on die-1 state and the
        // per-batch seeds, never on load-balance timing.
        fleet.with_die(0, |sup| {
            sup.monitor_mut().set_abstain_entropy(1e-9);
            sup.serve_predict(&small_inputs(2, 0xAB), 5);
        });
        let config = ServeConfig { seed: 0xD00D, chaos, ..ServeConfig::default() };
        let mut handle = serve(fleet, config).unwrap();
        let mut bodies = Vec::new();
        for i in 0..8 {
            let resp = client::predict(handle.addr(), &sample(i), CLIENT_TIMEOUT).unwrap();
            bodies.push(format!("{} {}", resp.status, resp.text()));
        }
        let report = handle.shutdown(Duration::from_secs(20));
        assert!(report.drained, "graceful drain must finish: {report:?}");
        (bodies, handle.stats())
    }

    #[test]
    fn chaos_timing_faults_leave_answers_bit_identical() {
        let quiet = ChaosConfig::default();
        let noisy = ChaosConfig {
            seed: 0xC405,
            queue_stall_per_mille: 400,
            latency_spike_per_mille: 400,
            stall_millis: 2,
            spike_millis: 2,
            ..ChaosConfig::default()
        };
        // The noisy plan must actually fire on this workload's batch
        // indices, or the test proves nothing.
        let plan = ChaosPlan::new(noisy);
        assert!(
            (0..8).any(|k| plan.fires(ChaosSite::QueueStall, k)),
            "chaos plan never stalls in 8 batches; raise the intensity"
        );
        let (control, control_stats) = run_workload(quiet);
        let (chaotic, chaotic_stats) = run_workload(noisy);
        assert_eq!(control, chaotic, "injected stalls/spikes shifted an answer");
        assert_eq!(control_stats.answered, chaotic_stats.answered);
        assert_eq!(control_stats.abstained, chaotic_stats.abstained);
        assert!(control_stats.is_conserved() && chaotic_stats.is_conserved());
    }

    #[test]
    fn injected_worker_panics_never_drop_responses() {
        let chaos = ChaosConfig {
            seed: 0x9A71C,
            worker_panic_per_mille: 1000, // every connection job panics
            ..ChaosConfig::default()
        };
        let config = ServeConfig { chaos, ..ServeConfig::default() };
        let mut handle = serve(two_die_fleet(90), config).unwrap();
        let addr = handle.addr();
        for i in 0..4 {
            let resp = client::predict(addr, &sample(i), CLIENT_TIMEOUT).unwrap();
            assert_eq!(resp.status, 200, "{}", resp.text());
        }
        assert_eq!(client::request(addr, "GET", "/healthz", None, CLIENT_TIMEOUT).unwrap().status, 200);
        let report = handle.shutdown(Duration::from_secs(20));
        assert!(report.drained, "workers must survive injected panics: {report:?}");
        let snap = handle.stats();
        assert!(snap.is_conserved(), "panics dropped a response: {snap:?}");
        assert_eq!(snap.answered + snap.abstained, 4);
        assert_eq!(snap.info_requests, 1);
    }

    #[test]
    fn healthz_reports_down_dies() {
        let mut handle = serve(two_die_fleet(95), ServeConfig::default()).unwrap();
        handle.fleet().crash(1);
        let resp =
            client::request(handle.addr(), "GET", "/healthz", None, CLIENT_TIMEOUT).unwrap();
        assert_eq!(resp.status, 200, "one die is still up: {}", resp.text());
        let text = resp.text();
        let json = crate::json::parse(&text).unwrap();
        assert_eq!(json.get("status").and_then(|s| s.as_str()), Some("degraded"));
        assert_eq!(json.get("eligible").and_then(|e| e.as_f64()), Some(1.0));
        let dies = json.get("dies").and_then(|d| d.as_arr()).unwrap();
        assert_eq!(dies[0].get("down").and_then(|b| b.as_bool()), Some(false));
        assert_eq!(dies[1].get("down").and_then(|b| b.as_bool()), Some(true));
        handle.shutdown(Duration::from_secs(10));
    }
}
