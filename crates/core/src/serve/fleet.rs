//! A fleet of simulated dies behind one serving front door.
//!
//! Each [`Die`] wraps its own [`Supervisor`] — private aging clock,
//! health monitor, recovery ladder, telemetry — behind a mutex, plus
//! two lock-free caches the router reads on the hot path: the latched
//! health tier and a served-samples counter. Routing is
//! abstention-aware: [`DieFleet::pick`] returns the healthiest
//! least-loaded eligible die (ties broken by id, so placement is
//! deterministic for a given history), and [`DieFleet::predict_on`]
//! refuses to serve through a die whose latched policy is
//! [`HealthPolicy::Abstain`] — the caller fails over rather than
//! shipping answers the die itself has disavowed.
//!
//! Per-die telemetry: gauge `serve_die{N}_tier` tracks each die's
//! latched tier (same 0–3 encoding as the global `health_tier` gauge),
//! counter `serve_die{N}_samples_total` its lifetime served samples.
//!
//! Serving is allocation-lean: each die's supervisor keeps a
//! persistent bank of per-worker model replicas (see
//! [`crate::ReplicaBank`]), cloned once and reused batch after batch —
//! the steady-state serve path clones nothing and re-plans nothing
//! until device state actually mutates (aging, scrub, recalibration).

use super::lock_recover;
use crate::checkpoint::CheckpointError;
use crate::flight;
use crate::health::HealthPolicy;
use crate::json::Json;
use crate::runtime::{BistGateReport, ServeReport, Supervisor};
use neuspin_nn::Tensor;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Why the fleet could not serve a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetError {
    /// The targeted die's latched policy is Abstain: it refuses
    /// traffic until recovery releases the latch.
    DieAbstaining {
        /// Which die refused.
        die: usize,
    },
    /// The targeted die crashed and has not been restored yet.
    DieDown {
        /// Which die is down.
        die: usize,
    },
    /// Every die in the fleet is at the Abstain tier (or excluded).
    NoEligibleDie,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::DieAbstaining { die } => write!(f, "die {die} is abstaining"),
            FleetError::DieDown { die } => write!(f, "die {die} is down"),
            FleetError::NoEligibleDie => f.write_str("no eligible die in the fleet"),
        }
    }
}

/// One simulated die: a supervised model plus routing caches.
struct Die {
    supervisor: Mutex<Supervisor>,
    /// Latched tier, mirrored out of the supervisor after every
    /// interaction so the router never takes the lock just to route.
    tier: AtomicU32,
    /// Lifetime served samples — the load-balance key.
    served: AtomicU64,
    /// True between [`DieFleet::crash`] and a successful
    /// [`DieFleet::restore_die`]: the router skips the die and
    /// [`DieFleet::predict_on`] refuses traffic.
    down: AtomicBool,
    /// The last periodic checkpoint that made it to "durable storage"
    /// before a crash — what a restart restores from. Refreshed
    /// opportunistically after every served batch.
    stable: Mutex<Option<String>>,
    /// [`Supervisor::checkpoint_seq`] of the stable copy, so refreshes
    /// only clone the checkpoint string when a new one exists.
    stable_seq: AtomicU64,
}

/// A point-in-time view of one die, for health endpoints and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DieStatus {
    /// Die index within the fleet.
    pub id: usize,
    /// Latched health tier.
    pub policy: HealthPolicy,
    /// Lifetime served samples.
    pub served: u64,
    /// True while the die is crashed and awaiting restore.
    pub down: bool,
}

/// N independent dies with abstention-aware routing.
pub struct DieFleet {
    dies: Vec<Die>,
}

impl DieFleet {
    /// Assembles a fleet from commissioned supervisors.
    ///
    /// # Panics
    ///
    /// Panics if `supervisors` is empty.
    pub fn new(supervisors: Vec<Supervisor>) -> Self {
        assert!(!supervisors.is_empty(), "a fleet needs at least one die");
        let dies: Vec<Die> = supervisors
            .into_iter()
            .map(|s| Die {
                tier: AtomicU32::new(s.policy().tier_index()),
                supervisor: Mutex::new(s),
                served: AtomicU64::new(0),
                down: AtomicBool::new(false),
                stable: Mutex::new(None),
                stable_seq: AtomicU64::new(0),
            })
            .collect();
        let fleet = DieFleet { dies };
        for id in 0..fleet.dies.len() {
            fleet.publish_tier(id);
        }
        fleet
    }

    /// Number of dies.
    pub fn len(&self) -> usize {
        self.dies.len()
    }

    /// True for an empty fleet (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.dies.is_empty()
    }

    /// The cached latched tier of `die`.
    pub fn tier(&self, die: usize) -> HealthPolicy {
        HealthPolicy::from_tier_index(self.dies[die].tier.load(Ordering::Acquire))
    }

    /// Lifetime served samples of `die`.
    pub fn served(&self, die: usize) -> u64 {
        self.dies[die].served.load(Ordering::Relaxed)
    }

    /// True while `die` is crashed and awaiting restore.
    pub fn is_down(&self, die: usize) -> bool {
        self.dies[die].down.load(Ordering::Acquire)
    }

    /// Point-in-time status of every die.
    pub fn snapshot(&self) -> Vec<DieStatus> {
        (0..self.dies.len())
            .map(|id| DieStatus {
                id,
                policy: self.tier(id),
                served: self.served(id),
                down: self.is_down(id),
            })
            .collect()
    }

    /// Dies currently up and below the Abstain tier.
    pub fn eligible_count(&self) -> usize {
        (0..self.dies.len())
            .filter(|&id| !self.is_down(id) && self.tier(id) != HealthPolicy::Abstain)
            .count()
    }

    /// Routes a request: the eligible die (not excluded, not down, not
    /// abstaining) with the lowest `(tier, served, id)` key — healthiest
    /// first, then least loaded, then deterministic by id.
    pub fn pick(&self, exclude: &[usize]) -> Option<usize> {
        (0..self.dies.len())
            .filter(|id| !exclude.contains(id))
            .filter(|&id| !self.is_down(id) && self.tier(id) != HealthPolicy::Abstain)
            .min_by_key(|&id| (self.tier(id).tier_index(), self.served(id), id))
    }

    /// Simulates a power-fail crash of `die`: the in-memory supervisor
    /// state is considered lost, the router stops picking the die, and
    /// [`DieFleet::predict_on`] refuses it with [`FleetError::DieDown`]
    /// until [`DieFleet::restore_die`] succeeds. Idempotent.
    pub fn crash(&self, die: usize) {
        self.dies[die].down.store(true, Ordering::Release);
        crate::telemetry::counter("serve_die_crashes_total").inc();
        flight::record("die_crash", vec![("die", Json::Num(die as f64))]);
        flight::dump_if_configured();
    }

    /// The last checkpoint that reached durable storage for `die`, if
    /// any — what [`DieFleet::restore_die`] will restore from.
    pub fn stable_checkpoint(&self, die: usize) -> Option<String> {
        lock_recover(&self.dies[die].stable).clone()
    }

    /// Crash-restarts `die`: restores its last stable checkpoint onto
    /// `twin` (a supervisor built by the same deterministic constructor
    /// as the crashed die — see the restore-onto-twin contract in
    /// [`crate::checkpoint`]), runs the BIST re-commission gate, and —
    /// only if the gate passes — swaps the restored supervisor in and
    /// marks the die up.
    ///
    /// Returns the gate report on a decodable checkpoint; the caller
    /// checks [`BistGateReport::passed`] to learn whether the die
    /// rejoined. Fails without touching the die when no stable
    /// checkpoint exists or the stored bytes no longer verify.
    pub fn restore_die(
        &self,
        die: usize,
        mut twin: Supervisor,
    ) -> Result<BistGateReport, CheckpointError> {
        let stable = self.stable_checkpoint(die).ok_or_else(|| {
            CheckpointError::Malformed(format!("no stable checkpoint for die {die}"))
        })?;
        twin.restore_from_str(&stable)?;
        let gate = twin.bist_gate();
        if gate.passed {
            let seq = twin.checkpoint_seq();
            {
                let mut sup = lock_recover(&self.dies[die].supervisor);
                *sup = twin;
                self.dies[die].tier.store(sup.policy().tier_index(), Ordering::Release);
            }
            self.dies[die].stable_seq.store(seq, Ordering::Release);
            self.dies[die].down.store(false, Ordering::Release);
            self.publish_tier(die);
            crate::telemetry::counter("serve_die_restores_total").inc();
        }
        flight::record(
            "die_restore",
            vec![
                ("die", Json::Num(die as f64)),
                ("bist_passed", Json::Bool(gate.passed)),
            ],
        );
        Ok(gate)
    }

    /// Serves one batch on `die`, refusing if its latched policy is
    /// Abstain (checked again under the lock — the cache may be stale).
    ///
    /// On success the die's served counter, tier cache, and telemetry
    /// are refreshed from the post-batch supervisor state.
    pub fn predict_on(
        &self,
        die: usize,
        inputs: &Tensor,
        seed: u64,
    ) -> Result<ServeReport, FleetError> {
        if self.is_down(die) {
            return Err(FleetError::DieDown { die });
        }
        let report = {
            let mut sup = lock_recover(&self.dies[die].supervisor);
            if sup.policy() == HealthPolicy::Abstain {
                self.dies[die]
                    .tier
                    .store(HealthPolicy::Abstain.tier_index(), Ordering::Release);
                self.publish_tier(die);
                return Err(FleetError::DieAbstaining { die });
            }
            let report = sup.serve_predict(inputs, seed);
            self.refresh_stable(die, &sup);
            report
        };
        let rows = inputs.shape()[0] as u64;
        self.dies[die].served.fetch_add(rows, Ordering::Relaxed);
        self.dies[die]
            .tier
            .store(report.policy.tier_index(), Ordering::Release);
        self.publish_tier(die);
        if crate::telemetry::metrics_enabled() {
            crate::telemetry::counter(&format!("serve_die{die}_samples_total")).add(rows);
        }
        Ok(report)
    }

    /// Runs `f` against one die's supervisor (ageing it, tweaking its
    /// monitor, forcing degradation in a scenario), then refreshes the
    /// routing caches from the resulting state.
    pub fn with_die<R>(&self, die: usize, f: impl FnOnce(&mut Supervisor) -> R) -> R {
        let out = {
            let mut sup = lock_recover(&self.dies[die].supervisor);
            let out = f(&mut sup);
            self.dies[die]
                .tier
                .store(sup.policy().tier_index(), Ordering::Release);
            self.refresh_stable(die, &sup);
            out
        };
        self.publish_tier(die);
        out
    }

    /// Copies the die's latest periodic checkpoint to "durable storage"
    /// when a new one exists (the sequence number advanced). Cheap when
    /// nothing changed: one atomic compare, no string traffic.
    fn refresh_stable(&self, die: usize, sup: &Supervisor) {
        let seq = sup.checkpoint_seq();
        if seq != self.dies[die].stable_seq.load(Ordering::Acquire) {
            if let Some(cp) = sup.last_checkpoint() {
                *lock_recover(&self.dies[die].stable) = Some(cp.to_string());
                self.dies[die].stable_seq.store(seq, Ordering::Release);
            }
        }
    }

    /// Mirrors one die's cached tier into its telemetry gauge.
    fn publish_tier(&self, die: usize) {
        if crate::telemetry::metrics_enabled() {
            crate::telemetry::gauge(&format!("serve_die{die}_tier"))
                .set(self.dies[die].tier.load(Ordering::Acquire) as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{small_commissioned_supervisor, small_inputs};

    fn fleet_of(n: usize) -> DieFleet {
        DieFleet::new((0..n).map(|i| small_commissioned_supervisor(40 + i as u64)).collect())
    }

    fn eval_batch() -> Tensor {
        small_inputs(4, 0xD1E5)
    }

    #[test]
    fn pick_prefers_healthiest_then_least_loaded_then_lowest_id() {
        let fleet = fleet_of(3);
        // All healthy and unloaded: id breaks the tie.
        assert_eq!(fleet.pick(&[]), Some(0));
        assert_eq!(fleet.pick(&[0]), Some(1));
        // Load die 0 and 1: least-loaded wins.
        let batch = eval_batch();
        fleet.predict_on(0, &batch, 11).unwrap();
        fleet.predict_on(1, &batch, 12).unwrap();
        fleet.predict_on(0, &batch, 13).unwrap();
        assert_eq!(fleet.pick(&[]), Some(2));
        assert_eq!(fleet.pick(&[2]), Some(1), "die 1 served less than die 0");
    }

    #[test]
    fn abstaining_die_is_skipped_and_refuses_traffic() {
        let fleet = fleet_of(2);
        let batch = eval_batch();
        // Collapse die 0's abstention threshold: its next observation
        // latches Abstain (safety tier bypasses the dwell).
        fleet.with_die(0, |sup| {
            sup.monitor_mut().set_abstain_entropy(1e-9);
            sup.serve_predict(&batch, 21);
        });
        assert_eq!(fleet.tier(0), HealthPolicy::Abstain);
        assert_eq!(fleet.pick(&[]), Some(1), "router must skip the abstaining die");
        assert_eq!(
            fleet.predict_on(0, &batch, 22).map(|_| ()).unwrap_err(),
            FleetError::DieAbstaining { die: 0 }
        );
        assert_eq!(fleet.pick(&[1]), None, "no eligible die once 1 is excluded");
    }

    #[test]
    fn predict_on_counts_samples_and_snapshot_reflects_state() {
        let fleet = fleet_of(2);
        let batch = eval_batch();
        fleet.predict_on(1, &batch, 31).unwrap();
        assert_eq!(fleet.served(1), batch.shape()[0] as u64);
        assert_eq!(fleet.served(0), 0);
        let snap = fleet.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[1].served, 4);
        assert_eq!(snap[0].policy, HealthPolicy::Healthy);
    }

    #[test]
    fn fleet_serving_reuses_persistent_replicas() {
        let fleet = fleet_of(1);
        let batch = eval_batch();
        // Pin the die to 2 workers (drops whatever the commissioning
        // eval attached) and capture the lifetime sync count.
        let base = fleet.with_die(0, |sup| {
            sup.set_threads(2);
            assert!(sup.replicas().is_empty(), "set_threads must drop the bank");
            sup.replicas().syncs()
        });
        for i in 0..3 {
            fleet.predict_on(0, &batch, 50 + i).unwrap();
        }
        fleet.with_die(0, |sup| {
            assert_eq!(
                sup.replicas().len(),
                2,
                "first serve attaches one replica per worker; later serves reuse them"
            );
            assert_eq!(sup.replicas().syncs(), base + 3, "one delta sync per served batch");
        });
    }

    #[test]
    fn crashed_die_is_excluded_until_restored_bit_identically() {
        let fleet = fleet_of(2);
        for id in 0..2 {
            fleet.with_die(id, |sup| sup.set_checkpoint_interval(1));
        }
        let b1 = small_inputs(4, 0xB001);
        let b2 = small_inputs(4, 0xB002);
        fleet.predict_on(0, &b1, 61).unwrap();
        let stable =
            fleet.stable_checkpoint(0).expect("interval-1 checkpointing must publish");
        // Control: the same post-batch state serves the next batch with
        // no crash in between.
        let mut control = small_commissioned_supervisor(40);
        control.restore_from_str(&stable).unwrap();
        let control_report = control.serve_predict(&b2, 62);

        fleet.crash(0);
        assert!(fleet.is_down(0));
        assert!(fleet.snapshot()[0].down);
        assert_eq!(fleet.eligible_count(), 1);
        assert_eq!(fleet.pick(&[]), Some(1), "router must skip the crashed die");
        assert_eq!(
            fleet.predict_on(0, &b1, 63).map(|_| ()).unwrap_err(),
            FleetError::DieDown { die: 0 }
        );

        let mut twin = small_commissioned_supervisor(40);
        twin.set_checkpoint_interval(1);
        let gate = fleet.restore_die(0, twin).unwrap();
        assert!(gate.passed, "BIST gate must pass on an intact restore: {gate:?}");
        assert!(!fleet.is_down(0));
        assert_eq!(fleet.eligible_count(), 2, "restored die rejoins the rotation");
        let report = fleet.predict_on(0, &b2, 62).unwrap();
        let got: Vec<u32> =
            report.predictive.mean_probs.as_slice().iter().map(|p| p.to_bits()).collect();
        let want: Vec<u32> = control_report
            .predictive
            .mean_probs
            .as_slice()
            .iter()
            .map(|p| p.to_bits())
            .collect();
        assert_eq!(got, want, "restored die must serve bit-identically to the no-crash control");
    }

    #[test]
    fn restore_without_stable_checkpoint_is_refused() {
        let fleet = fleet_of(1);
        fleet.crash(0);
        let twin = small_commissioned_supervisor(40);
        let err = fleet.restore_die(0, twin).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed(_)), "{err:?}");
        assert!(fleet.is_down(0), "a failed restore must leave the die down");
        assert_eq!(fleet.pick(&[]), None);
        assert_eq!(fleet.eligible_count(), 0);
    }

    #[test]
    fn per_die_telemetry_gauges_are_published() {
        let _guard = crate::telemetry::test_lock();
        crate::telemetry::set_enabled(true, false);
        crate::telemetry::reset();
        let fleet = fleet_of(2);
        let batch = eval_batch();
        fleet.predict_on(0, &batch, 41).unwrap();
        let text = crate::telemetry::prometheus_text();
        assert!(text.contains("serve_die0_tier"), "missing die-0 tier gauge:\n{text}");
        assert!(text.contains("serve_die1_tier"), "missing die-1 tier gauge:\n{text}");
        assert!(
            text.contains("serve_die0_samples_total"),
            "missing die-0 sample counter:\n{text}"
        );
        crate::telemetry::set_enabled(false, false);
        crate::telemetry::reset();
    }
}
