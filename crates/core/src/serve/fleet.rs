//! A fleet of simulated dies behind one serving front door.
//!
//! Each [`Die`] wraps its own [`Supervisor`] — private aging clock,
//! health monitor, recovery ladder, telemetry — behind a mutex, plus
//! two lock-free caches the router reads on the hot path: the latched
//! health tier and a served-samples counter. Routing is
//! abstention-aware: [`DieFleet::pick`] returns the healthiest
//! least-loaded eligible die (ties broken by id, so placement is
//! deterministic for a given history), and [`DieFleet::predict_on`]
//! refuses to serve through a die whose latched policy is
//! [`HealthPolicy::Abstain`] — the caller fails over rather than
//! shipping answers the die itself has disavowed.
//!
//! Per-die telemetry: gauge `serve_die{N}_tier` tracks each die's
//! latched tier (same 0–3 encoding as the global `health_tier` gauge),
//! counter `serve_die{N}_samples_total` its lifetime served samples.
//!
//! Serving is allocation-lean: each die's supervisor keeps a
//! persistent bank of per-worker model replicas (see
//! [`crate::ReplicaBank`]), cloned once and reused batch after batch —
//! the steady-state serve path clones nothing and re-plans nothing
//! until device state actually mutates (aging, scrub, recalibration).

use crate::health::HealthPolicy;
use crate::runtime::{ServeReport, Supervisor};
use neuspin_nn::Tensor;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Why the fleet could not serve a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetError {
    /// The targeted die's latched policy is Abstain: it refuses
    /// traffic until recovery releases the latch.
    DieAbstaining {
        /// Which die refused.
        die: usize,
    },
    /// Every die in the fleet is at the Abstain tier (or excluded).
    NoEligibleDie,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::DieAbstaining { die } => write!(f, "die {die} is abstaining"),
            FleetError::NoEligibleDie => f.write_str("no eligible die in the fleet"),
        }
    }
}

/// One simulated die: a supervised model plus routing caches.
struct Die {
    supervisor: Mutex<Supervisor>,
    /// Latched tier, mirrored out of the supervisor after every
    /// interaction so the router never takes the lock just to route.
    tier: AtomicU32,
    /// Lifetime served samples — the load-balance key.
    served: AtomicU64,
}

/// A point-in-time view of one die, for health endpoints and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DieStatus {
    /// Die index within the fleet.
    pub id: usize,
    /// Latched health tier.
    pub policy: HealthPolicy,
    /// Lifetime served samples.
    pub served: u64,
}

/// N independent dies with abstention-aware routing.
pub struct DieFleet {
    dies: Vec<Die>,
}

impl DieFleet {
    /// Assembles a fleet from commissioned supervisors.
    ///
    /// # Panics
    ///
    /// Panics if `supervisors` is empty.
    pub fn new(supervisors: Vec<Supervisor>) -> Self {
        assert!(!supervisors.is_empty(), "a fleet needs at least one die");
        let dies: Vec<Die> = supervisors
            .into_iter()
            .map(|s| Die {
                tier: AtomicU32::new(s.policy().tier_index()),
                supervisor: Mutex::new(s),
                served: AtomicU64::new(0),
            })
            .collect();
        let fleet = DieFleet { dies };
        for id in 0..fleet.dies.len() {
            fleet.publish_tier(id);
        }
        fleet
    }

    /// Number of dies.
    pub fn len(&self) -> usize {
        self.dies.len()
    }

    /// True for an empty fleet (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.dies.is_empty()
    }

    /// The cached latched tier of `die`.
    pub fn tier(&self, die: usize) -> HealthPolicy {
        HealthPolicy::from_tier_index(self.dies[die].tier.load(Ordering::Acquire))
    }

    /// Lifetime served samples of `die`.
    pub fn served(&self, die: usize) -> u64 {
        self.dies[die].served.load(Ordering::Relaxed)
    }

    /// Point-in-time status of every die.
    pub fn snapshot(&self) -> Vec<DieStatus> {
        (0..self.dies.len())
            .map(|id| DieStatus { id, policy: self.tier(id), served: self.served(id) })
            .collect()
    }

    /// Dies currently below the Abstain tier.
    pub fn eligible_count(&self) -> usize {
        (0..self.dies.len())
            .filter(|&id| self.tier(id) != HealthPolicy::Abstain)
            .count()
    }

    /// Routes a request: the eligible die (not excluded, not
    /// abstaining) with the lowest `(tier, served, id)` key — healthiest
    /// first, then least loaded, then deterministic by id.
    pub fn pick(&self, exclude: &[usize]) -> Option<usize> {
        (0..self.dies.len())
            .filter(|id| !exclude.contains(id))
            .filter(|&id| self.tier(id) != HealthPolicy::Abstain)
            .min_by_key(|&id| (self.tier(id).tier_index(), self.served(id), id))
    }

    /// Serves one batch on `die`, refusing if its latched policy is
    /// Abstain (checked again under the lock — the cache may be stale).
    ///
    /// On success the die's served counter, tier cache, and telemetry
    /// are refreshed from the post-batch supervisor state.
    pub fn predict_on(
        &self,
        die: usize,
        inputs: &Tensor,
        seed: u64,
    ) -> Result<ServeReport, FleetError> {
        let report = {
            let mut sup = self.dies[die].supervisor.lock().expect("die supervisor poisoned");
            if sup.policy() == HealthPolicy::Abstain {
                self.dies[die]
                    .tier
                    .store(HealthPolicy::Abstain.tier_index(), Ordering::Release);
                self.publish_tier(die);
                return Err(FleetError::DieAbstaining { die });
            }
            sup.serve_predict(inputs, seed)
        };
        let rows = inputs.shape()[0] as u64;
        self.dies[die].served.fetch_add(rows, Ordering::Relaxed);
        self.dies[die]
            .tier
            .store(report.policy.tier_index(), Ordering::Release);
        self.publish_tier(die);
        if crate::telemetry::metrics_enabled() {
            crate::telemetry::counter(&format!("serve_die{die}_samples_total")).add(rows);
        }
        Ok(report)
    }

    /// Runs `f` against one die's supervisor (ageing it, tweaking its
    /// monitor, forcing degradation in a scenario), then refreshes the
    /// routing caches from the resulting state.
    pub fn with_die<R>(&self, die: usize, f: impl FnOnce(&mut Supervisor) -> R) -> R {
        let out = {
            let mut sup = self.dies[die].supervisor.lock().expect("die supervisor poisoned");
            let out = f(&mut sup);
            self.dies[die]
                .tier
                .store(sup.policy().tier_index(), Ordering::Release);
            out
        };
        self.publish_tier(die);
        out
    }

    /// Mirrors one die's cached tier into its telemetry gauge.
    fn publish_tier(&self, die: usize) {
        if crate::telemetry::metrics_enabled() {
            crate::telemetry::gauge(&format!("serve_die{die}_tier"))
                .set(self.dies[die].tier.load(Ordering::Acquire) as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{small_commissioned_supervisor, small_inputs};

    fn fleet_of(n: usize) -> DieFleet {
        DieFleet::new((0..n).map(|i| small_commissioned_supervisor(40 + i as u64)).collect())
    }

    fn eval_batch() -> Tensor {
        small_inputs(4, 0xD1E5)
    }

    #[test]
    fn pick_prefers_healthiest_then_least_loaded_then_lowest_id() {
        let fleet = fleet_of(3);
        // All healthy and unloaded: id breaks the tie.
        assert_eq!(fleet.pick(&[]), Some(0));
        assert_eq!(fleet.pick(&[0]), Some(1));
        // Load die 0 and 1: least-loaded wins.
        let batch = eval_batch();
        fleet.predict_on(0, &batch, 11).unwrap();
        fleet.predict_on(1, &batch, 12).unwrap();
        fleet.predict_on(0, &batch, 13).unwrap();
        assert_eq!(fleet.pick(&[]), Some(2));
        assert_eq!(fleet.pick(&[2]), Some(1), "die 1 served less than die 0");
    }

    #[test]
    fn abstaining_die_is_skipped_and_refuses_traffic() {
        let fleet = fleet_of(2);
        let batch = eval_batch();
        // Collapse die 0's abstention threshold: its next observation
        // latches Abstain (safety tier bypasses the dwell).
        fleet.with_die(0, |sup| {
            sup.monitor_mut().set_abstain_entropy(1e-9);
            sup.serve_predict(&batch, 21);
        });
        assert_eq!(fleet.tier(0), HealthPolicy::Abstain);
        assert_eq!(fleet.pick(&[]), Some(1), "router must skip the abstaining die");
        assert_eq!(
            fleet.predict_on(0, &batch, 22).map(|_| ()).unwrap_err(),
            FleetError::DieAbstaining { die: 0 }
        );
        assert_eq!(fleet.pick(&[1]), None, "no eligible die once 1 is excluded");
    }

    #[test]
    fn predict_on_counts_samples_and_snapshot_reflects_state() {
        let fleet = fleet_of(2);
        let batch = eval_batch();
        fleet.predict_on(1, &batch, 31).unwrap();
        assert_eq!(fleet.served(1), batch.shape()[0] as u64);
        assert_eq!(fleet.served(0), 0);
        let snap = fleet.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[1].served, 4);
        assert_eq!(snap[0].policy, HealthPolicy::Healthy);
    }

    #[test]
    fn fleet_serving_reuses_persistent_replicas() {
        let fleet = fleet_of(1);
        let batch = eval_batch();
        // Pin the die to 2 workers (drops whatever the commissioning
        // eval attached) and capture the lifetime sync count.
        let base = fleet.with_die(0, |sup| {
            sup.set_threads(2);
            assert!(sup.replicas().is_empty(), "set_threads must drop the bank");
            sup.replicas().syncs()
        });
        for i in 0..3 {
            fleet.predict_on(0, &batch, 50 + i).unwrap();
        }
        fleet.with_die(0, |sup| {
            assert_eq!(
                sup.replicas().len(),
                2,
                "first serve attaches one replica per worker; later serves reuse them"
            );
            assert_eq!(sup.replicas().syncs(), base + 3, "one delta sync per served batch");
        });
    }

    #[test]
    fn per_die_telemetry_gauges_are_published() {
        let _guard = crate::telemetry::test_lock();
        crate::telemetry::set_enabled(true, false);
        crate::telemetry::reset();
        let fleet = fleet_of(2);
        let batch = eval_batch();
        fleet.predict_on(0, &batch, 41).unwrap();
        let text = crate::telemetry::prometheus_text();
        assert!(text.contains("serve_die0_tier"), "missing die-0 tier gauge:\n{text}");
        assert!(text.contains("serve_die1_tier"), "missing die-1 tier gauge:\n{text}");
        assert!(
            text.contains("serve_die0_samples_total"),
            "missing die-0 sample counter:\n{text}"
        );
        crate::telemetry::set_enabled(false, false);
        crate::telemetry::reset();
    }
}
