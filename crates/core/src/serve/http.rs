//! Minimal, hardened HTTP/1.1 framing over blocking byte streams.
//!
//! The serving front door cannot assume well-formed peers: a public
//! listener sees truncated requests, hostile header blocks, and bodies
//! that lie about their own length. [`read_request`] therefore parses
//! defensively — every malformed input maps to a typed [`HttpError`]
//! (never a panic), head and body sizes are hard-capped, and the
//! `Content-Length` contract is enforced byte-for-byte. Anything this
//! module cannot frame cleanly is answered with the 4xx the error maps
//! to (or the connection is simply closed when the peer vanished
//! mid-request).
//!
//! Scope is deliberately small: one request per connection
//! (`Connection: close` semantics), no chunked transfer encoding, no
//! continuation lines — the subset the serving layer needs, hardened,
//! rather than a general client surface.

use std::io::{Read, Write};

/// Hard cap on the request head (request line + header block).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Hard cap on the number of header lines.
pub const MAX_HEADERS: usize = 64;

/// Why a request could not be framed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection before a full request arrived.
    Truncated,
    /// Syntactically malformed request line or header block (includes
    /// non-UTF8 bytes in the head — header values are text here).
    BadRequest(&'static str),
    /// The head grew past [`MAX_HEAD_BYTES`] (or [`MAX_HEADERS`]).
    HeadTooLarge,
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// Missing or unparseable `Content-Length` on a method that
    /// requires one.
    BadContentLength,
    /// Transport error (timeouts surface as `WouldBlock`/`TimedOut`).
    Io(std::io::ErrorKind),
}

impl HttpError {
    /// The response this error maps to, or `None` when the peer is
    /// already gone and there is nobody left to answer.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Truncated | HttpError::Io(_) => None,
            HttpError::BadRequest(_) => Some((400, "Bad Request")),
            HttpError::HeadTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::BodyTooLarge => Some((413, "Payload Too Large")),
            HttpError::BadContentLength => Some((411, "Length Required")),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Truncated => f.write_str("connection closed mid-request"),
            HttpError::BadRequest(why) => write!(f, "malformed request: {why}"),
            HttpError::HeadTooLarge => f.write_str("request head too large"),
            HttpError::BodyTooLarge => f.write_str("request body too large"),
            HttpError::BadContentLength => f.write_str("missing or invalid content-length"),
            HttpError::Io(kind) => write!(f, "transport error: {kind:?}"),
        }
    }
}

/// A framed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query), as sent.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match wins).
    pub fn header(&self, name: &str) -> Option<&str> {
        let needle = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == needle)
            .map(|(_, v)| v.as_str())
    }
}

/// Locates `needle` in `haystack`, scanning from `from`.
fn find_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if haystack.len() < needle.len() {
        return None;
    }
    (from.min(haystack.len())..=haystack.len() - needle.len())
        .find(|&i| &haystack[i..i + needle.len()] == needle)
}

/// Reads and frames one request off `stream`.
///
/// Never panics on malformed input: every failure mode is a typed
/// [`HttpError`]. Reads past the head that belong to the body are kept
/// (no bytes are lost to buffering).
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    // Accumulate the head until the blank line, with a hard size cap.
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let mut scanned = 0usize;
    let head_end = loop {
        if let Some(pos) = find_from(&buf, b"\r\n\r\n", scanned.saturating_sub(3)) {
            break pos;
        }
        scanned = buf.len();
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        let n = stream.read(&mut chunk).map_err(|e| HttpError::Io(e.kind()))?;
        if n == 0 {
            return if buf.is_empty() {
                // A connection opened and closed without a byte: not an
                // attack, just a probe — still a truncated request.
                Err(HttpError::Truncated)
            } else {
                Err(HttpError::Truncated)
            };
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::HeadTooLarge);
    }

    let body_prefix = buf.split_off(head_end + 4);
    buf.truncate(head_end);
    let head = std::str::from_utf8(&buf)
        .map_err(|_| HttpError::BadRequest("non-UTF8 bytes in request head"))?;

    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest("bad method token"));
    }
    if path.is_empty() || !path.starts_with('/') {
        return Err(HttpError::BadRequest("bad request target"));
    }
    if !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return Err(HttpError::BadRequest("bad HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("header line without a colon"))?;
        let name = name.trim();
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return Err(HttpError::BadRequest("bad header name"));
        }
        let value = value.trim();
        if value.bytes().any(|b| b < 0x20 && b != b'\t') {
            return Err(HttpError::BadRequest("control bytes in header value"));
        }
        headers.push((name.to_ascii_lowercase(), value.to_string()));
    }

    let request = Request { method, path, headers, body: Vec::new() };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest("transfer-encoding not supported"));
    }

    // Body framing: `Content-Length` is authoritative. Methods that
    // carry a body must declare it; a declared length is read exactly.
    let content_length = match request.header("content-length") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Err(HttpError::BadContentLength),
        },
        None if request.method == "POST" || request.method == "PUT" => {
            return Err(HttpError::BadContentLength);
        }
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }

    let mut body = body_prefix;
    if body.len() > content_length {
        // Pipelined extra bytes: out of contract for one-request
        // connections; drop them rather than mis-frame.
        body.truncate(content_length);
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream
            .read(&mut chunk[..want])
            .map_err(|e| HttpError::Io(e.kind()))?;
        if n == 0 {
            return Err(HttpError::Truncated);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(Request { body, ..request })
}

/// Writes a complete `Connection: close` response.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with(stream, status, reason, content_type, &[], body)
}

/// Writes a complete `Connection: close` response with extra headers
/// (e.g. `X-NeuSpin-Trace`) between `Content-Length` and the blank
/// line. Caller-supplied names/values must be header-clean; the serve
/// layer only passes literals and digit-and-separator trace strings.
pub fn write_response_with(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Convenience: a JSON response body.
pub fn write_json_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    body: &str,
) -> std::io::Result<()> {
    write_response(stream, status, reason, "application/json", body.as_bytes())
}

/// Convenience: a JSON response body plus extra headers.
pub fn write_json_response_with(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    write_response_with(stream, status, reason, "application/json", extra_headers, body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()))
    }

    fn valid_post(body: &str) -> Vec<u8> {
        format!(
            "POST /predict HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    }

    #[test]
    fn parses_a_well_formed_post() {
        let req = parse(&valid_post("{\"input\": [1, 2]}")).expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("CONTENT-TYPE"), Some("application/json"));
        assert_eq!(req.body, b"{\"input\": [1, 2]}");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("valid GET");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn body_split_across_reads_is_reassembled() {
        // Cursor delivers everything at once; a tiny chunked reader
        // proves re-reads are handled.
        struct OneByte(Vec<u8>, usize);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let req = read_request(&mut OneByte(valid_post("{\"k\": 7}"), 0)).expect("valid");
        assert_eq!(req.body, b"{\"k\": 7}");
    }

    #[test]
    fn post_without_content_length_is_rejected() {
        let err = parse(b"POST /predict HTTP/1.1\r\nHost: x\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::BadContentLength);
        assert_eq!(err.status(), Some((411, "Length Required")));
    }

    #[test]
    fn declared_body_longer_than_stream_is_truncated() {
        let err =
            parse(b"POST /p HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").unwrap_err();
        assert_eq!(err, HttpError::Truncated);
        assert_eq!(err.status(), None, "peer is gone; nothing to answer");
    }

    #[test]
    fn oversized_declared_body_is_refused_before_reading_it() {
        let head = format!(
            "POST /p HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(head.as_bytes()).unwrap_err(), HttpError::BodyTooLarge);
    }

    #[test]
    fn pipelined_extra_bytes_are_dropped_not_misframed() {
        let req =
            parse(b"POST /p HTTP/1.1\r\nContent-Length: 2\r\n\r\nokEXTRA").expect("valid");
        assert_eq!(req.body, b"ok");
    }

    /// The house 96-case seeded battery: structured corruptions of a
    /// valid request. Every case must return a clean `Err` — never
    /// panic, never mis-frame a request out of garbage.
    #[test]
    fn malformed_input_battery_errors_cleanly() {
        const CASES: usize = 96;
        let base_seed = 0x5E47_E001u64;
        for case in 0..CASES {
            let seed = base_seed + case as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let body = "{\"input\": [0.5, -0.5, 0.25]}";
            let mut bytes = valid_post(body);
            let kind = case % 8;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                match kind {
                    0 => {
                        // Truncated head: cut inside the header block.
                        let head_len = bytes.len() - body.len() - 4;
                        let cut = 1 + rng.random_range(0..head_len.max(2) - 1);
                        bytes.truncate(cut);
                    }
                    1 => {
                        // Truncated body: promise more than is sent.
                        let cut = bytes.len() - 1 - rng.random_range(0..body.len());
                        bytes.truncate(cut);
                    }
                    2 => {
                        // Bad content-length token.
                        let garbage: &[&str] = &[
                            "banana",
                            "-1",
                            "0x10",
                            "18446744073709551617",
                            "12 13",
                            "∞",
                        ];
                        let text = String::from_utf8(bytes.clone()).unwrap();
                        bytes = text
                            .replace(
                                &format!("Content-Length: {}", body.len()),
                                &format!(
                                    "Content-Length: {}",
                                    garbage[rng.random_range(0..garbage.len())]
                                ),
                            )
                            .into_bytes();
                    }
                    3 => {
                        // Non-UTF8 bytes splattered into the head.
                        let head_len = bytes.len() - body.len() - 4;
                        for _ in 0..3 {
                            let at = rng.random_range(0..head_len);
                            bytes[at] = 0x80 + (rng.random_range(0..0x7Fu32) as u8 & 0x7F);
                        }
                    }
                    4 => {
                        // Oversized header block (single giant header).
                        let filler = "X".repeat(MAX_HEAD_BYTES + 256);
                        bytes = format!(
                            "POST /p HTTP/1.1\r\nBig: {filler}\r\nContent-Length: 1\r\n\r\nz"
                        )
                        .into_bytes();
                    }
                    5 => {
                        // Random binary garbage, no HTTP structure at all.
                        let n = 1 + rng.random_range(0..512usize);
                        bytes = (0..n).map(|_| rng.random_range(0..256u32) as u8).collect();
                        // Guarantee it is not accidentally a valid head.
                        bytes.insert(0, 0x00);
                    }
                    6 => {
                        // Control bytes inside a header value.
                        let text = String::from_utf8(bytes.clone()).unwrap();
                        bytes = text
                            .replace("Host: localhost", "Host: local\x01host")
                            .into_bytes();
                    }
                    _ => {
                        // Broken request line: drop the method or the
                        // version, or glue the line together.
                        let lines: &[&str] = &[
                            "/predict HTTP/1.1",
                            "POST /predict",
                            "POST/predictHTTP/1.1",
                            "post /predict HTTP/1.1",
                            "POST predict HTTP/1.1",
                            "POST /predict SMTP/1.0",
                        ];
                        let line = lines[rng.random_range(0..lines.len())];
                        bytes = format!("{line}\r\nContent-Length: 1\r\n\r\nz").into_bytes();
                    }
                }
                parse(&bytes)
            }));
            let outcome = result.unwrap_or_else(|_| {
                panic!("case {case} (kind {kind}, seed {seed:#x}) panicked in the parser")
            });
            assert!(
                outcome.is_err(),
                "case {case} (kind {kind}, seed {seed:#x}) must error, got {outcome:?}"
            );
        }
    }

    #[test]
    fn error_statuses_map_sanely() {
        assert_eq!(HttpError::BadRequest("x").status().unwrap().0, 400);
        assert_eq!(HttpError::HeadTooLarge.status().unwrap().0, 431);
        assert_eq!(HttpError::BodyTooLarge.status().unwrap().0, 413);
        assert_eq!(HttpError::BadContentLength.status().unwrap().0, 411);
        assert!(HttpError::Io(std::io::ErrorKind::TimedOut).status().is_none());
    }

    #[test]
    fn response_writer_frames_correctly() {
        let mut out = Vec::new();
        write_json_response(&mut out, 200, "OK", "{\"a\": 1}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 8\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"a\": 1}"), "{text}");
    }

    #[test]
    fn extra_headers_land_inside_the_head() {
        let mut out = Vec::new();
        write_json_response_with(
            &mut out,
            200,
            "OK",
            "{}",
            &[("X-NeuSpin-Trace", "rid=7;batch=3;die=1;failovers=0;retries=0")],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let head_end = text.find("\r\n\r\n").expect("blank line");
        let head = &text[..head_end];
        assert!(
            head.contains("X-NeuSpin-Trace: rid=7;batch=3;die=1;failovers=0;retries=0"),
            "{head}"
        );
        assert!(head.ends_with("Connection: close"), "close stays last: {head}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }
}
