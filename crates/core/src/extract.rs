//! Extraction of trained parameters from a software model.
//!
//! The hardware compiler consumes a trained [`Sequential`]'s state dict.
//! Rather than downcasting layer objects, it relies on the *order and
//! suffix* of the exported keys, which the `neuspin-bayes` builders fix:
//! `.weight`/`.bias` pairs appear in network order (conv1, conv2, fc1,
//! fc2), `.gamma`/`.beta` pairs per norm layer, `.scale` per scale-drop
//! layer, `.mu`/`.rho` per VI scale layer.

use neuspin_bayes::ArchConfig;
use neuspin_nn::{Sequential, Tensor};

/// Trained parameters of the method CNN, grouped by role.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedParams {
    /// Weight matrices in network order: conv1 `[c1, 9]`,
    /// conv2 `[c2, c1·9]`, fc1 `[hidden, flat]`, fc2 `[classes, hidden]`.
    pub weights: Vec<Tensor>,
    /// Bias vectors matching `weights`.
    pub biases: Vec<Tensor>,
    /// Norm γ vectors in order (3 entries: after conv1, conv2, fc1).
    pub gammas: Vec<Tensor>,
    /// Norm β vectors matching `gammas`.
    pub betas: Vec<Tensor>,
    /// Scale-dropout scale vectors (empty unless the method uses them).
    pub scales: Vec<Tensor>,
    /// VI posterior means (empty unless sub-set VI).
    pub mus: Vec<Tensor>,
    /// VI posterior ρ (pre-softplus std) vectors matching `mus`.
    pub rhos: Vec<Tensor>,
}

impl TrainedParams {
    /// Extracts the parameter groups from a trained model built by
    /// [`neuspin_bayes::build_cnn`].
    ///
    /// # Panics
    ///
    /// Panics if the state dict does not contain the expected four
    /// weight matrices with shapes implied by `arch`.
    pub fn from_model(model: &mut Sequential, arch: &ArchConfig) -> Self {
        let state = model.state_dict();
        let collect = |suffix: &str| -> Vec<Vec<f32>> {
            state
                .iter()
                .filter(|(k, _)| k.ends_with(suffix))
                .map(|(_, v)| v.clone())
                .collect()
        };
        let raw_w = collect(".weight");
        let raw_b = collect(".bias");
        assert_eq!(raw_w.len(), 4, "expected 4 weight matrices, got {}", raw_w.len());
        assert_eq!(raw_b.len(), 4, "expected 4 bias vectors");

        let shapes: [(usize, usize); 4] = [
            (arch.c1, 9),
            (arch.c2, arch.c1 * 9),
            (arch.hidden, arch.flat_features()),
            (arch.classes, arch.hidden),
        ];
        let weights: Vec<Tensor> = raw_w
            .into_iter()
            .zip(shapes)
            .map(|(data, (o, i))| Tensor::from_vec(data, &[o, i]))
            .collect();
        let biases: Vec<Tensor> =
            raw_b.into_iter().map(|data| { let n = data.len(); Tensor::from_vec(data, &[n]) }).collect();

        let vectorize = |raw: Vec<Vec<f32>>| -> Vec<Tensor> {
            raw.into_iter().map(|data| { let n = data.len(); Tensor::from_vec(data, &[n]) }).collect()
        };
        Self {
            weights,
            biases,
            gammas: vectorize(collect(".gamma")),
            betas: vectorize(collect(".beta")),
            scales: vectorize(collect(".scale")),
            mus: vectorize(collect(".mu")),
            rhos: vectorize(collect(".rho")),
        }
    }

    /// Binarizes weight matrix `idx`: returns `(signs [o·i], alphas [o])`
    /// with `α_o = mean |w_o|` — the values a binary crossbar stores and
    /// the digital periphery applies.
    pub fn binarized(&self, idx: usize) -> (Vec<f32>, Vec<f32>) {
        let w = &self.weights[idx];
        let (o, i) = (w.shape()[0], w.shape()[1]);
        let mut signs = vec![0.0f32; o * i];
        let mut alphas = vec![0.0f32; o];
        for r in 0..o {
            let row = &w.as_slice()[r * i..(r + 1) * i];
            alphas[r] = row.iter().map(|x| x.abs()).sum::<f32>() / i as f32;
            for c in 0..i {
                signs[r * i + c] = if row[c] >= 0.0 { 1.0 } else { -1.0 };
            }
        }
        (signs, alphas)
    }

    /// Transposes a row-major `[o, i]` sign matrix into the crossbar's
    /// `[rows = i, cols = o]` layout.
    pub fn to_crossbar_layout(signs: &[f32], o: usize, i: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; o * i];
        for r in 0..o {
            for c in 0..i {
                out[c * o + r] = signs[r * i + c];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuspin_bayes::{build_cnn, Method};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arch() -> ArchConfig {
        ArchConfig::default()
    }

    #[test]
    fn extracts_expected_groups_per_method() {
        let a = arch();
        for (method, scales, mus) in [
            (Method::Deterministic, 0, 0),
            (Method::SpinDrop, 0, 0),
            (Method::SpinScaleDrop, 3, 0),
            (Method::SubsetVi, 0, 3),
            (Method::AffineDropout, 0, 0),
        ] {
            let mut rng = StdRng::seed_from_u64(1);
            let mut m = build_cnn(method, &a, &mut rng);
            let p = TrainedParams::from_model(&mut m, &a);
            assert_eq!(p.weights.len(), 4, "{method}");
            assert_eq!(p.gammas.len(), 3, "{method}");
            assert_eq!(p.scales.len(), scales, "{method}");
            assert_eq!(p.mus.len(), mus, "{method}");
            assert_eq!(p.rhos.len(), mus, "{method}");
            // Shape spot checks.
            assert_eq!(p.weights[0].shape(), &[a.c1, 9]);
            assert_eq!(p.weights[2].shape(), &[a.hidden, a.flat_features()]);
            assert_eq!(p.biases[3].len(), a.classes);
            assert_eq!(p.gammas[2].len(), a.hidden);
        }
    }

    #[test]
    fn binarization_signs_and_alphas() {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = build_cnn(Method::Deterministic, &a, &mut rng);
        let mut p = TrainedParams::from_model(&mut m, &a);
        p.weights[0] = Tensor::from_vec(vec![0.5, -0.3, 0.1, -0.9], &[2, 2]);
        let (signs, alphas) = p.binarized(0);
        assert_eq!(signs, vec![1.0, -1.0, 1.0, -1.0]);
        assert!((alphas[0] - 0.4).abs() < 1e-6);
        assert!((alphas[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn crossbar_layout_transposes() {
        // [o=2, i=3] row-major → [rows=3, cols=2].
        let signs = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let layout = TrainedParams::to_crossbar_layout(&signs, 2, 3);
        assert_eq!(layout, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }
}
