//! Deterministic chaos injection.
//!
//! A [`ChaosPlan`] decides *where* faults strike — die crashes, worker
//! panics, queue stalls, latency spikes, stored-weight bit flips,
//! malformed request bytes — from a dedicated seed that never touches
//! the model or serving RNG streams. Decisions are **stateless**: each
//! is a pure hash of `(chaos seed, site, key)`, where the key is a
//! deterministic progress coordinate (batch index, connection-job
//! index, die id). Two consequences fall out of that design:
//!
//! * the same plan replayed against the same workload injects the same
//!   faults at the same points, regardless of thread count or timing —
//!   chaos campaigns are reproducible and their reports byte-stable;
//! * consulting the plan consumes nothing: probing a site that does not
//!   fire leaves every other decision unchanged, so hooks can be added
//!   or skipped freely without reshuffling the injected faults.
//!
//! Intensities are expressed per mille (0–1000). A plan with every
//! intensity at zero never fires anywhere and costs one hash per probe
//! — the serve layer runs the hooks unconditionally and lets the plan
//! say no.

use crate::rng::SplitMix64;

/// Golden-ratio odd constant used by every seed-splitting site in the
/// workspace.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// A named fault-injection site. The discriminant feeds the decision
/// hash, so each site sees an independent stream: raising the stall
/// intensity cannot move a single panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosSite {
    /// A connection worker panics at a job boundary (after the response
    /// for the keyed job was written). Keyed by connection-job index.
    WorkerPanic,
    /// The batcher sleeps before draining the keyed batch. Keyed by
    /// batch index.
    QueueStall,
    /// One die's evaluation is delayed before it starts. Keyed by
    /// `batch_index · #dies + die`.
    LatencySpike,
    /// A die crashes (power-fails) between request waves. Keyed by
    /// `wave · #dies + die`.
    DieCrash,
    /// Stored weight bits flip between scrubs (radiation / retention
    /// upsets beyond the aging model). Keyed by `wave · #dies + die`.
    WeightFlip,
    /// The client ships malformed or truncated request bytes. Keyed by
    /// request index.
    MalformedRequest,
}

impl ChaosSite {
    /// Stable snake_case name — used by flight-recorder events and the
    /// chaos campaign's reconstruction cross-check.
    pub fn name(self) -> &'static str {
        match self {
            ChaosSite::WorkerPanic => "worker_panic",
            ChaosSite::QueueStall => "queue_stall",
            ChaosSite::LatencySpike => "latency_spike",
            ChaosSite::DieCrash => "die_crash",
            ChaosSite::WeightFlip => "weight_flip",
            ChaosSite::MalformedRequest => "malformed_request",
        }
    }

    fn tag(self) -> u64 {
        match self {
            ChaosSite::WorkerPanic => 0xC4A0_0001,
            ChaosSite::QueueStall => 0xC4A0_0002,
            ChaosSite::LatencySpike => 0xC4A0_0003,
            ChaosSite::DieCrash => 0xC4A0_0004,
            ChaosSite::WeightFlip => 0xC4A0_0005,
            ChaosSite::MalformedRequest => 0xC4A0_0006,
        }
    }
}

/// Per-site chaos intensities plus the plan seed. `Default` is fully
/// quiet (every intensity zero), so embedding a plan in a config never
/// changes behaviour until a campaign turns a knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the chaos decision stream. Independent of (and never
    /// mixed into) model, serving, or evaluation seeds.
    pub seed: u64,
    /// Probability, in per mille, that a connection worker panics after
    /// finishing a job.
    pub worker_panic_per_mille: u32,
    /// Probability, in per mille, that the batcher stalls before a
    /// batch.
    pub queue_stall_per_mille: u32,
    /// Probability, in per mille, of a per-die latency spike on a
    /// batch evaluation.
    pub latency_spike_per_mille: u32,
    /// Probability, in per mille, of a die crash per (wave, die).
    pub die_crash_per_mille: u32,
    /// Probability, in per mille, of a weight-flip event per
    /// (wave, die).
    pub weight_flip_per_mille: u32,
    /// Probability, in per mille, that a client request is shipped
    /// malformed.
    pub malformed_per_mille: u32,
    /// Duration of an injected queue stall, in milliseconds.
    pub stall_millis: u64,
    /// Duration of an injected latency spike, in milliseconds.
    pub spike_millis: u64,
    /// Stored-sign flips injected per firing [`ChaosSite::WeightFlip`]
    /// event.
    pub flips_per_event: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            worker_panic_per_mille: 0,
            queue_stall_per_mille: 0,
            latency_spike_per_mille: 0,
            die_crash_per_mille: 0,
            weight_flip_per_mille: 0,
            malformed_per_mille: 0,
            stall_millis: 5,
            spike_millis: 5,
            flips_per_event: 4,
        }
    }
}

/// The stateless decision engine over a [`ChaosConfig`]. Construction
/// is free; the plan holds no mutable state and is `Copy`, so every
/// thread can carry its own.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    config: ChaosConfig,
}

impl ChaosPlan {
    /// Wraps a config in a decision engine.
    pub fn new(config: ChaosConfig) -> Self {
        Self { config }
    }

    /// The wrapped config.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// The decision hash for `(site, key)`: two chained SplitMix64
    /// outputs so that neighbouring keys land far apart.
    fn hash(&self, site: ChaosSite, key: u64) -> u64 {
        let mut outer = SplitMix64::new(self.config.seed ^ site.tag().wrapping_mul(GOLDEN));
        let lane = outer.next_u64();
        let mut inner = SplitMix64::new(lane ^ key.wrapping_mul(GOLDEN));
        inner.next_u64()
    }

    fn per_mille(&self, site: ChaosSite) -> u32 {
        match site {
            ChaosSite::WorkerPanic => self.config.worker_panic_per_mille,
            ChaosSite::QueueStall => self.config.queue_stall_per_mille,
            ChaosSite::LatencySpike => self.config.latency_spike_per_mille,
            ChaosSite::DieCrash => self.config.die_crash_per_mille,
            ChaosSite::WeightFlip => self.config.weight_flip_per_mille,
            ChaosSite::MalformedRequest => self.config.malformed_per_mille,
        }
    }

    /// Whether the fault at `site` strikes occurrence `key`. Pure: the
    /// same `(plan, site, key)` always answers the same, and probing
    /// never perturbs other decisions.
    pub fn fires(&self, site: ChaosSite, key: u64) -> bool {
        let pm = self.per_mille(site);
        pm > 0 && self.hash(site, key) % 1000 < u64::from(pm)
    }

    /// A deterministic auxiliary draw for a firing site (which cell to
    /// flip, how many bytes to truncate, …). Distinct `salt`s give
    /// independent values for the same occurrence.
    pub fn draw(&self, site: ChaosSite, key: u64, salt: u64) -> u64 {
        self.hash(site, key ^ salt.wrapping_mul(GOLDEN).rotate_left(17))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(seed: u64) -> ChaosPlan {
        ChaosPlan::new(ChaosConfig {
            seed,
            worker_panic_per_mille: 100,
            queue_stall_per_mille: 100,
            latency_spike_per_mille: 100,
            die_crash_per_mille: 100,
            weight_flip_per_mille: 100,
            malformed_per_mille: 100,
            ..ChaosConfig::default()
        })
    }

    const SITES: [ChaosSite; 6] = [
        ChaosSite::WorkerPanic,
        ChaosSite::QueueStall,
        ChaosSite::LatencySpike,
        ChaosSite::DieCrash,
        ChaosSite::WeightFlip,
        ChaosSite::MalformedRequest,
    ];

    #[test]
    fn decisions_are_pure_and_reproducible() {
        let a = noisy(42);
        let b = noisy(42);
        for site in SITES {
            for key in 0..500 {
                assert_eq!(a.fires(site, key), b.fires(site, key), "{site:?}/{key}");
                assert_eq!(a.draw(site, key, 7), b.draw(site, key, 7), "{site:?}/{key}");
            }
        }
    }

    #[test]
    fn quiet_plan_never_fires() {
        let plan = ChaosPlan::new(ChaosConfig { seed: 9, ..ChaosConfig::default() });
        for site in SITES {
            for key in 0..200 {
                assert!(!plan.fires(site, key), "{site:?}/{key} fired on a quiet plan");
            }
        }
    }

    #[test]
    fn intensity_tracks_firing_rate() {
        let plan = noisy(7);
        for site in SITES {
            let hits = (0..10_000u64).filter(|&k| plan.fires(site, k)).count();
            // 10 % nominal; a generous window keeps the test seed-robust.
            assert!((500..1500).contains(&hits), "{site:?}: {hits}/10000 at 100 per mille");
        }
    }

    #[test]
    fn sites_are_independent_streams() {
        let plan = noisy(11);
        // The per-key decisions of two sites with identical intensity
        // must not be identical — each site hashes through its own tag.
        let panics: Vec<bool> = (0..2000).map(|k| plan.fires(ChaosSite::WorkerPanic, k)).collect();
        let stalls: Vec<bool> = (0..2000).map(|k| plan.fires(ChaosSite::QueueStall, k)).collect();
        assert_ne!(panics, stalls);
    }

    #[test]
    fn seeds_move_the_fault_pattern() {
        let a = noisy(1);
        let b = noisy(2);
        let pa: Vec<bool> = (0..2000).map(|k| a.fires(ChaosSite::DieCrash, k)).collect();
        let pb: Vec<bool> = (0..2000).map(|k| b.fires(ChaosSite::DieCrash, k)).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn draw_salts_are_independent() {
        let plan = noisy(3);
        assert_ne!(
            plan.draw(ChaosSite::WeightFlip, 5, 0),
            plan.draw(ChaosSite::WeightFlip, 5, 1)
        );
    }
}
