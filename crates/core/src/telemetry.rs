//! Unified zero-dependency observability: spans, metrics, and
//! deterministic inference traces across device → CIM → runtime.
//!
//! The workspace produces rich signals — [`neuspin_cim::OpCounter`]
//! tallies, [`neuspin_energy::EnergyModel`] joules,
//! [`crate::HealthMonitor`] drift scores, [`crate::Supervisor`]
//! recovery trails — but before this module each was an ad-hoc side
//! channel read differently by every experiment binary. `telemetry` is
//! the one substrate they all flow through:
//!
//! * **Spans** ([`crate::span!`]) — hierarchical, nesting across
//!   `HardwareModel::predict*` → per-pass → per-block → crossbar
//!   evaluations. A span records wall time (metrics sink only) and any
//!   deterministic annotations the instrumentation attaches (op-counter
//!   deltas, energy, model-time device-hours). Spans consume **zero RNG
//!   draws**, so a traced run is bit-identical to an untraced one.
//! * **Metrics** — named [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s, registered once in a global registry. With
//!   telemetry disabled every recording call is a single relaxed atomic
//!   load and an early return, cheap enough that the disabled path
//!   stays within noise of the untelemetered throughput baseline
//!   (enforced by `exp_observe --check`).
//! * **Sinks** — an in-memory [`snapshot`], a Prometheus-style text
//!   exposition ([`prometheus_text`]), and a JSONL trace writer
//!   ([`trace_to_jsonl`]) built on the hand-rolled [`crate::json`]
//!   module with stable field ordering.
//!
//! ## Determinism contract
//!
//! Trace events carry **only deterministic fields** (span name, depth,
//! pass/layer indices, op-counter deltas, model-time hours, energy).
//! Wall-clock time goes exclusively into histograms and the metrics
//! sinks, never into the trace. Each thread buffers its events locally;
//! the parallel MC engine ([`crate::mc_predict_par`]) harvests each
//! pass's events with [`trace_mark`]/[`take_trace_since`] and re-appends
//! them in ascending pass order — the same merge-on-join discipline the
//! op counters use — so the emitted JSONL byte-compares across
//! `NEUSPIN_THREADS` settings.
//!
//! ## Example
//!
//! ```
//! use neuspin_core::{span, telemetry};
//!
//! telemetry::set_enabled(true, true);
//! {
//!     let mut outer = span!("predict", passes = 4usize);
//!     let _inner = span!("mc_pass", pass = 0usize);
//!     outer.record("note", "deterministic");
//! }
//! let events = telemetry::take_trace();
//! assert_eq!(events.len(), 2, "inner exits first, then outer");
//! let jsonl = telemetry::trace_to_jsonl(&events);
//! assert!(jsonl.starts_with("{\"span\":\"mc_pass\",\"depth\":1"));
//! telemetry::set_enabled(false, false);
//! ```

use crate::json::{Json, ToJson};
use neuspin_cim::OpCounter;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Enable flags
// ---------------------------------------------------------------------

static METRICS_ON: AtomicBool = AtomicBool::new(false);
static TRACE_ON: AtomicBool = AtomicBool::new(false);
/// Virtual device time in hours (f64 bits) — set by the runtime
/// supervisor, stamped into span trace events. Deterministic: it only
/// changes with simulated time, never with the wall clock.
static MODEL_TIME_BITS: AtomicU64 = AtomicU64::new(0);

/// Turns the metrics and trace pipelines on or off (both default off).
///
/// Metrics feed the registry sinks (snapshot / Prometheus); the trace
/// feeds the per-thread deterministic event buffers. Each hot-path
/// check is one relaxed atomic load.
pub fn set_enabled(metrics: bool, trace: bool) {
    METRICS_ON.store(metrics, Ordering::Relaxed);
    TRACE_ON.store(trace, Ordering::Relaxed);
}

/// Whether the metrics pipeline is recording.
pub fn metrics_enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// Whether the deterministic trace pipeline is recording.
pub fn trace_enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Whether any telemetry pipeline is on (the single check on the
/// instrumented hot paths).
pub fn active() -> bool {
    metrics_enabled() || trace_enabled()
}

/// Sets the virtual device time stamped into span trace events and the
/// `model_time_hours` gauge. No-op while telemetry is fully disabled.
pub fn set_model_time_hours(hours: f64) {
    if !active() {
        return;
    }
    MODEL_TIME_BITS.store(hours.to_bits(), Ordering::Relaxed);
    if metrics_enabled() {
        gauge("model_time_hours").set(hours);
    }
}

/// The current virtual device time in hours (0 until set).
pub fn model_time_hours() -> f64 {
    f64::from_bits(MODEL_TIME_BITS.load(Ordering::Relaxed))
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

struct HistInner {
    /// Ascending, finite upper bounds; an implicit `+Inf` bucket is
    /// appended, so `buckets.len() == bounds.len() + 1`.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Σ observed values, as f64 bits updated by CAS.
    sum_bits: AtomicU64,
}

#[derive(Default)]
struct Registry {
    counters: Vec<(String, Arc<AtomicU64>)>,
    gauges: Vec<(String, Arc<AtomicU64>)>,
    histograms: Vec<(String, Arc<HistInner>)>,
    /// Device-op rollup: every instrumented op-counter delta is folded
    /// in here through the one shared [`OpCounter::merge`].
    ops: OpCounter,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .expect("telemetry registry poisoned")
}

/// A monotonically increasing named metric. Clone-cheap handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (no-op while metrics are disabled).
    pub fn add(&self, n: u64) {
        if metrics_enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 (no-op while metrics are disabled).
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named point-in-time value (f64). Clone-cheap handle.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value (no-op while metrics are disabled).
    pub fn set(&self, value: f64) {
        if metrics_enabled() {
            self.0.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (CAS loop; no-op while metrics are disabled).
    pub fn add(&self, delta: f64) {
        if !metrics_enabled() {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram (Prometheus `le` semantics: bucket `i`
/// counts observations `<= bounds[i]`, plus a final `+Inf` bucket).
/// Clone-cheap handle.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Records one observation (no-op while metrics are disabled).
    pub fn observe(&self, value: f64) {
        if !metrics_enabled() {
            return;
        }
        let h = &self.0;
        let idx = h.bounds.iter().position(|&b| value <= b).unwrap_or(h.bounds.len());
        h.buckets[idx].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = h.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match h.sum_bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

/// Registers (or fetches) the named counter. Register-once semantics:
/// the first call creates it, later calls return a handle to the same
/// underlying cell.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry();
    if let Some((_, c)) = reg.counters.iter().find(|(n, _)| n == name) {
        return Counter(Arc::clone(c));
    }
    let cell = Arc::new(AtomicU64::new(0));
    reg.counters.push((name.to_string(), Arc::clone(&cell)));
    Counter(cell)
}

/// Registers (or fetches) the named gauge.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry();
    if let Some((_, g)) = reg.gauges.iter().find(|(n, _)| n == name) {
        return Gauge(Arc::clone(g));
    }
    let cell = Arc::new(AtomicU64::new(0f64.to_bits()));
    reg.gauges.push((name.to_string(), Arc::clone(&cell)));
    Gauge(cell)
}

/// Registers (or fetches) the named histogram with the given ascending
/// finite bucket upper bounds (a `+Inf` overflow bucket is implicit).
///
/// # Panics
///
/// Panics if `bounds` is empty, not strictly ascending, or non-finite —
/// or if the name was already registered with different bounds.
pub fn histogram(name: &str, bounds: &[f64]) -> Histogram {
    assert!(!bounds.is_empty(), "histogram '{name}' needs at least one bucket bound");
    assert!(
        bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
        "histogram '{name}' bounds must be finite and strictly ascending"
    );
    let mut reg = registry();
    if let Some((_, h)) = reg.histograms.iter().find(|(n, _)| n == name) {
        assert_eq!(h.bounds, bounds, "histogram '{name}' re-registered with different bounds");
        return Histogram(Arc::clone(h));
    }
    let inner = Arc::new(HistInner {
        bounds: bounds.to_vec(),
        buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
        count: AtomicU64::new(0),
        sum_bits: AtomicU64::new(0f64.to_bits()),
    });
    reg.histograms.push((name.to_string(), Arc::clone(&inner)));
    Histogram(inner)
}

/// The default wall-time bucket ladder for span histograms:
/// 1 µs … 10 s in decades, in nanoseconds.
pub fn default_time_buckets_ns() -> [f64; 8] {
    [1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10]
}

/// Serve-latency bucket bounds in milliseconds, tuned to the observed
/// serving distribution (p50 ≈ 11 ms, p95 ≈ 21 ms, p99 ≈ 35 ms in
/// `BENCH_serving.json`): dense 1–2 ms steps through the p50–p99 band
/// so adjacent percentiles land in distinct buckets, decade-spaced
/// tails on both sides. The decade ladder above collapsed p95 and p99
/// into one 10–100 ms bucket.
pub fn serve_latency_buckets_ms() -> [f64; 18] {
    [
        0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0, 18.0, 21.0, 25.0, 30.0, 35.0, 45.0,
        75.0, 150.0, 500.0,
    ]
}

/// Folds an op-counter delta into the registry's device-op rollup via
/// the single shared [`OpCounter::merge`] (no-op while metrics are
/// disabled).
pub fn record_ops(delta: &OpCounter) {
    if metrics_enabled() {
        registry().ops.merge(delta);
    }
}

/// The accumulated device-op rollup.
pub fn ops_snapshot() -> OpCounter {
    registry().ops
}

/// Zeroes every registered metric value and the device-op rollup, and
/// clears the calling thread's trace buffer (registrations are kept).
/// Bench binaries call this between measurement phases.
pub fn reset() {
    {
        let mut reg = registry();
        for (_, c) in &reg.counters {
            c.store(0, Ordering::Relaxed);
        }
        for (_, g) in &reg.gauges {
            g.store(0f64.to_bits(), Ordering::Relaxed);
        }
        for (_, h) in &reg.histograms {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        }
        reg.ops.reset();
    }
    MODEL_TIME_BITS.store(0, Ordering::Relaxed);
    TRACE.with(|t| {
        let mut t = t.borrow_mut();
        t.events.clear();
        t.depth = 0;
    });
}

// ---------------------------------------------------------------------
// Snapshot + Prometheus sinks
// ---------------------------------------------------------------------

/// Frozen view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Finite upper bounds (the final `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, `bounds.len() + 1` entries.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

crate::impl_to_json!(HistogramSnapshot { name, bounds, buckets, count, sum });

/// Frozen view of the whole registry, sorted by metric name.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// The device-op rollup.
    pub ops: OpCounter,
}

impl MetricsSnapshot {
    /// Looks up a counter value.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram snapshot.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".to_string(),
                Json::Obj(
                    self.counters.iter().map(|(n, v)| (n.clone(), v.to_json())).collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Json::Obj(self.gauges.iter().map(|(n, v)| (n.clone(), v.to_json())).collect()),
            ),
            ("histograms".to_string(), self.histograms.to_json()),
            ("ops".to_string(), self.ops.to_json()),
        ])
    }
}

/// Takes a frozen, name-sorted snapshot of every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let mut counters: Vec<(String, u64)> =
        reg.counters.iter().map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed))).collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    let mut gauges: Vec<(String, f64)> = reg
        .gauges
        .iter()
        .map(|(n, g)| (n.clone(), f64::from_bits(g.load(Ordering::Relaxed))))
        .collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    let mut histograms: Vec<HistogramSnapshot> = reg
        .histograms
        .iter()
        .map(|(n, h)| HistogramSnapshot {
            name: n.clone(),
            bounds: h.bounds.clone(),
            buckets: h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: h.count.load(Ordering::Relaxed),
            sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot { counters, gauges, histograms, ops: reg.ops }
}

/// Renders the registry in the Prometheus text exposition format
/// (counters, gauges, and cumulative-`le` histograms with `_sum` and
/// `_count` series), metrics sorted by name.
pub fn prometheus_text() -> String {
    use std::fmt::Write as _;
    let snap = snapshot();
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
    }
    for h in &snap.histograms {
        let _ = writeln!(out, "# TYPE {} histogram", h.name);
        let mut cumulative = 0u64;
        for (i, &bucket) in h.buckets.iter().enumerate() {
            cumulative += bucket;
            if i < h.bounds.len() {
                let _ =
                    writeln!(out, "{}_bucket{{le=\"{}\"}} {cumulative}", h.name, h.bounds[i]);
            } else {
                let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {cumulative}", h.name);
            }
        }
        let _ = writeln!(out, "{}_sum {}\n{}_count {}", h.name, h.sum, h.name, h.count);
    }
    out
}

// ---------------------------------------------------------------------
// Deterministic trace: per-thread event buffers
// ---------------------------------------------------------------------

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span (emitted at exit, so children precede parents).
    Span,
    /// A point event emitted by [`emit`] / [`crate::trace_event!`].
    Point,
}

/// One deterministic trace record. Contains **no wall-clock data** —
/// that is the contract that lets traces byte-compare across thread
/// counts and reruns.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span or point event.
    pub kind: EventKind,
    /// Static name (low cardinality by construction).
    pub name: &'static str,
    /// Nesting depth at which the span/point lived.
    pub depth: u32,
    /// Deterministic annotations, in recording order.
    pub fields: Vec<(&'static str, Json)>,
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        let key = match self.kind {
            EventKind::Span => "span",
            EventKind::Point => "event",
        };
        let mut pairs = Vec::with_capacity(2 + self.fields.len());
        pairs.push((key.to_string(), Json::Str(self.name.to_string())));
        pairs.push(("depth".to_string(), self.depth.to_json()));
        pairs.extend(self.fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())));
        Json::Obj(pairs)
    }
}

struct ThreadTrace {
    events: Vec<TraceEvent>,
    depth: u32,
}

thread_local! {
    static TRACE: RefCell<ThreadTrace> =
        const { RefCell::new(ThreadTrace { events: Vec::new(), depth: 0 }) };
}

/// The calling thread's current span nesting depth.
pub fn trace_depth() -> u32 {
    TRACE.with(|t| t.borrow().depth)
}

/// Forces the calling thread's nesting depth — used by the parallel
/// engine so a worker thread's spans nest at the fan-out point's depth.
pub fn set_trace_depth(depth: u32) {
    TRACE.with(|t| t.borrow_mut().depth = depth);
}

/// The calling thread's current buffered event count — a cursor for
/// [`take_trace_since`].
pub fn trace_mark() -> usize {
    TRACE.with(|t| t.borrow().events.len())
}

/// Drains events buffered after `mark` (in emission order). The
/// parallel engine harvests each pass's events this way and re-appends
/// them in pass order.
pub fn take_trace_since(mark: usize) -> Vec<TraceEvent> {
    TRACE.with(|t| {
        let mut t = t.borrow_mut();
        if mark >= t.events.len() {
            Vec::new()
        } else {
            t.events.split_off(mark)
        }
    })
}

/// Drains the calling thread's whole trace buffer.
pub fn take_trace() -> Vec<TraceEvent> {
    take_trace_since(0)
}

/// Appends pre-harvested events to the calling thread's buffer (the
/// merge half of the harvest/merge protocol).
pub fn append_trace(events: Vec<TraceEvent>) {
    if events.is_empty() {
        return;
    }
    TRACE.with(|t| t.borrow_mut().events.extend(events));
}

/// Emits a point event at the current depth (no-op unless tracing).
pub fn emit(name: &'static str, fields: Vec<(&'static str, Json)>) {
    if !trace_enabled() {
        return;
    }
    TRACE.with(|t| {
        let mut t = t.borrow_mut();
        let depth = t.depth;
        t.events.push(TraceEvent { kind: EventKind::Point, name, depth, fields });
    });
}

/// Serializes events to JSON-lines: one compact object per line with
/// stable field ordering (`span`/`event`, `depth`, then annotations in
/// recording order). Byte-stable across thread counts by the
/// determinism contract above.
pub fn trace_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.to_json().to_string());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

struct SpanInner {
    name: &'static str,
    fields: Vec<(&'static str, Json)>,
    /// Wall-clock start — metrics sink only, never traced.
    start: Option<Instant>,
    /// Depth this span opened at (restored on drop).
    depth: u32,
}

/// RAII guard for one span; created by [`crate::span!`]. While
/// telemetry is disabled the guard is an inert no-op.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// Enters a span. `make_fields` is only invoked when telemetry is
    /// active, so a disabled span allocates nothing.
    pub fn enter_with(
        name: &'static str,
        make_fields: impl FnOnce() -> Vec<(&'static str, Json)>,
    ) -> SpanGuard {
        if !active() {
            return SpanGuard { inner: None };
        }
        let depth = TRACE.with(|t| {
            let mut t = t.borrow_mut();
            let d = t.depth;
            t.depth = d + 1;
            d
        });
        let start = metrics_enabled().then(Instant::now);
        SpanGuard { inner: Some(SpanInner { name, fields: make_fields(), start, depth }) }
    }

    /// Whether this guard is live (telemetry was active at entry).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a deterministic annotation to the span's trace event.
    pub fn record(&mut self, key: &'static str, value: impl ToJson) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.to_json()));
        }
    }

    /// Attaches an op-counter delta (all fields, stable order) and
    /// folds it into the registry's device-op rollup.
    pub fn record_ops(&mut self, delta: &OpCounter) {
        if self.inner.is_some() {
            self.record("ops", delta.to_json());
            record_ops(delta);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut inner) = self.inner.take() else {
            return;
        };
        TRACE.with(|t| t.borrow_mut().depth = inner.depth);
        if trace_enabled() {
            inner.fields.push(("t_hours", Json::Num(model_time_hours())));
            TRACE.with(|t| {
                t.borrow_mut().events.push(TraceEvent {
                    kind: EventKind::Span,
                    name: inner.name,
                    depth: inner.depth,
                    fields: std::mem::take(&mut inner.fields),
                });
            });
        }
        if let Some(start) = inner.start {
            let ns = start.elapsed().as_nanos() as f64;
            span_histogram(inner.name).observe(ns);
            counter("spans_total").inc();
        }
    }
}

/// The wall-time histogram for a span name (`span_ns_<name>`, default
/// decade buckets).
pub fn span_histogram(name: &str) -> Histogram {
    histogram(&format!("span_ns_{name}"), &default_time_buckets_ns())
}

/// Opens a hierarchical span: `span!("name")` or
/// `span!("name", key = value, ...)`. Returns a [`SpanGuard`] whose
/// drop closes the span. Field values go through
/// [`ToJson`](crate::json::ToJson) and must be deterministic — never
/// record wall-clock readings here.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::telemetry::SpanGuard::enter_with($name, ::std::vec::Vec::new)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::telemetry::SpanGuard::enter_with($name, || ::std::vec![
            $((stringify!($key), $crate::json::ToJson::to_json(&$value))),+
        ])
    };
}

/// Emits a deterministic point event: `trace_event!("name", key = value, ...)`.
/// No-op unless tracing is enabled (field expressions are not evaluated).
#[macro_export]
macro_rules! trace_event {
    ($name:expr) => {
        $crate::telemetry::emit($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::telemetry::trace_enabled() {
            $crate::telemetry::emit($name, ::std::vec![
                $((stringify!($key), $crate::json::ToJson::to_json(&$value))),+
            ]);
        }
    };
}

/// Serializes tests that flip the process-wide enable flags (the
/// `cargo test` harness is multi-threaded). Not part of the public API.
#[doc(hidden)]
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock() -> MutexGuard<'static, ()> {
        test_lock()
    }

    fn with_telemetry<T>(metrics: bool, trace: bool, f: impl FnOnce() -> T) -> T {
        let _guard = lock();
        reset();
        set_enabled(metrics, trace);
        let out = f();
        set_enabled(false, false);
        reset();
        out
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        with_telemetry(false, false, || {
            let c = counter("test_disabled_counter");
            let g = gauge("test_disabled_gauge");
            let h = histogram("test_disabled_hist", &[1.0, 2.0]);
            c.add(5);
            g.set(3.5);
            h.observe(1.5);
            assert_eq!(c.get(), 0);
            assert_eq!(g.get(), 0.0);
            assert_eq!(h.count(), 0);
            let span = span!("test_disabled_span", k = 1u32);
            assert!(!span.is_active());
            drop(span);
            assert!(take_trace().is_empty());
        });
    }

    #[test]
    fn counters_gauges_histograms_record_when_enabled() {
        with_telemetry(true, false, || {
            let c = counter("test_counter");
            c.add(2);
            c.inc();
            assert_eq!(c.get(), 3);
            // Register-once: a second handle sees the same cell.
            assert_eq!(counter("test_counter").get(), 3);

            let g = gauge("test_gauge");
            g.set(2.0);
            g.add(0.5);
            assert_eq!(g.get(), 2.5);

            let h = histogram("test_hist", &[10.0, 100.0]);
            h.observe(5.0); // bucket 0 (<= 10)
            h.observe(10.0); // bucket 0 (le semantics)
            h.observe(50.0); // bucket 1
            h.observe(1e9); // +Inf bucket
            assert_eq!(h.count(), 4);
            assert!((h.sum() - (5.0 + 10.0 + 50.0 + 1e9)).abs() < 1e-6);
            let snap = snapshot();
            let hs = snap.histogram("test_hist").expect("registered");
            assert_eq!(hs.buckets, vec![2, 1, 1]);
        });
    }

    #[test]
    fn snapshot_is_name_sorted() {
        with_telemetry(true, false, || {
            counter("test_zz").inc();
            counter("test_aa").inc();
            gauge("test_g2").set(1.0);
            gauge("test_g1").set(2.0);
            let snap = snapshot();
            let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            assert_eq!(names, sorted);
            let gnames: Vec<&str> = snap.gauges.iter().map(|(n, _)| n.as_str()).collect();
            let mut gsorted = gnames.clone();
            gsorted.sort_unstable();
            assert_eq!(gnames, gsorted);
            assert_eq!(snap.counter("test_aa"), Some(1));
            assert_eq!(snap.gauge("test_g1"), Some(2.0));
        });
    }

    #[test]
    fn ops_rollup_uses_op_counter_merge() {
        with_telemetry(true, false, || {
            let d1 = OpCounter { cell_reads: 10, adc_converts: 2, ..OpCounter::new() };
            let d2 = OpCounter { cell_reads: 5, rng_bits: 7, ..OpCounter::new() };
            record_ops(&d1);
            record_ops(&d2);
            let ops = ops_snapshot();
            let mut expect = d1;
            expect.merge(&d2);
            assert_eq!(ops, expect);
        });
    }

    #[test]
    fn spans_nest_and_trace_in_exit_order() {
        with_telemetry(false, true, || {
            assert_eq!(trace_depth(), 0);
            {
                let mut outer = span!("test_outer", a = 1u32);
                assert_eq!(trace_depth(), 1);
                {
                    let _inner = span!("test_inner");
                    assert_eq!(trace_depth(), 2);
                }
                assert_eq!(trace_depth(), 1);
                outer.record("b", 2.5f64);
            }
            assert_eq!(trace_depth(), 0);
            let events = take_trace();
            assert_eq!(events.len(), 2);
            assert_eq!(events[0].name, "test_inner");
            assert_eq!(events[0].depth, 1);
            assert_eq!(events[1].name, "test_outer");
            assert_eq!(events[1].depth, 0);
            // Insertion-ordered fields: declared, then recorded, then
            // the model-time stamp.
            let keys: Vec<&str> = events[1].fields.iter().map(|(k, _)| *k).collect();
            assert_eq!(keys, vec!["a", "b", "t_hours"]);
        });
    }

    #[test]
    fn trace_jsonl_is_stable_and_parseable() {
        let jsonl = with_telemetry(false, true, || {
            {
                let _s = span!("test_pass", pass = 3usize);
            }
            trace_event!("test_point", layer = 1usize, flagged = 4u64);
            trace_to_jsonl(&take_trace())
        });
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"span":"test_pass","depth":0,"pass":3,"t_hours":0}"#);
        assert_eq!(lines[1], r#"{"event":"test_point","depth":0,"layer":1,"flagged":4}"#);
        for line in lines {
            crate::json::parse(line).expect("every trace line is valid JSON");
        }
    }

    #[test]
    fn harvest_and_merge_round_trips() {
        with_telemetry(false, true, || {
            {
                let _a = span!("test_before");
            }
            let mark = trace_mark();
            {
                let _b = span!("test_job");
            }
            let harvested = take_trace_since(mark);
            assert_eq!(harvested.len(), 1);
            assert_eq!(trace_mark(), 1, "earlier events stay in place");
            append_trace(harvested);
            let all = take_trace();
            assert_eq!(all.len(), 2);
            assert_eq!(all[0].name, "test_before");
            assert_eq!(all[1].name, "test_job");
        });
    }

    #[test]
    fn span_wall_time_feeds_histogram_not_trace() {
        with_telemetry(true, true, || {
            {
                let _s = span!("test_timed");
            }
            let events = take_trace();
            assert_eq!(events.len(), 1);
            assert!(
                events[0].fields.iter().all(|(k, _)| *k != "ns" && *k != "wall_ns"),
                "wall time must never reach the trace"
            );
            let h = span_histogram("test_timed");
            assert_eq!(h.count(), 1);
            assert!(h.sum() >= 0.0);
            assert_eq!(counter("spans_total").get(), 1);
        });
    }

    #[test]
    fn model_time_is_stamped_into_spans() {
        with_telemetry(true, true, || {
            set_model_time_hours(12.5);
            {
                let _s = span!("test_aged");
            }
            let events = take_trace();
            let (_, t) = events[0].fields.iter().find(|(k, _)| *k == "t_hours").unwrap();
            assert_eq!(t.as_f64(), Some(12.5));
            assert_eq!(gauge("model_time_hours").get(), 12.5);
        });
    }

    #[test]
    fn prometheus_exposition_shape() {
        with_telemetry(true, false, || {
            counter("test_prom_total").add(3);
            gauge("test_prom_temp").set(1.5);
            let h = histogram("test_prom_ns", &[10.0, 100.0]);
            h.observe(7.0);
            h.observe(70.0);
            h.observe(700.0);
            let text = prometheus_text();
            assert!(text.contains("# TYPE test_prom_total counter\ntest_prom_total 3\n"));
            assert!(text.contains("# TYPE test_prom_temp gauge\ntest_prom_temp 1.5\n"));
            assert!(text.contains("test_prom_ns_bucket{le=\"10\"} 1\n"));
            assert!(text.contains("test_prom_ns_bucket{le=\"100\"} 2\n"));
            assert!(text.contains("test_prom_ns_bucket{le=\"+Inf\"} 3\n"));
            assert!(text.contains("test_prom_ns_sum 777\n"));
            assert!(text.contains("test_prom_ns_count 3\n"));
        });
    }

    #[test]
    fn reset_zeroes_values_but_keeps_registrations() {
        with_telemetry(true, true, || {
            counter("test_reset").add(9);
            {
                let _s = span!("test_reset_span");
            }
            reset();
            assert_eq!(counter("test_reset").get(), 0);
            assert!(take_trace().is_empty());
            assert_eq!(trace_depth(), 0);
        });
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = histogram("test_bad_bounds", &[2.0, 1.0]);
    }

    #[test]
    fn worker_depth_override() {
        with_telemetry(false, true, || {
            set_trace_depth(3);
            {
                let _s = span!("test_deep");
            }
            set_trace_depth(0);
            let events = take_trace();
            assert_eq!(events[0].depth, 3);
        });
    }
}
