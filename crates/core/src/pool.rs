//! Deterministic scoped-thread worker pool and the parallel MC engine.
//!
//! The hot loop of every NeuSpin method is `T` stochastic forward
//! passes, and the passes are independent given independent RNG
//! streams — an embarrassingly parallel axis. [`ThreadPool`] fans
//! indexed jobs over `std::thread::scope` workers (no external deps),
//! and [`mc_predict_par`] layers the determinism policy on top:
//!
//! * every pass `t` draws from its own `StdRng` seeded with
//!   [`neuspin_bayes::pass_seeds`]`(seed, T)[t]` — a SplitMix64
//!   expansion of the caller's master seed — so the noise a pass sees
//!   does not depend on which worker runs it;
//! * per-pass probabilities are collected by pass index and reduced in
//!   ascending order by [`neuspin_bayes::mc_aggregate`], so the
//!   floating-point reduction order does not depend on thread count.
//!
//! Together these make the result bit-identical for 1, 2, or N workers
//! and to the sequential reference [`neuspin_bayes::mc_predict_seeded`].
//! Worker states (model clones, whose op counters and sense-margin
//! tallies advanced) are returned to the caller for merging.

use neuspin_bayes::{mc_aggregate, pass_seeds, Predictive};
use neuspin_nn::{softmax, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fixed-size scoped-thread worker pool.
///
/// Threads are spawned per [`ThreadPool::run_chunked`] call inside a
/// `std::thread::scope` (workers may borrow from the caller's stack)
/// and joined before it returns; a pool of 1 runs inline with no spawn
/// at all, making it literally the sequential path.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// Sizes the pool from the `NEUSPIN_THREADS` environment variable
    /// (a positive integer), falling back to the host's available
    /// parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var("NEUSPIN_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            });
        Self::new(threads)
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `jobs` indexed tasks across the pool and returns
    /// `(results in job order, final worker states in worker order)`.
    ///
    /// Each worker `w` gets one state from `init(w)` and a contiguous
    /// chunk of job indices (`w·jobs/W .. (w+1)·jobs/W` — deterministic,
    /// balanced to within one job). Chunking only decides *where* a job
    /// runs; a job that derives everything from its index computes the
    /// same value on any worker.
    ///
    /// # Panics
    ///
    /// A panicking job is caught at the job boundary (the worker's
    /// remaining chunk is skipped; sibling workers run to completion),
    /// counted on the `pool_job_panics_total` telemetry counter, and
    /// re-raised with its *original* payload after all workers have
    /// joined — the panic of the lowest-indexed failing job wins.
    pub fn run_chunked<S, T, FI, FJ>(&self, jobs: usize, init: FI, job: FJ) -> (Vec<T>, Vec<S>)
    where
        S: Send,
        T: Send,
        FI: Fn(usize) -> S + Sync,
        FJ: Fn(&mut S, usize) -> T + Sync,
    {
        if jobs == 0 {
            return (Vec::new(), Vec::new());
        }
        let workers = self.threads.min(jobs);
        if workers == 1 {
            let mut state = init(0);
            let mut results = Vec::with_capacity(jobs);
            for t in 0..jobs {
                match run_job(&job, &mut state, t) {
                    Ok(out) => results.push(out),
                    Err(panic) => std::panic::resume_unwind(panic.payload),
                }
            }
            return (results, vec![state]);
        }
        let init = &init;
        let job = &job;
        let (results, states, panic) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = w * jobs / workers;
                    let hi = (w + 1) * jobs / workers;
                    scope.spawn(move || {
                        let mut state = init(w);
                        let mut out: Vec<T> = Vec::with_capacity(hi - lo);
                        for t in lo..hi {
                            match run_job(job, &mut state, t) {
                                Ok(v) => out.push(v),
                                // Stop this chunk: the state may be
                                // inconsistent mid-panic; siblings keep
                                // running and the payload is re-raised
                                // after the join.
                                Err(panic) => return (out, state, Some(panic)),
                            }
                        }
                        (out, state, None)
                    })
                })
                .collect();
            let mut results = Vec::with_capacity(jobs);
            let mut states = Vec::with_capacity(workers);
            let mut first_panic: Option<JobPanic> = None;
            for handle in handles {
                // Workers catch at the job boundary, so a join error can
                // only come from `init` panicking; surface that as-is.
                let (out, state, panic) = match handle.join() {
                    Ok(v) => v,
                    Err(payload) => {
                        first_panic.get_or_insert(JobPanic { job: usize::MAX, payload });
                        continue;
                    }
                };
                results.extend(out);
                states.push(state);
                if let Some(p) = panic {
                    let lower = first_panic.as_ref().is_none_or(|f| p.job < f.job);
                    if lower {
                        first_panic = Some(p);
                    }
                }
            }
            (results, states, first_panic)
        });
        if let Some(panic) = panic {
            std::panic::resume_unwind(panic.payload);
        }
        (results, states)
    }

    /// Like [`ThreadPool::run_chunked`], but each worker borrows one of
    /// the caller's persistent `states` instead of building a fresh one
    /// via `init`: worker `w` gets exclusive use of `states[w]` for its
    /// chunk, and mutations stay visible to the caller afterwards.
    /// Exactly `threads().min(jobs).min(states.len())` workers run; job
    /// chunking, result ordering, and the panic discipline match
    /// [`ThreadPool::run_chunked`].
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty while `jobs > 0`, or re-raises a
    /// panicking job's payload like [`ThreadPool::run_chunked`].
    pub fn run_chunked_on<S, T, FJ>(&self, jobs: usize, states: &mut [S], job: FJ) -> Vec<T>
    where
        S: Send,
        T: Send,
        FJ: Fn(&mut S, usize) -> T + Sync,
    {
        if jobs == 0 {
            return Vec::new();
        }
        assert!(!states.is_empty(), "run_chunked_on needs at least one state");
        let workers = self.threads.min(jobs).min(states.len());
        if workers == 1 {
            let state = &mut states[0];
            let mut results = Vec::with_capacity(jobs);
            for t in 0..jobs {
                match run_job(&job, state, t) {
                    Ok(out) => results.push(out),
                    Err(panic) => std::panic::resume_unwind(panic.payload),
                }
            }
            return results;
        }
        let job = &job;
        let (results, panic) = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            let mut rest = states;
            for w in 0..workers {
                let (state, tail) = rest.split_first_mut().expect("one state per worker");
                rest = tail;
                let lo = w * jobs / workers;
                let hi = (w + 1) * jobs / workers;
                handles.push(scope.spawn(move || {
                    let mut out: Vec<T> = Vec::with_capacity(hi - lo);
                    for t in lo..hi {
                        match run_job(job, state, t) {
                            Ok(v) => out.push(v),
                            // Same policy as run_chunked: stop this
                            // chunk, let siblings finish, re-raise
                            // after the join.
                            Err(panic) => return (out, Some(panic)),
                        }
                    }
                    (out, None)
                }));
            }
            let mut results = Vec::with_capacity(jobs);
            let mut first_panic: Option<JobPanic> = None;
            for handle in handles {
                let (out, panic) = match handle.join() {
                    Ok(v) => v,
                    Err(payload) => {
                        first_panic.get_or_insert(JobPanic { job: usize::MAX, payload });
                        continue;
                    }
                };
                results.extend(out);
                if let Some(p) = panic {
                    if first_panic.as_ref().is_none_or(|f| p.job < f.job) {
                        first_panic = Some(p);
                    }
                }
            }
            (results, first_panic)
        });
        if let Some(panic) = panic {
            std::panic::resume_unwind(panic.payload);
        }
        results
    }
}

/// A panic caught at a job boundary, tagged with the job index so the
/// lowest-indexed failure is the one re-raised deterministically.
struct JobPanic {
    job: usize,
    payload: Box<dyn std::any::Any + Send + 'static>,
}

/// Runs one job with the panic boundary: the payload is caught (so
/// sibling jobs and workers are not torn down mid-flight), counted on
/// `pool_job_panics_total`, and handed back for the post-join re-raise.
fn run_job<S, T, FJ>(job: &FJ, state: &mut S, t: usize) -> Result<T, JobPanic>
where
    FJ: Fn(&mut S, usize) -> T,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(state, t))).map_err(|payload| {
        crate::telemetry::counter("pool_job_panics_total").inc();
        JobPanic { job: t, payload }
    })
}

/// The deterministic parallel MC engine: fans `passes` stochastic
/// forward passes over `pool`, each on its own RNG stream derived from
/// `seed` (the [`pass_seeds`] schedule), and reduces the softmaxed
/// outputs in ascending pass order.
///
/// `init(w)` builds worker `w`'s private state (typically a clone of
/// the model); `forward(state, t, rng)` must return logits `[N, C]` for
/// pass `t` using only `state` and `rng` for stochasticity. Under that
/// contract the returned [`Predictive`] is bit-identical for any thread
/// count and to [`neuspin_bayes::mc_predict_seeded`] with the same
/// seed. The final worker states come back for statistics merging.
///
/// # Panics
///
/// Panics if `passes == 0`, on inconsistent logit shapes, or if a
/// worker panics.
pub fn mc_predict_par<S, FI, FF>(
    pool: &ThreadPool,
    passes: usize,
    seed: u64,
    init: FI,
    forward: FF,
) -> (Predictive, Vec<S>)
where
    S: Send,
    FI: Fn(usize) -> S + Sync,
    FF: Fn(&mut S, usize, &mut StdRng) -> Tensor + Sync,
{
    assert!(passes > 0, "need at least one MC pass");
    let seeds = pass_seeds(seed, passes);
    let seeds = &seeds;
    let forward = &forward;
    // Telemetry follows the op-counter discipline: each pass buffers
    // its trace events thread-locally (harvested with a mark/drain
    // pair) and the harvested buffers are re-appended in ascending
    // pass order after the join, so the emitted trace byte-compares
    // for any worker count. Workers inherit the caller's span depth.
    let telemetry_on = crate::telemetry::active();
    let base_depth = crate::telemetry::trace_depth();
    let (results, states) = pool.run_chunked(passes, init, move |state, t| {
        let mut rng = StdRng::seed_from_u64(seeds[t]);
        if !telemetry_on {
            return (softmax(&forward(state, t, &mut rng)), Vec::new());
        }
        crate::telemetry::set_trace_depth(base_depth);
        let mark = crate::telemetry::trace_mark();
        let probs = {
            let _pass = crate::span!("mc_pass", pass = t);
            softmax(&forward(state, t, &mut rng))
        };
        (probs, crate::telemetry::take_trace_since(mark))
    });
    let (probs, traces): (Vec<Tensor>, Vec<Vec<crate::telemetry::TraceEvent>>) =
        results.into_iter().unzip();
    let mut slots: Vec<Option<Tensor>> = probs.into_iter().map(Some).collect();
    let pred = mc_aggregate(passes, |t| slots[t].take().expect("each pass reduced once"));
    for events in traces {
        crate::telemetry::append_trace(events);
    }
    (pred, states)
}

/// [`mc_predict_par`] over persistent worker states: the same
/// determinism, reduction, and trace-harvest policy, but workers run on
/// the caller's pre-built `states` (e.g. model replicas cloned once at
/// commission time) instead of `init`-ing fresh ones each call, so a
/// steady-state call builds no worker state at all. `states.len()` caps
/// the worker count alongside the pool width; state mutations (op
/// counters, margins) stay visible to the caller for merging.
///
/// # Panics
///
/// Panics if `passes == 0`, `states` is empty, on inconsistent logit
/// shapes, or if a worker panics.
pub fn mc_predict_par_on<S, FF>(
    pool: &ThreadPool,
    passes: usize,
    seed: u64,
    states: &mut [S],
    forward: FF,
) -> Predictive
where
    S: Send,
    FF: Fn(&mut S, usize, &mut StdRng) -> Tensor + Sync,
{
    assert!(passes > 0, "need at least one MC pass");
    let seeds = pass_seeds(seed, passes);
    let seeds = &seeds;
    let forward = &forward;
    // Same trace discipline as mc_predict_par: buffer per pass, harvest
    // with a mark/drain pair, re-append in ascending pass order.
    let telemetry_on = crate::telemetry::active();
    let base_depth = crate::telemetry::trace_depth();
    let results = pool.run_chunked_on(passes, states, move |state, t| {
        let mut rng = StdRng::seed_from_u64(seeds[t]);
        if !telemetry_on {
            return (softmax(&forward(state, t, &mut rng)), Vec::new());
        }
        crate::telemetry::set_trace_depth(base_depth);
        let mark = crate::telemetry::trace_mark();
        let probs = {
            let _pass = crate::span!("mc_pass", pass = t);
            softmax(&forward(state, t, &mut rng))
        };
        (probs, crate::telemetry::take_trace_since(mark))
    });
    let (probs, traces): (Vec<Tensor>, Vec<Vec<crate::telemetry::TraceEvent>>) =
        results.into_iter().unzip();
    let mut slots: Vec<Option<Tensor>> = probs.into_iter().map(Some).collect();
    let pred = mc_aggregate(passes, |t| slots[t].take().expect("each pass reduced once"));
    for events in traces {
        crate::telemetry::append_trace(events);
    }
    pred
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_clamps_to_one_worker() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert_eq!(ThreadPool::new(3).threads(), 3);
    }

    #[test]
    fn run_chunked_preserves_job_order() {
        for threads in [1, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            let (results, states) =
                pool.run_chunked(10, |w| w, |state, t| (*state, t * t));
            assert_eq!(results.len(), 10, "{threads} threads");
            for (t, &(_, sq)) in results.iter().enumerate() {
                assert_eq!(sq, t * t, "{threads} threads");
            }
            assert_eq!(states.len(), threads.min(10));
        }
    }

    #[test]
    fn run_chunked_chunks_are_contiguous_and_balanced() {
        let pool = ThreadPool::new(3);
        let (results, _) = pool.run_chunked(8, |w| w, |w, t| (*w, t));
        // Worker of each job is non-decreasing and chunk sizes differ
        // by at most one.
        let mut counts = [0usize; 3];
        let mut last_worker = 0;
        for &(w, _) in &results {
            assert!(w >= last_worker, "contiguous chunks");
            last_worker = w;
            counts[w] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 8);
        assert!(counts.iter().all(|&c| c == 2 || c == 3), "{counts:?}");
    }

    #[test]
    fn run_chunked_zero_jobs() {
        let pool = ThreadPool::new(4);
        let (results, states) = pool.run_chunked(0, |w| w, |_, t| t);
        assert!(results.is_empty());
        assert!(states.is_empty());
    }

    #[test]
    fn mc_predict_par_matches_seeded_sequential_for_any_thread_count() {
        // A pure function of (pass index, rng) — the forward contract.
        let forward = |t: usize, rng: &mut StdRng| {
            Tensor::from_fn(&[2, 3], |i| {
                (t as f32 * 0.1) + neuspin_device::stats::standard_normal(rng) as f32 + i as f32
            })
        };
        let reference = neuspin_bayes::mc_predict_seeded(9, 77, forward);
        for threads in [1, 2, 4, 9, 16] {
            let pool = ThreadPool::new(threads);
            let (pred, _) =
                mc_predict_par(&pool, 9, 77, |_| (), |_, t, rng| forward(t, rng));
            assert_eq!(pred, reference, "{threads} threads");
        }
    }

    #[test]
    fn run_chunked_on_uses_caller_states_and_preserves_order() {
        for threads in [1usize, 2, 4] {
            let pool = ThreadPool::new(threads);
            let mut states = vec![0usize; threads];
            let results = pool.run_chunked_on(10, &mut states, |s, t| {
                *s += 1;
                t * t
            });
            assert_eq!(results, (0..10).map(|t| t * t).collect::<Vec<_>>());
            assert_eq!(
                states.iter().sum::<usize>(),
                10,
                "{threads} threads: every job must run on a caller-owned state"
            );
        }
    }

    #[test]
    fn mc_predict_par_on_matches_init_based_engine() {
        let forward = |t: usize, rng: &mut StdRng| {
            Tensor::from_fn(&[2, 3], |i| {
                (t as f32 * 0.1) + neuspin_device::stats::standard_normal(rng) as f32 + i as f32
            })
        };
        let reference = neuspin_bayes::mc_predict_seeded(9, 77, forward);
        for threads in [1usize, 3, 8] {
            let pool = ThreadPool::new(threads);
            let mut states = vec![(); threads];
            let pred = mc_predict_par_on(&pool, 9, 77, &mut states, |_, t, rng| forward(t, rng));
            assert_eq!(pred, reference, "{threads} threads");
        }
    }

    #[test]
    fn from_env_reads_neuspin_threads() {
        // Only assert the parse contract on the current env (the test
        // harness is multi-threaded; setting env vars here would race).
        let pool = ThreadPool::from_env();
        assert!(pool.threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one MC pass")]
    fn mc_predict_par_rejects_zero_passes() {
        let pool = ThreadPool::new(2);
        let _ = mc_predict_par(&pool, 0, 1, |_| (), |_, _, _| Tensor::zeros(&[1, 2]));
    }

    #[test]
    fn job_panic_is_propagated_with_its_original_payload() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run_chunked(
                    8,
                    |w| w,
                    |_, t| {
                        if t == 5 {
                            panic!("job 5 exploded");
                        }
                        t
                    },
                )
            }));
            let payload = result.expect_err("the job panic must propagate on join");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            assert!(
                msg.contains("job 5 exploded"),
                "{threads} threads: original payload must survive, got {msg:?}"
            );
        }
    }

    #[test]
    fn sibling_jobs_complete_when_one_panics() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // 4 workers × 2 jobs each; job 0 panics immediately. Every job
        // outside the failing worker's chunk (jobs 2..8) must still run
        // — the pool no longer loses work when one thread dies.
        let completed = AtomicUsize::new(0);
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_chunked(
                8,
                |w| w,
                |_, t| {
                    if t == 0 {
                        panic!("first job dies");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                    t
                },
            )
        }));
        assert!(result.is_err(), "the panic must still propagate");
        assert!(
            completed.load(Ordering::SeqCst) >= 6,
            "sibling chunks must run to completion: {} of 7 non-panicking jobs ran",
            completed.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn lowest_indexed_panic_wins_when_several_jobs_fail() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_chunked(
                8,
                |w| w,
                |_, t| {
                    if t % 2 == 1 {
                        panic!("job {t} failed");
                    }
                    t
                },
            )
        }));
        let payload = result.expect_err("panics must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "job 1 failed", "deterministic: lowest job index is re-raised");
    }

    #[test]
    fn job_panics_are_counted_via_telemetry() {
        let _guard = crate::telemetry::test_lock();
        crate::telemetry::reset();
        crate::telemetry::set_enabled(true, false);
        let counter = crate::telemetry::counter("pool_job_panics_total");
        let before = counter.get();
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_chunked(4, |w| w, |_, t| if t == 3 { panic!("boom") } else { t })
        }));
        assert!(result.is_err());
        assert_eq!(counter.get() - before, 1, "one panicking job, one count");
        crate::telemetry::set_enabled(false, false);
        crate::telemetry::reset();
    }
}
