//! Reliability sweep drivers: variation, defect, and drift scenarios.
//!
//! These helpers script the §III-A4 "self-healing" experiments: train
//! once, compile many hardware instances across a severity sweep, and
//! measure the accuracy trajectory of each method.

use crate::model::{HardwareConfig, HardwareModel};
use neuspin_bayes::{ArchConfig, Method};
use neuspin_cim::CrossbarConfig;
use neuspin_device::{DefectRates, MtjParams, VariationModel, VariedParams};
use neuspin_nn::{Dataset, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One point of a reliability sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The severity knob (variation sigma, defect rate, or drift sigma).
    pub severity: f64,
    /// Hardware accuracy at this severity.
    pub accuracy: f64,
    /// Mean predictive entropy (uncertainty should rise with severity).
    pub mean_entropy: f64,
}

/// The severity knob a sweep turns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SweepKind {
    /// Device-to-device variation sigma at programming time.
    Variation,
    /// Per-cell manufacturing defect rate.
    Defects,
    /// Post-calibration *common-mode* conductance drift: severity `s`
    /// scales every programmed weight by `1 − s` (plus a fixed 5 %
    /// per-cell lognormal spread). The temperature/retention scenario
    /// the inverted norm is designed for.
    Drift,
}

/// Parameters of a reliability sweep: the severity knob, the points to
/// visit, the averaging budget, and the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// The severity knob this sweep turns.
    pub kind: SweepKind,
    /// Severity values to visit, in order.
    pub severities: Vec<f64>,
    /// Hardware instances averaged per sweep point (each with fresh
    /// device draws) — reliability curves from a single die are noisy.
    /// Defaults to 3; campaigns that need tighter error bars raise it.
    pub instances_per_point: usize,
    /// Base RNG seed; every (point, instance) pair derives its own
    /// stream from it.
    pub seed: u64,
}

impl SweepConfig {
    /// A sweep over the given severities with the default averaging
    /// budget of 3 instances per point.
    pub fn new(kind: SweepKind, severities: Vec<f64>, seed: u64) -> Self {
        Self { kind, severities, instances_per_point: 3, seed }
    }
}

/// Runs a reliability sweep for one trained model.
///
/// For every severity in `sweep_config`, the trained model is compiled
/// onto [`SweepConfig::instances_per_point`] fresh hardware instances
/// (new device draws), each calibrated on `calib` and evaluated on
/// `test`; the point is the average. For [`SweepKind::Drift`] the
/// hardware is calibrated *first* and the drift injected afterwards —
/// the scenario where stored norm statistics go stale.
///
/// The defect sweep injects stuck-at and open defects only: barrier
/// shorts are catastrophic, screened at production test, and mapped out
/// by the row/column redundancy every memory product ships — modelling
/// them as unrepaired in-field defects would measure the repair flow,
/// not the network (see `neuspin_cim::bist` / `neuspin_cim::repair` and
/// the fault-management campaign for exactly that study).
///
/// # Panics
///
/// Panics if `sweep_config.instances_per_point == 0`.
pub fn sweep(
    trained: &mut Sequential,
    method: Method,
    arch: &ArchConfig,
    base: &HardwareConfig,
    sweep_config: &SweepConfig,
    calib: &Dataset,
    test: &Dataset,
) -> Vec<SweepPoint> {
    let instances_per_point = sweep_config.instances_per_point;
    assert!(instances_per_point > 0, "instances_per_point must be positive");
    let kind = sweep_config.kind;
    let seed = sweep_config.seed;
    let mut points = Vec::with_capacity(sweep_config.severities.len());
    for (i, &severity) in sweep_config.severities.iter().enumerate() {
        let mut config = *base;
        match kind {
            SweepKind::Variation => {
                config.crossbar.corner =
                    VariedParams::new(MtjParams::default(), VariationModel::uniform(severity));
            }
            SweepKind::Defects => {
                let each = severity / 3.0;
                config.crossbar.defect_rates = DefectRates {
                    stuck_parallel: each,
                    stuck_antiparallel: each,
                    open: each,
                    short: 0.0,
                };
            }
            SweepKind::Drift => {}
        }
        let mut acc_sum = 0.0;
        let mut entropy_sum = 0.0;
        for instance in 0..instances_per_point {
            let mut rng =
                StdRng::seed_from_u64(seed ^ ((i as u64) << 32) ^ ((instance as u64) << 16));
            let mut hw = HardwareModel::compile(trained, method, arch, &config, &mut rng);
            hw.calibrate(&calib.inputs, 2, &mut rng);
            if kind == SweepKind::Drift && severity > 0.0 {
                hw.inject_drift(1.0 - severity, 0.05, &mut rng);
            }
            let pred = hw.predict(&test.inputs, &mut rng);
            acc_sum += pred.accuracy(&test.labels);
            entropy_sum +=
                pred.entropy.iter().sum::<f64>() / pred.entropy.len().max(1) as f64;
        }
        points.push(SweepPoint {
            severity,
            accuracy: acc_sum / instances_per_point as f64,
            mean_entropy: entropy_sum / instances_per_point as f64,
        });
    }
    points
}

/// A convenience base configuration for reliability studies: typical
/// corner, 1 % read noise, no ADC quantization, moderate MC budget.
pub fn reliability_base() -> HardwareConfig {
    HardwareConfig {
        crossbar: CrossbarConfig::default(),
        passes: 12,
        ..HardwareConfig::default()
    }
}
