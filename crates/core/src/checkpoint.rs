//! Crash-safe die checkpointing.
//!
//! A checkpoint is the complete **mutable** state of a
//! [`Supervisor`](crate::Supervisor)-managed die — everything that can
//! diverge from a freshly fabricated twin over the die's lifetime:
//!
//! * per-crossbar device state (cell levels/signs/defects, effective
//!   weights with drift folded in, spare banks, remap indirection,
//!   margins, op tallies, aging clock + event-RNG stream positions),
//! * stochastic-module RNG positions (SpinDrop / Spatial / Scale /
//!   arbiter bit-sources),
//! * calibration state (norm statistics mid-stream, the calibration
//!   tensor, the abstention threshold),
//! * supervisor progress (virtual clock, step index, latched health
//!   tier and hysteresis dwell, recovery-event trail, op-counter and
//!   energy windows).
//!
//! **Restore-onto-twin contract.** A checkpoint does *not* carry the
//! immutable structure (trained weights, geometry, device corner,
//! config, seeds): restore applies the captured state onto a supervisor
//! built by the same deterministic constructor from the same inputs.
//! After [`Supervisor::restore`](crate::Supervisor::restore), any
//! sequence of `step` / `serve_predict` / scrub calls is **bit-identical**
//! to the uninterrupted original — outputs, RNG stream positions, and
//! energy tallies alike. The round-trip battery below proves this over
//! geometry × defects × spares × aging × latched-tier corners.
//!
//! **Wire format.** The hand-rolled JSON layer ([`crate::json`])
//! carries the payload under a versioned header:
//!
//! ```json
//! {"format": "neuspin-checkpoint", "version": 1,
//!  "checksum": "<fnv1a-64 hex of the payload serialization>",
//!  "payload": {...}}
//! ```
//!
//! `f64`/`f32` fields ride the writer's shortest-round-trip `Display`
//! (bit-exact both ways); `u64` fields are hex *strings* because a JSON
//! number is an f64 and counters can exceed 2⁵³. Decoding rejects
//! unknown formats, version skew, and checksum mismatches with a typed
//! [`CheckpointError`] — a truncated or bit-rotted checkpoint is
//! refused, never half-applied.

use crate::blocks::BlockState;
use crate::health::MonitorState;
use crate::json::{parse, Json};
use crate::model::ModelState;
use crate::runtime::{RecoveryAction, RecoveryEvent};
use crate::HealthPolicy;
use neuspin_cim::{
    AgingHookState, ArbiterState, CrossbarState, MlcCrossbarState, OpCounter, SpareColumnState,
    XnorCellState,
};
use neuspin_device::{AgingSnapshot, DefectKind, SpinRngState};
use neuspin_energy::Joules;
use neuspin_nn::Tensor;
use std::fmt;

/// The header's format discriminator.
pub const FORMAT: &str = "neuspin-checkpoint";
/// The current checkpoint format version.
pub const VERSION: u64 = 1;

/// FNV-1a 64-bit hash — the checkpoint content checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Why a checkpoint was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Not parseable as a checkpoint (bad JSON, missing or ill-typed
    /// fields).
    Malformed(String),
    /// The `format` discriminator names something else.
    FormatMismatch(String),
    /// The format version is not [`VERSION`].
    VersionMismatch {
        /// The version the header claimed.
        found: u64,
    },
    /// The payload does not hash to the header checksum (truncation or
    /// bit rot).
    ChecksumMismatch {
        /// The checksum the header claimed.
        expected: String,
        /// The checksum of the payload as received.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Malformed(why) => write!(f, "malformed checkpoint: {why}"),
            CheckpointError::FormatMismatch(found) => {
                write!(f, "not a {FORMAT} document (format: {found:?})")
            }
            CheckpointError::VersionMismatch { found } => {
                write!(f, "checkpoint version {found} unsupported (expected {VERSION})")
            }
            CheckpointError::ChecksumMismatch { expected, found } => {
                write!(f, "checkpoint checksum mismatch: header {expected}, payload {found}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

type R<T> = Result<T, CheckpointError>;

fn bad(why: impl Into<String>) -> CheckpointError {
    CheckpointError::Malformed(why.into())
}

/// The decoded supervisor payload — see the module docs for what is
/// (and deliberately is not) captured.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SupervisorState {
    pub(crate) model: ModelState,
    pub(crate) monitor: MonitorState,
    pub(crate) calib: Tensor,
    pub(crate) now_hours: f64,
    pub(crate) last_scrub_hours: f64,
    pub(crate) step: usize,
    pub(crate) engaged_tier: HealthPolicy,
    pub(crate) commissioned: bool,
    pub(crate) events: Vec<RecoveryEvent>,
}

/// A verified, decoded die checkpoint, ready for
/// [`Supervisor::restore`](crate::Supervisor::restore).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    pub(crate) state: SupervisorState,
}

impl Checkpoint {
    /// Parses and verifies a serialized checkpoint: format, version,
    /// then the payload checksum, then the payload itself.
    pub fn decode(text: &str) -> R<Checkpoint> {
        let root =
            parse(text).map_err(|e| bad(format!("JSON parse error at byte {}", e.offset)))?;
        let format = str_field(&root, "format")?;
        if format != FORMAT {
            return Err(CheckpointError::FormatMismatch(format.to_string()));
        }
        let version = f64_field(&root, "version")? as u64;
        if version != VERSION {
            return Err(CheckpointError::VersionMismatch { found: version });
        }
        let expected = str_field(&root, "checksum")?.to_string();
        let payload = field(&root, "payload")?;
        let found = format!("{:016x}", fnv1a(payload.to_string().as_bytes()));
        if expected != found {
            return Err(CheckpointError::ChecksumMismatch { expected, found });
        }
        Ok(Checkpoint { state: decode_supervisor(payload)? })
    }

    /// Serializes a supervisor state under the versioned, checksummed
    /// header. Byte-deterministic: the same state always produces the
    /// same string.
    pub(crate) fn encode_state(state: &SupervisorState) -> String {
        let payload = encode_supervisor(state);
        let checksum = format!("{:016x}", fnv1a(payload.to_string().as_bytes()));
        Json::obj([
            ("format", Json::Str(FORMAT.to_string())),
            ("version", Json::Num(VERSION as f64)),
            ("checksum", Json::Str(checksum)),
            ("payload", payload),
        ])
        .to_string()
    }
}

// ---------------------------------------------------------------------
// Scalar helpers. u64 rides hex strings (JSON numbers are f64 — exact
// only to 2⁵³); f64/f32 ride the writer's shortest-round-trip Display.

fn ju(x: u64) -> Json {
    Json::Str(format!("{x:x}"))
}

fn jpair(p: (f64, f64)) -> Json {
    Json::Arr(vec![Json::Num(p.0), Json::Num(p.1)])
}

fn jf64s(xs: &[f64]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect())
}

fn jf32s(xs: &[f32]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Num(f64::from(x))).collect())
}

fn jbools(xs: &[bool]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::Bool(x)).collect())
}

fn field<'a>(v: &'a Json, key: &str) -> R<&'a Json> {
    v.get(key).ok_or_else(|| bad(format!("missing field '{key}'")))
}

fn f64_field(v: &Json, key: &str) -> R<f64> {
    field(v, key)?.as_f64().ok_or_else(|| bad(format!("field '{key}' is not a number")))
}

fn usize_field(v: &Json, key: &str) -> R<usize> {
    Ok(f64_field(v, key)? as usize)
}

fn u64_field(v: &Json, key: &str) -> R<u64> {
    let s = str_field(v, key)?;
    u64::from_str_radix(s, 16).map_err(|_| bad(format!("field '{key}' is not a hex u64")))
}

fn bool_field(v: &Json, key: &str) -> R<bool> {
    field(v, key)?.as_bool().ok_or_else(|| bad(format!("field '{key}' is not a bool")))
}

fn str_field<'a>(v: &'a Json, key: &str) -> R<&'a str> {
    field(v, key)?.as_str().ok_or_else(|| bad(format!("field '{key}' is not a string")))
}

fn arr_field<'a>(v: &'a Json, key: &str) -> R<&'a [Json]> {
    field(v, key)?.as_arr().ok_or_else(|| bad(format!("field '{key}' is not an array")))
}

fn f64s_field(v: &Json, key: &str) -> R<Vec<f64>> {
    arr_field(v, key)?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| bad(format!("'{key}' holds a non-number"))))
        .collect()
}

fn f32s_field(v: &Json, key: &str) -> R<Vec<f32>> {
    Ok(f64s_field(v, key)?.into_iter().map(|x| x as f32).collect())
}

fn bools_field(v: &Json, key: &str) -> R<Vec<bool>> {
    arr_field(v, key)?
        .iter()
        .map(|x| x.as_bool().ok_or_else(|| bad(format!("'{key}' holds a non-bool"))))
        .collect()
}

fn pair(v: &Json, ctx: &str) -> R<(f64, f64)> {
    let items = v.as_arr().ok_or_else(|| bad(format!("'{ctx}' is not a pair")))?;
    if items.len() != 2 {
        return Err(bad(format!("'{ctx}' is not a 2-element pair")));
    }
    let a = items[0].as_f64().ok_or_else(|| bad(format!("'{ctx}'[0] is not a number")))?;
    let b = items[1].as_f64().ok_or_else(|| bad(format!("'{ctx}'[1] is not a number")))?;
    Ok((a, b))
}

fn pair_field(v: &Json, key: &str) -> R<(f64, f64)> {
    pair(field(v, key)?, key)
}

// ---------------------------------------------------------------------
// Per-type codecs, leaves first.

fn encode_counter(c: &OpCounter) -> Json {
    Json::obj([
        ("cell_reads", ju(c.cell_reads)),
        ("cell_writes", ju(c.cell_writes)),
        ("sa_evals", ju(c.sa_evals)),
        ("adc_converts", ju(c.adc_converts)),
        ("adc_saturations", ju(c.adc_saturations)),
        ("rng_bits", ju(c.rng_bits)),
        ("sram_accesses", ju(c.sram_accesses)),
        ("digital_ops", ju(c.digital_ops)),
    ])
}

fn decode_counter(v: &Json) -> R<OpCounter> {
    Ok(OpCounter {
        cell_reads: u64_field(v, "cell_reads")?,
        cell_writes: u64_field(v, "cell_writes")?,
        sa_evals: u64_field(v, "sa_evals")?,
        adc_converts: u64_field(v, "adc_converts")?,
        adc_saturations: u64_field(v, "adc_saturations")?,
        rng_bits: u64_field(v, "rng_bits")?,
        sram_accesses: u64_field(v, "sram_accesses")?,
        digital_ops: u64_field(v, "digital_ops")?,
    })
}

fn encode_rng(s: &SpinRngState) -> Json {
    Json::obj([
        ("bias_current", Json::Num(s.bias_current)),
        ("target_p", Json::Num(s.target_p)),
        ("bits_generated", ju(s.bits_generated)),
    ])
}

fn decode_rng(v: &Json) -> R<SpinRngState> {
    Ok(SpinRngState {
        bias_current: f64_field(v, "bias_current")?,
        target_p: f64_field(v, "target_p")?,
        bits_generated: u64_field(v, "bits_generated")?,
    })
}

fn encode_rngs(states: &[SpinRngState]) -> Json {
    Json::Arr(states.iter().map(encode_rng).collect())
}

fn decode_rngs(v: &Json, key: &str) -> R<Vec<SpinRngState>> {
    arr_field(v, key)?.iter().map(decode_rng).collect()
}

fn encode_defect(kind: Option<DefectKind>) -> Json {
    match kind {
        None => Json::Null,
        Some(k) => Json::Num(k.index() as f64),
    }
}

fn decode_defect(v: &Json, ctx: &str) -> R<Option<DefectKind>> {
    match v {
        Json::Null => Ok(None),
        _ => {
            let i = v.as_f64().ok_or_else(|| bad(format!("'{ctx}' is not a defect index")))?
                as usize;
            DefectKind::ALL
                .get(i)
                .copied()
                .map(Some)
                .ok_or_else(|| bad(format!("'{ctx}' defect index {i} out of range")))
        }
    }
}

fn encode_cell(c: &XnorCellState) -> Json {
    Json::obj([
        ("plus_levels", jpair(c.plus_levels)),
        ("minus_levels", jpair(c.minus_levels)),
        ("sign", Json::Bool(c.sign)),
        ("plus_defect", encode_defect(c.plus_defect)),
        ("minus_defect", encode_defect(c.minus_defect)),
        ("reference", jpair(c.reference)),
    ])
}

fn decode_cell(v: &Json) -> R<XnorCellState> {
    Ok(XnorCellState {
        plus_levels: pair_field(v, "plus_levels")?,
        minus_levels: pair_field(v, "minus_levels")?,
        sign: bool_field(v, "sign")?,
        plus_defect: decode_defect(field(v, "plus_defect")?, "plus_defect")?,
        minus_defect: decode_defect(field(v, "minus_defect")?, "minus_defect")?,
        reference: pair_field(v, "reference")?,
    })
}

fn encode_cells(cells: &[XnorCellState]) -> Json {
    Json::Arr(cells.iter().map(encode_cell).collect())
}

fn decode_cells(v: &Json, key: &str) -> R<Vec<XnorCellState>> {
    arr_field(v, key)?.iter().map(decode_cell).collect()
}

fn encode_aging_snapshot(s: &AgingSnapshot) -> Json {
    Json::obj([
        ("now_hours", Json::Num(s.now_hours)),
        ("epoch", ju(s.epoch)),
        ("cum_writes", Json::Num(s.cum_writes)),
        ("lifetimes", jf64s(&s.lifetimes)),
        ("drift", jf64s(&s.drift)),
        ("worn", jbools(&s.worn)),
    ])
}

fn decode_aging_snapshot(v: &Json) -> R<AgingSnapshot> {
    Ok(AgingSnapshot {
        now_hours: f64_field(v, "now_hours")?,
        epoch: u64_field(v, "epoch")?,
        cum_writes: f64_field(v, "cum_writes")?,
        lifetimes: f64s_field(v, "lifetimes")?,
        drift: f64s_field(v, "drift")?,
        worn: bools_field(v, "worn")?,
    })
}

fn encode_aging_hook(h: &AgingHookState) -> Json {
    Json::obj([
        ("aging", encode_aging_snapshot(&h.aging)),
        ("golden", jf32s(&h.golden)),
        ("seen_reads", ju(h.seen_reads)),
        ("seen_writes", ju(h.seen_writes)),
    ])
}

fn decode_aging_hook(v: &Json) -> R<AgingHookState> {
    Ok(AgingHookState {
        aging: decode_aging_snapshot(field(v, "aging")?)?,
        golden: f32s_field(v, "golden")?,
        seen_reads: u64_field(v, "seen_reads")?,
        seen_writes: u64_field(v, "seen_writes")?,
    })
}

fn encode_spare(s: &SpareColumnState) -> Json {
    Json::obj([("cells", encode_cells(&s.cells)), ("used", Json::Bool(s.used))])
}

fn decode_spare(v: &Json) -> R<SpareColumnState> {
    Ok(SpareColumnState { cells: decode_cells(v, "cells")?, used: bool_field(v, "used")? })
}

fn encode_remap(map: &Option<Vec<usize>>) -> Json {
    match map {
        None => Json::Null,
        Some(m) => Json::Arr(m.iter().map(|&i| Json::Num(i as f64)).collect()),
    }
}

fn decode_remap(v: &Json, ctx: &str) -> R<Option<Vec<usize>>> {
    match v {
        Json::Null => Ok(None),
        Json::Arr(items) => items
            .iter()
            .map(|x| {
                x.as_f64()
                    .map(|f| f as usize)
                    .ok_or_else(|| bad(format!("'{ctx}' holds a non-number")))
            })
            .collect::<R<Vec<usize>>>()
            .map(Some),
        _ => Err(bad(format!("'{ctx}' is neither null nor an array"))),
    }
}

fn encode_crossbar(s: &CrossbarState) -> Json {
    Json::obj([
        ("cells", encode_cells(&s.cells)),
        ("eff", jf64s(&s.eff)),
        ("row_enabled", jbools(&s.row_enabled)),
        ("counter", encode_counter(&s.counter)),
        (
            "defects",
            Json::Arr(
                s.defects
                    .iter()
                    .map(|&(r, c, k)| {
                        Json::Arr(vec![
                            Json::Num(r as f64),
                            Json::Num(c as f64),
                            Json::Num(k.index() as f64),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("spares", Json::Arr(s.spares.iter().map(encode_spare).collect())),
        ("row_src", encode_remap(&s.row_src)),
        ("col_src", encode_remap(&s.col_src)),
        ("margin_sum", Json::Num(s.margin_sum)),
        ("margin_count", ju(s.margin_count)),
        ("packed_calls", ju(s.packed_calls)),
        ("aging", s.aging.as_ref().map_or(Json::Null, encode_aging_hook)),
    ])
}

fn decode_crossbar(v: &Json) -> R<CrossbarState> {
    let mut defects = Vec::new();
    for (i, item) in arr_field(v, "defects")?.iter().enumerate() {
        let triple = item.as_arr().ok_or_else(|| bad(format!("defect {i} is not a triple")))?;
        if triple.len() != 3 {
            return Err(bad(format!("defect {i} is not a 3-element triple")));
        }
        let r = triple[0].as_f64().ok_or_else(|| bad("defect row"))? as usize;
        let c = triple[1].as_f64().ok_or_else(|| bad("defect col"))? as usize;
        let k = decode_defect(&triple[2], "defect kind")?
            .ok_or_else(|| bad(format!("defect {i} has a null kind")))?;
        defects.push((r, c, k));
    }
    let aging = match field(v, "aging")? {
        Json::Null => None,
        hook => Some(decode_aging_hook(hook)?),
    };
    Ok(CrossbarState {
        cells: decode_cells(v, "cells")?,
        eff: f64s_field(v, "eff")?,
        row_enabled: bools_field(v, "row_enabled")?,
        counter: decode_counter(field(v, "counter")?)?,
        defects,
        spares: arr_field(v, "spares")?.iter().map(decode_spare).collect::<R<Vec<_>>>()?,
        row_src: decode_remap(field(v, "row_src")?, "row_src")?,
        col_src: decode_remap(field(v, "col_src")?, "col_src")?,
        margin_sum: f64_field(v, "margin_sum")?,
        margin_count: u64_field(v, "margin_count")?,
        packed_calls: u64_field(v, "packed_calls")?,
        aging,
    })
}

fn encode_mlc(s: &MlcCrossbarState) -> Json {
    Json::obj([
        ("eff", jf64s(&s.eff)),
        ("row_enabled", jbools(&s.row_enabled)),
        ("counter", encode_counter(&s.counter)),
        ("margin_sum", Json::Num(s.margin_sum)),
        ("margin_count", ju(s.margin_count)),
    ])
}

fn decode_mlc(v: &Json) -> R<MlcCrossbarState> {
    Ok(MlcCrossbarState {
        eff: f64s_field(v, "eff")?,
        row_enabled: bools_field(v, "row_enabled")?,
        counter: decode_counter(field(v, "counter")?)?,
        margin_sum: f64_field(v, "margin_sum")?,
        margin_count: u64_field(v, "margin_count")?,
    })
}

fn encode_arbiter(s: &ArbiterState) -> Json {
    Json::obj([("bit_sources", encode_rngs(&s.bit_sources)), ("bits_used", ju(s.bits_used))])
}

fn decode_arbiter(v: &Json) -> R<ArbiterState> {
    Ok(ArbiterState {
        bit_sources: decode_rngs(v, "bit_sources")?,
        bits_used: u64_field(v, "bits_used")?,
    })
}

fn encode_block(state: &BlockState) -> Json {
    let tag = |kind: &str| ("kind", Json::Str(kind.to_string()));
    match state {
        BlockState::Conv { xbar, local } => {
            Json::obj([tag("conv"), ("xbar", encode_crossbar(xbar)), ("local", encode_counter(local))])
        }
        BlockState::Fc { xbar, local } => {
            Json::obj([tag("fc"), ("xbar", encode_crossbar(xbar)), ("local", encode_counter(local))])
        }
        BlockState::FcSpinBayes { xbars, arbiter, local } => Json::obj([
            tag("fc_spinbayes"),
            ("xbars", Json::Arr(xbars.iter().map(encode_mlc).collect())),
            ("arbiter", encode_arbiter(arbiter)),
            ("local", encode_counter(local)),
        ]),
        BlockState::DigitalFc { local } => {
            Json::obj([tag("digital_fc"), ("local", encode_counter(local))])
        }
        BlockState::Norm { mean, var, stats, local } => Json::obj([
            tag("norm"),
            ("mean", jf32s(mean)),
            ("var", jf32s(var)),
            ("stats_count", ju(stats.count)),
            ("stats_mean", jf64s(&stats.mean)),
            ("stats_m2", jf64s(&stats.m2)),
            ("local", encode_counter(local)),
        ]),
        BlockState::InvNorm { modules, local } => Json::obj([
            tag("inv_norm"),
            (
                "modules",
                modules.as_ref().map_or(Json::Null, |(g, b)| {
                    Json::Arr(vec![encode_rng(g), encode_rng(b)])
                }),
            ),
            ("local", encode_counter(local)),
        ]),
        BlockState::DropPerNeuron { modules } => {
            Json::obj([tag("drop_per_neuron"), ("modules", encode_rngs(modules))])
        }
        BlockState::DropPerChannel { modules } => {
            Json::obj([tag("drop_per_channel"), ("modules", encode_rngs(modules))])
        }
        BlockState::DropScale { module, local } => Json::obj([
            tag("drop_scale"),
            ("module", encode_rng(module)),
            ("local", encode_counter(local)),
        ]),
        BlockState::DropViScale { local } => {
            Json::obj([tag("drop_vi_scale"), ("local", encode_counter(local))])
        }
        BlockState::Stateless => Json::obj([tag("stateless")]),
    }
}

fn decode_block(v: &Json) -> R<BlockState> {
    let kind = str_field(v, "kind")?;
    Ok(match kind {
        "conv" => BlockState::Conv {
            xbar: decode_crossbar(field(v, "xbar")?)?,
            local: decode_counter(field(v, "local")?)?,
        },
        "fc" => BlockState::Fc {
            xbar: decode_crossbar(field(v, "xbar")?)?,
            local: decode_counter(field(v, "local")?)?,
        },
        "fc_spinbayes" => BlockState::FcSpinBayes {
            xbars: arr_field(v, "xbars")?.iter().map(decode_mlc).collect::<R<Vec<_>>>()?,
            arbiter: decode_arbiter(field(v, "arbiter")?)?,
            local: decode_counter(field(v, "local")?)?,
        },
        "digital_fc" => BlockState::DigitalFc { local: decode_counter(field(v, "local")?)? },
        "norm" => BlockState::Norm {
            mean: f32s_field(v, "mean")?,
            var: f32s_field(v, "var")?,
            stats: crate::blocks::FeatureStats {
                count: u64_field(v, "stats_count")?,
                mean: f64s_field(v, "stats_mean")?,
                m2: f64s_field(v, "stats_m2")?,
            },
            local: decode_counter(field(v, "local")?)?,
        },
        "inv_norm" => BlockState::InvNorm {
            modules: match field(v, "modules")? {
                Json::Null => None,
                arr => {
                    let items =
                        arr.as_arr().ok_or_else(|| bad("inv_norm modules is not an array"))?;
                    if items.len() != 2 {
                        return Err(bad("inv_norm modules must hold exactly 2 states"));
                    }
                    Some((decode_rng(&items[0])?, decode_rng(&items[1])?))
                }
            },
            local: decode_counter(field(v, "local")?)?,
        },
        "drop_per_neuron" => BlockState::DropPerNeuron { modules: decode_rngs(v, "modules")? },
        "drop_per_channel" => BlockState::DropPerChannel { modules: decode_rngs(v, "modules")? },
        "drop_scale" => BlockState::DropScale {
            module: decode_rng(field(v, "module")?)?,
            local: decode_counter(field(v, "local")?)?,
        },
        "drop_vi_scale" => BlockState::DropViScale { local: decode_counter(field(v, "local")?)? },
        "stateless" => BlockState::Stateless,
        other => return Err(bad(format!("unknown block kind '{other}'"))),
    })
}

fn encode_model(state: &ModelState) -> Json {
    Json::obj([
        ("blocks", Json::Arr(state.blocks.iter().map(encode_block).collect())),
        ("baseline", encode_counter(&state.baseline)),
        ("extra", encode_counter(&state.extra)),
    ])
}

fn decode_model(v: &Json) -> R<ModelState> {
    Ok(ModelState {
        blocks: arr_field(v, "blocks")?.iter().map(decode_block).collect::<R<Vec<_>>>()?,
        baseline: decode_counter(field(v, "baseline")?)?,
        extra: decode_counter(field(v, "extra")?)?,
    })
}

fn encode_policy(p: HealthPolicy) -> Json {
    Json::Num(f64::from(p.tier_index()))
}

fn decode_policy(v: &Json, ctx: &str) -> R<HealthPolicy> {
    let tier = v.as_f64().ok_or_else(|| bad(format!("'{ctx}' is not a tier number")))? as u32;
    Ok(HealthPolicy::from_tier_index(tier))
}

fn encode_monitor(state: &MonitorState) -> Json {
    Json::obj([
        ("abstain_entropy", Json::Num(state.abstain_entropy)),
        ("window", Json::Arr(state.window.iter().map(|&p| jpair(p)).collect())),
        ("baseline", state.baseline.map_or(Json::Null, jpair)),
        ("latched", encode_policy(state.latched)),
        ("pending", encode_policy(state.pending)),
        ("pending_count", Json::Num(state.pending_count as f64)),
    ])
}

fn decode_monitor(v: &Json) -> R<MonitorState> {
    let window = arr_field(v, "window")?
        .iter()
        .map(|p| pair(p, "window entry"))
        .collect::<R<Vec<_>>>()?;
    let baseline = match field(v, "baseline")? {
        Json::Null => None,
        p => Some(pair(p, "baseline")?),
    };
    Ok(MonitorState {
        abstain_entropy: f64_field(v, "abstain_entropy")?,
        window,
        baseline,
        latched: decode_policy(field(v, "latched")?, "latched")?,
        pending: decode_policy(field(v, "pending")?, "pending")?,
        pending_count: usize_field(v, "pending_count")?,
    })
}

fn encode_action(a: RecoveryAction) -> Json {
    Json::Str(a.to_string())
}

fn decode_action(v: &Json, ctx: &str) -> R<RecoveryAction> {
    match v.as_str().ok_or_else(|| bad(format!("'{ctx}' is not an action string")))? {
        "scrub" => Ok(RecoveryAction::Scrub),
        "recalibrate" => Ok(RecoveryAction::Recalibrate),
        "remap_tier" => Ok(RecoveryAction::RemapTier),
        "abstain" => Ok(RecoveryAction::Abstain),
        other => Err(bad(format!("unknown recovery action '{other}'"))),
    }
}

fn encode_event(e: &RecoveryEvent) -> Json {
    Json::obj([
        ("at_hours", Json::Num(e.at_hours)),
        ("step", Json::Num(e.step as f64)),
        ("action", encode_action(e.action)),
        ("policy", encode_policy(e.policy)),
        ("cells_refreshed", Json::Num(e.cells_refreshed as f64)),
        ("flagged", Json::Num(e.flagged as f64)),
        ("repaired", Json::Num(e.repaired as f64)),
        ("energy_j", Json::Num(e.energy.0)),
    ])
}

fn decode_event(v: &Json) -> R<RecoveryEvent> {
    Ok(RecoveryEvent {
        at_hours: f64_field(v, "at_hours")?,
        step: usize_field(v, "step")?,
        action: decode_action(field(v, "action")?, "action")?,
        policy: decode_policy(field(v, "policy")?, "policy")?,
        cells_refreshed: usize_field(v, "cells_refreshed")?,
        flagged: usize_field(v, "flagged")?,
        repaired: usize_field(v, "repaired")?,
        energy: Joules(f64_field(v, "energy_j")?),
    })
}

fn encode_supervisor(state: &SupervisorState) -> Json {
    Json::obj([
        ("model", encode_model(&state.model)),
        ("monitor", encode_monitor(&state.monitor)),
        (
            "calib_shape",
            Json::Arr(state.calib.shape().iter().map(|&d| Json::Num(d as f64)).collect()),
        ),
        ("calib_data", jf32s(state.calib.as_slice())),
        ("now_hours", Json::Num(state.now_hours)),
        ("last_scrub_hours", Json::Num(state.last_scrub_hours)),
        ("step", Json::Num(state.step as f64)),
        ("engaged_tier", encode_policy(state.engaged_tier)),
        ("commissioned", Json::Bool(state.commissioned)),
        ("events", Json::Arr(state.events.iter().map(encode_event).collect())),
    ])
}

fn decode_supervisor(v: &Json) -> R<SupervisorState> {
    let shape = arr_field(v, "calib_shape")?
        .iter()
        .map(|d| {
            d.as_f64().map(|f| f as usize).ok_or_else(|| bad("calib_shape holds a non-number"))
        })
        .collect::<R<Vec<usize>>>()?;
    let data = f32s_field(v, "calib_data")?;
    if shape.iter().product::<usize>() != data.len() {
        return Err(bad(format!(
            "calib tensor shape {:?} does not match {} data elements",
            shape,
            data.len()
        )));
    }
    Ok(SupervisorState {
        model: decode_model(field(v, "model")?)?,
        monitor: decode_monitor(field(v, "monitor")?)?,
        calib: Tensor::from_vec(data, &shape),
        now_hours: f64_field(v, "now_hours")?,
        last_scrub_hours: f64_field(v, "last_scrub_hours")?,
        step: usize_field(v, "step")?,
        engaged_tier: decode_policy(field(v, "engaged_tier")?, "engaged_tier")?,
        commissioned: bool_field(v, "commissioned")?,
        events: arr_field(v, "events")?.iter().map(decode_event).collect::<R<Vec<_>>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthConfig;
    use crate::model::{HardwareConfig, HardwareModel};
    use crate::runtime::{Supervisor, SupervisorConfig};
    use crate::testutil::{small_commissioned_supervisor, small_inputs};
    use neuspin_bayes::{build_cnn, ArchConfig, Method, Predictive};
    use neuspin_cim::{BistConfig, CrossbarConfig};
    use neuspin_device::{AgingConfig, DefectRates};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_pred_eq(a: &Predictive, b: &Predictive, label: &str) {
        assert_eq!(a.passes, b.passes, "{label}: pass count diverged");
        assert_eq!(a.mean_probs.shape(), b.mean_probs.shape(), "{label}: shape diverged");
        for (x, y) in a.mean_probs.as_slice().iter().zip(b.mean_probs.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: mean_probs diverged");
        }
        for (x, y) in a.entropy.iter().zip(&b.entropy) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: entropy diverged");
        }
        for (x, y) in a.mutual_information.iter().zip(&b.mutual_information) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: MI diverged");
        }
        for (x, y) in a.variance.iter().zip(&b.variance) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: variance diverged");
        }
    }

    #[derive(Clone, Copy)]
    struct Case {
        seed: u64,
        hidden: usize,
        defects: bool,
        spares: usize,
        /// 0 = fresh (one served batch), 1 = aged (scheduled scrubs),
        /// 2 = stressed (hair-trigger health ladder, heavy aging).
        schedule: u8,
    }

    /// The deterministic twin constructor: everything immutable about
    /// the die (weights, geometry, defects, spares, config, seeds) —
    /// and nothing mutable (no commissioning, no lifetime).
    fn build_die(case: &Case) -> Supervisor {
        let arch = ArchConfig {
            c1: 2,
            c2: 4,
            hidden: case.hidden,
            classes: 4,
            side: 8,
            ..ArchConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(case.seed);
        let mut sw = build_cnn(Method::SpinDrop, &arch, &mut rng);
        let config = HardwareConfig {
            crossbar: CrossbarConfig {
                defect_rates: if case.defects {
                    DefectRates::uniform(0.002)
                } else {
                    DefectRates::none()
                },
                ..CrossbarConfig::ideal()
            },
            passes: 2,
            spare_cols: case.spares,
            ..HardwareConfig::default()
        };
        let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &arch, &config, &mut rng);
        if case.defects || case.spares > 0 {
            hw.fault_management(&BistConfig::default(), &mut rng);
        }
        hw.enable_aging(&AgingConfig { seed: case.seed ^ 0xA9, ..AgingConfig::default() });
        let health = if case.schedule == 2 {
            HealthConfig { entropy_slack: 1e-6, margin_slack: 1e-6, dwell: 1, ..HealthConfig::default() }
        } else {
            HealthConfig::default()
        };
        let scrub = if case.schedule == 1 { 60.0 } else { 0.0 };
        Supervisor::new(
            hw,
            SupervisorConfig {
                seed: case.seed,
                health,
                scrub_interval_hours: scrub,
                ..SupervisorConfig::default()
            },
        )
    }

    /// Commission + the case's lifetime schedule: the mutable history a
    /// checkpoint must carry.
    fn drive(sup: &mut Supervisor, case: &Case) {
        sup.commission(small_inputs(8, case.seed), &small_inputs(4, case.seed.wrapping_add(1)));
        let probe = small_inputs(3, case.seed ^ 0x77);
        match case.schedule {
            0 => {
                sup.serve_predict(&probe, case.seed ^ 0x51);
            }
            1 => {
                for _ in 0..3 {
                    sup.step(&probe, 40.0);
                }
            }
            _ => {
                for _ in 0..2 {
                    sup.step(&probe, 100.0);
                }
            }
        }
    }

    /// The 96-case round-trip battery: geometry × defects × spares ×
    /// lifetime schedule × seed. Each case drives a die through its
    /// schedule, checkpoints it, restores the checkpoint onto a fresh
    /// twin, and proves the two are bit-identical through three more
    /// supervisor operations (serve → age-step → serve) — outputs *and*
    /// full re-serialized state.
    #[test]
    fn battery_checkpoint_roundtrip_96() {
        let mut cases = 0usize;
        let mut latched = 0usize;
        for &hidden in &[12usize, 16] {
            for &defects in &[false, true] {
                for &spares in &[0usize, 2] {
                    for schedule in 0u8..3 {
                        for s in 0u64..4 {
                            cases += 1;
                            let seed = 0x5EED_0000u64
                                .wrapping_add((cases as u64).wrapping_mul(0x9D))
                                .wrapping_add(s);
                            let case = Case { seed, hidden, defects, spares, schedule };
                            let label = format!(
                                "case {cases} (seed {seed:#x} hidden {hidden} defects {defects} \
                                 spares {spares} schedule {schedule})"
                            );

                            let mut a = build_die(&case);
                            drive(&mut a, &case);
                            if a.policy() > crate::HealthPolicy::Healthy {
                                latched += 1;
                            }

                            let encoded = a.checkpoint();
                            let decoded = Checkpoint::decode(&encoded)
                                .unwrap_or_else(|e| panic!("{label}: decode failed: {e}"));
                            assert_eq!(
                                Checkpoint::encode_state(&decoded.state),
                                encoded,
                                "{label}: decode → re-encode is not byte-stable"
                            );

                            let mut b = build_die(&case);
                            b.restore(&decoded);

                            let probe = small_inputs(2, seed ^ 0x1111);
                            let ra = a.serve_predict(&probe, seed ^ 7);
                            let rb = b.serve_predict(&probe, seed ^ 7);
                            assert_pred_eq(&ra.predictive, &rb.predictive, &label);
                            let sa = a.step(&probe, 12.5);
                            let sb = b.step(&probe, 12.5);
                            assert_pred_eq(&sa.predictive, &sb.predictive, &label);
                            let ta = a.serve_predict(&probe, seed ^ 9);
                            let tb = b.serve_predict(&probe, seed ^ 9);
                            assert_pred_eq(&ta.predictive, &tb.predictive, &label);

                            assert_eq!(
                                a.checkpoint(),
                                b.checkpoint(),
                                "{label}: full state diverged after continuation"
                            );
                        }
                    }
                }
            }
        }
        assert_eq!(cases, 96);
        assert!(
            latched > 0,
            "battery never latched a degraded tier — the stressed schedule is toothless"
        );
    }

    /// Re-serializes a parsed checkpoint after mutating its top-level
    /// header pairs.
    fn tamper(encoded: &str, f: impl FnOnce(&mut Vec<(String, Json)>)) -> String {
        let mut root = parse(encoded).expect("donor checkpoint must parse");
        if let Json::Obj(ref mut pairs) = root {
            f(pairs);
        }
        root.to_string()
    }

    fn set_field(pairs: &mut [(String, Json)], key: &str, value: Json) {
        for (k, v) in pairs.iter_mut() {
            if k == key {
                *v = value;
                return;
            }
        }
        panic!("field '{key}' not found");
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        assert!(matches!(
            Checkpoint::decode("not json at all"),
            Err(CheckpointError::Malformed(_))
        ));
        let encoded = small_commissioned_supervisor(7).checkpoint();
        assert!(matches!(
            Checkpoint::decode(&encoded[..encoded.len() - 8]),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn decode_rejects_wrong_format_and_version() {
        let encoded = small_commissioned_supervisor(8).checkpoint();
        let wrong_format =
            tamper(&encoded, |p| set_field(p, "format", Json::Str("neuspin-bench".into())));
        assert!(matches!(
            Checkpoint::decode(&wrong_format),
            Err(CheckpointError::FormatMismatch(f)) if f == "neuspin-bench"
        ));
        let wrong_version = tamper(&encoded, |p| set_field(p, "version", Json::Num(2.0)));
        assert!(matches!(
            Checkpoint::decode(&wrong_version),
            Err(CheckpointError::VersionMismatch { found: 2 })
        ));
    }

    #[test]
    fn decode_rejects_payload_bit_rot() {
        let encoded = small_commissioned_supervisor(9).checkpoint();
        // Flip one payload field without updating the checksum: the
        // document still parses, but the content hash must catch it.
        let rotted = tamper(&encoded, |p| {
            for (k, v) in p.iter_mut() {
                if k == "payload" {
                    if let Json::Obj(ref mut fields) = v {
                        set_field(fields, "commissioned", Json::Bool(false));
                    }
                }
            }
        });
        assert!(matches!(
            Checkpoint::decode(&rotted),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn decode_rejects_missing_payload_field_even_with_valid_checksum() {
        let encoded = small_commissioned_supervisor(10).checkpoint();
        let gutted = tamper(&encoded, |p| {
            let mut payload = None;
            for (k, v) in p.iter_mut() {
                if k == "payload" {
                    if let Json::Obj(ref mut fields) = v {
                        fields.retain(|(k, _)| k != "step");
                    }
                    payload = Some(v.to_string());
                }
            }
            let checksum = format!("{:016x}", fnv1a(payload.expect("payload").as_bytes()));
            set_field(p, "checksum", Json::Str(checksum));
        });
        assert!(matches!(
            Checkpoint::decode(&gutted),
            Err(CheckpointError::Malformed(m)) if m.contains("step")
        ));
    }

    #[test]
    fn failed_restore_leaves_the_supervisor_untouched() {
        let mut sup = small_commissioned_supervisor(12);
        let before = sup.checkpoint();
        let err = sup.restore_from_str("{\"format\": \"junk\"}");
        assert!(err.is_err());
        assert_eq!(sup.checkpoint(), before, "failed restore must not mutate state");
    }

    #[test]
    fn periodic_checkpointing_tracks_the_interval() {
        let mut sup = small_commissioned_supervisor(13);
        assert!(sup.last_checkpoint().is_none(), "interval 0 must disable checkpointing");
        sup.serve_predict(&small_inputs(2, 1), 5);
        assert!(sup.last_checkpoint().is_none());

        let case = Case { seed: 0xCAFE, hidden: 12, defects: false, spares: 0, schedule: 0 };
        let config = SupervisorConfig {
            seed: case.seed,
            checkpoint_interval_steps: 2,
            ..SupervisorConfig::default()
        };
        let mut periodic = Supervisor::new(build_die(&case).into_model(), config);
        periodic.commission(small_inputs(8, case.seed), &small_inputs(4, case.seed + 1));
        let probe = small_inputs(2, 3);
        periodic.serve_predict(&probe, 11); // step 1: no checkpoint
        assert!(periodic.last_checkpoint().is_none());
        periodic.serve_predict(&probe, 12); // step 2: checkpoint
        let first = periodic.last_checkpoint().expect("step 2 must checkpoint").to_string();
        Checkpoint::decode(&first).expect("periodic checkpoint must decode");
        periodic.serve_predict(&probe, 13); // step 3: retained
        assert_eq!(periodic.last_checkpoint(), Some(first.as_str()));
        periodic.serve_predict(&probe, 14); // step 4: refreshed
        let second = periodic.last_checkpoint().expect("step 4 must checkpoint");
        assert_ne!(second, first, "step counter advanced, so the checkpoint must differ");
    }

    /// The fleet rejoin property: a BIST audit on a restored die leaves
    /// its predictions bit-identical to the uninterrupted original (the
    /// march test restores array contents exactly), and a healthy die
    /// passes the gate.
    #[test]
    fn bist_gate_passes_and_preserves_predictions_after_restore() {
        let case = Case { seed: 0xB157, hidden: 16, defects: true, spares: 2, schedule: 1 };
        let mut original = build_die(&case);
        drive(&mut original, &case);
        let encoded = original.checkpoint();

        let mut twin = build_die(&case);
        twin.restore_from_str(&encoded).expect("restore");
        let gate = twin.bist_gate();
        assert!(gate.passed, "healthy restored die must pass the gate: {:?}", gate.layers);
        assert!(!gate.layers.is_empty());

        let probe = small_inputs(3, 0xF00D);
        for round in 0..2u64 {
            let a = original.serve_predict(&probe, 0x9A + round);
            let b = twin.serve_predict(&probe, 0x9A + round);
            assert_pred_eq(&a.predictive, &b.predictive, &format!("post-gate round {round}"));
        }
    }
}
