//! Closed-loop self-healing runtime: the [`Supervisor`] owns a
//! [`HardwareModel`] plus its [`HealthMonitor`] and, as simulated
//! device time advances, actually *executes* the policy ladder the
//! monitor recommends — scheduled scrubbing against retention decay,
//! norm recalibration against mild drift, a full re-BIST + spare
//! repair + fault-aware remap tier against serious signal loss, and
//! gated abstention as the last resort. Every action is recorded in a
//! structured [`RecoveryEvent`] trail and charged to the energy model,
//! so a lifetime experiment can account for the joules reliability
//! costs, not just the accuracy it buys.
//!
//! Determinism: the supervisor draws every RNG it needs from
//! [`crate::rng::stream`] substreams of its configured master seed,
//! tagged by purpose and step index. Evaluation passes reuse one fixed
//! seed (common random numbers), so health-signal changes between
//! steps reflect hardware state, never sampling noise.

use crate::checkpoint::{Checkpoint, CheckpointError, SupervisorState};
use crate::health::{HealthConfig, HealthMonitor, HealthPolicy};
use crate::model::{HardwareModel, ReplicaBank};
use crate::pool::ThreadPool;
use crate::rng::stream;
use neuspin_bayes::{Gated, Predictive};
use neuspin_cim::BistConfig;
use neuspin_device::AgingReport;
use neuspin_energy::Joules;
use neuspin_nn::Tensor;
use std::fmt;

/// Stream tags for the supervisor's RNG substreams (offsets into the
/// master seed's tag space; per-step tags add the step index).
const TAG_CALIBRATE: u64 = 0x4000;
const TAG_ABSTAIN: u64 = 0x4800;
const TAG_REMAP: u64 = 0x5000;
/// Re-commission BIST audit after a crash restore.
const TAG_BIST: u64 = 0x6000;
/// Fixed evaluation-seed tag: every health-probe prediction uses this
/// one stream so step-to-step signal changes are hardware, not noise.
const TAG_EVAL: u64 = 0x0E7A;

/// Configuration for a [`Supervisor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Health-monitor thresholds and hysteresis.
    pub health: HealthConfig,
    /// BIST configuration used by the [`RecoveryAction::RemapTier`]
    /// escalation.
    pub bist: BistConfig,
    /// Scheduled-scrub period in device-hours; `<= 0` disables the
    /// schedule (scrubbing still happens inside a remap recovery).
    pub scrub_interval_hours: f64,
    /// Target coverage for abstention-threshold calibration.
    pub coverage: f64,
    /// Rounds for norm calibration passes.
    pub calib_rounds: usize,
    /// Master seed; all supervisor RNG streams derive from it.
    pub seed: u64,
    /// Take a crash-safe checkpoint every this many steps (`step` and
    /// `serve_predict` both count); 0 disables periodic checkpointing.
    /// The latest checkpoint is retained in memory and readable via
    /// [`Supervisor::last_checkpoint`].
    pub checkpoint_interval_steps: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            health: HealthConfig::default(),
            bist: BistConfig::default(),
            scrub_interval_hours: 0.0,
            coverage: 0.9,
            calib_rounds: 2,
            seed: 0x5EED,
            checkpoint_interval_steps: 0,
        }
    }
}

/// A recovery action the supervisor actually executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryAction {
    /// Scheduled data scrub: rewrite decayed cells from the golden
    /// image and reset conductance drift.
    Scrub,
    /// Norm recalibration + abstention-threshold refresh (cheap,
    /// digital-only).
    Recalibrate,
    /// Full fault-management tier: re-BIST, spare-column repair,
    /// fault-aware remap, scrub, then recalibrate and re-baseline.
    RemapTier,
    /// Entered gated abstention: predictions above the entropy
    /// threshold are refused rather than emitted.
    Abstain,
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecoveryAction::Scrub => "scrub",
            RecoveryAction::Recalibrate => "recalibrate",
            RecoveryAction::RemapTier => "remap_tier",
            RecoveryAction::Abstain => "abstain",
        };
        f.write_str(s)
    }
}

/// One entry in the supervisor's structured recovery trail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEvent {
    /// Device time when the action ran.
    pub at_hours: f64,
    /// Supervisor step index the action ran in (0 = commissioning).
    pub step: usize,
    /// What was executed.
    pub action: RecoveryAction,
    /// The policy that triggered it.
    pub policy: HealthPolicy,
    /// Cells rewritten by a scrub (0 for non-scrub actions).
    pub cells_refreshed: usize,
    /// Cells the BIST flagged (remap tier only).
    pub flagged: usize,
    /// Columns repaired with spares (remap tier only).
    pub repaired: usize,
    /// Energy charged to the hardware model by this action.
    pub energy: Joules,
}

/// Outcome of one [`Supervisor::step`].
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Device time at the end of the step.
    pub at_hours: f64,
    /// Latched policy after observing this step's health signals
    /// (the policy the recovery actions responded to).
    pub policy: HealthPolicy,
    /// The evaluation pass on this step's inputs (taken after aging
    /// and any scheduled scrub, before escalation recoveries).
    pub predictive: Predictive,
    /// Gated view of `predictive` while abstention is active.
    pub gated: Option<Gated>,
    /// Aging activity applied at the head of the step.
    pub aging: AgingReport,
    /// Actions executed during the step, in execution order.
    pub actions: Vec<RecoveryAction>,
}

/// Outcome of one [`Supervisor::serve_predict`] live-traffic batch.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Latched policy after observing this batch's health signals.
    pub policy: HealthPolicy,
    /// The prediction over the served batch.
    pub predictive: Predictive,
    /// Per-sample abstention decisions at the calibrated entropy
    /// threshold (all accepted while the threshold is uncalibrated /
    /// infinite).
    pub gated: Gated,
    /// Recovery actions executed in response to this batch's signals.
    pub actions: Vec<RecoveryAction>,
}

/// The closed-loop self-healing runtime.
///
/// Construct with [`Supervisor::new`] over a model that already has
/// aging enabled, [`Supervisor::commission`] it once on healthy
/// hardware to freeze the health baseline, then drive device lifetime
/// with repeated [`Supervisor::step`] calls.
pub struct Supervisor {
    model: HardwareModel,
    monitor: HealthMonitor,
    config: SupervisorConfig,
    calib: Tensor,
    now_hours: f64,
    last_scrub_hours: f64,
    step: usize,
    events: Vec<RecoveryEvent>,
    pool: ThreadPool,
    /// Persistent per-worker model replicas for the parallel MC
    /// engine. Attached (cloned once per pool worker) on the first
    /// evaluation after commissioning and reused across every
    /// subsequent `step`/`serve_predict` evaluation; invalidated
    /// whenever the managed model's device state mutates (aging,
    /// scrub, recalibration, remap) so stale weights never serve.
    replicas: ReplicaBank,
    /// Highest escalation tier acted on since the last healthy
    /// observation — makes Recalibrate/RemapTier idempotent while the
    /// policy holds.
    engaged_tier: HealthPolicy,
    commissioned: bool,
    /// The most recent periodic checkpoint (serialized), if periodic
    /// checkpointing is enabled. This is what a crash restart restores
    /// from.
    last_checkpoint: Option<String>,
    /// Monotonic count of periodic checkpoints taken — lets callers
    /// (e.g. [`crate::DieFleet`]) detect a fresh checkpoint without
    /// comparing strings.
    checkpoint_seq: u64,
}

impl Supervisor {
    /// Wraps a compiled model in the self-healing runtime.
    ///
    /// # Panics
    ///
    /// Panics if aging is not enabled on the model (a supervisor
    /// without a time axis has nothing to heal) or if `coverage` /
    /// `calib_rounds` are out of range.
    pub fn new(model: HardwareModel, config: SupervisorConfig) -> Self {
        assert!(
            model.aging_enabled(),
            "Supervisor requires a model with aging enabled"
        );
        assert!(
            config.coverage > 0.0 && config.coverage <= 1.0,
            "coverage must be in (0, 1], got {}",
            config.coverage
        );
        assert!(config.calib_rounds > 0, "calib_rounds must be positive");
        let monitor = HealthMonitor::new(config.health);
        Self {
            model,
            monitor,
            config,
            calib: Tensor::zeros(&[1]),
            now_hours: 0.0,
            last_scrub_hours: 0.0,
            step: 0,
            events: Vec::new(),
            pool: ThreadPool::from_env(),
            replicas: ReplicaBank::new(),
            engaged_tier: HealthPolicy::Healthy,
            commissioned: false,
            last_checkpoint: None,
            checkpoint_seq: 0,
        }
    }

    /// Commissions the runtime on (assumed healthy) hardware: runs
    /// norm calibration, calibrates the abstention threshold on
    /// `calib` at the configured coverage, takes one evaluation pass
    /// over `monitor_batch`, and freezes the health baseline against
    /// it. The calibration set is retained for later recalibrations.
    /// Returns the baseline evaluation.
    pub fn commission(&mut self, calib: Tensor, monitor_batch: &Tensor) -> Predictive {
        let seed = self.config.seed;
        self.model
            .calibrate(&calib, self.config.calib_rounds, &mut stream(seed, 1));
        let threshold =
            self.model
                .calibrate_abstention(&calib, self.config.coverage, &mut stream(seed, 2));
        self.monitor.set_abstain_entropy(threshold);
        self.calib = calib;
        // Calibration rewrote norm statistics: any replicas cloned
        // from the pre-calibration weights are stale. The eval below
        // eagerly re-attaches fresh ones.
        self.replicas.invalidate();
        self.model.reset_sense_margins();
        let pred =
            self.model
                .predict_par_in(monitor_batch, self.eval_seed(), &self.pool, &mut self.replicas);
        self.monitor
            .observe(mean(&pred.entropy), self.model.mean_sense_margin());
        self.monitor.freeze_baseline();
        self.last_scrub_hours = self.now_hours;
        self.commissioned = true;
        pred
    }

    /// Advances device time by `dt_hours` and runs one closed-loop
    /// iteration: aging → scheduled scrub → evaluation + health
    /// observation → policy escalation (recalibrate / remap / abstain).
    ///
    /// # Panics
    ///
    /// Panics if the supervisor was never commissioned or `dt_hours`
    /// is not positive.
    pub fn step(&mut self, inputs: &Tensor, dt_hours: f64) -> StepReport {
        assert!(self.commissioned, "commission the Supervisor before stepping");
        assert!(
            dt_hours > 0.0 && dt_hours.is_finite(),
            "dt_hours must be positive and finite, got {dt_hours}"
        );
        self.step += 1;
        let _span = crate::span!("supervisor_step", step = self.step, dt_hours = dt_hours);
        let aging = self.model.advance_time(dt_hours);
        // Aging mutated the device arrays; replicas cloned before this
        // step would evaluate on stale physics.
        self.replicas.invalidate();
        self.now_hours += dt_hours;
        // Virtual device-hours: stamped into every span closed from
        // here on (deterministic — it tracks simulated time only).
        crate::telemetry::set_model_time_hours(self.now_hours);

        let mut actions = Vec::new();
        if self.scrub_due() {
            self.run_scrub(HealthPolicy::Healthy);
            actions.push(RecoveryAction::Scrub);
        }

        self.model.reset_sense_margins();
        let pred =
            self.model
                .predict_par_in(inputs, self.eval_seed(), &self.pool, &mut self.replicas);
        self.monitor
            .observe(mean(&pred.entropy), self.model.mean_sense_margin());
        let policy = self.monitor.policy();
        let gated = self.escalate(policy, inputs, &pred, &mut actions);
        self.maybe_checkpoint();

        StepReport {
            at_hours: self.now_hours,
            policy,
            predictive: pred,
            gated,
            aging,
            actions,
        }
    }

    /// Serves one live-traffic batch through the managed die, keeping
    /// the closed loop engaged while the die is under load: predict on
    /// the caller's seed, observe the health signals the batch
    /// produced, execute whatever the latched policy demands (the same
    /// recalibrate / remap / abstain ladder as [`Supervisor::step`]),
    /// and entropy-gate every sample at the calibrated threshold.
    ///
    /// Unlike [`Supervisor::step`] no device time passes — serving is a
    /// zero-`dt` step — so a fleet can interleave traffic on some dies
    /// with aging on others. The caller owns the seed policy: a fixed
    /// per-batch seed stream keeps served predictions bit-reproducible
    /// for a given batch composition (the serving determinism
    /// contract).
    ///
    /// # Panics
    ///
    /// Panics if the supervisor was never commissioned.
    pub fn serve_predict(&mut self, inputs: &Tensor, seed: u64) -> ServeReport {
        assert!(self.commissioned, "commission the Supervisor before serving");
        self.step += 1;
        let _span = crate::span!(
            "serve_predict",
            step = self.step,
            batch = inputs.shape()[0]
        );
        self.model.reset_sense_margins();
        let pred = self
            .model
            .predict_par_in(inputs, seed, &self.pool, &mut self.replicas);
        self.monitor
            .observe(mean(&pred.entropy), self.model.mean_sense_margin());
        let policy = self.monitor.policy();
        let mut actions = Vec::new();
        let _ = self.escalate(policy, inputs, &pred, &mut actions);
        let gated = pred.gate(self.abstain_threshold());
        self.maybe_checkpoint();
        ServeReport { policy, predictive: pred, gated, actions }
    }

    /// Executes whatever the latched policy demands, honouring the
    /// engaged-tier latch so a held policy acts exactly once.
    fn escalate(
        &mut self,
        policy: HealthPolicy,
        inputs: &Tensor,
        pred: &Predictive,
        actions: &mut Vec<RecoveryAction>,
    ) -> Option<Gated> {
        match policy {
            HealthPolicy::Healthy => {
                self.engaged_tier = HealthPolicy::Healthy;
                None
            }
            HealthPolicy::Recalibrate => {
                if self.engaged_tier < HealthPolicy::Recalibrate {
                    self.run_recalibrate(policy);
                    self.engaged_tier = HealthPolicy::Recalibrate;
                    actions.push(RecoveryAction::Recalibrate);
                }
                None
            }
            HealthPolicy::RemapTier => {
                if self.engaged_tier < HealthPolicy::RemapTier {
                    self.run_remap_tier(policy, inputs);
                    // The remap re-froze the baseline, so the latch is
                    // back at Healthy; re-arm the engagement latch too.
                    self.engaged_tier = HealthPolicy::Healthy;
                    actions.push(RecoveryAction::RemapTier);
                }
                None
            }
            HealthPolicy::Abstain => {
                if self.engaged_tier < HealthPolicy::Abstain {
                    self.engaged_tier = HealthPolicy::Abstain;
                    actions.push(RecoveryAction::Abstain);
                    self.log_event(RecoveryAction::Abstain, policy, 0, 0, 0, Joules(0.0));
                }
                Some(pred.gate(self.abstain_threshold()))
            }
        }
    }

    /// Scheduled scrub predicate.
    fn scrub_due(&self) -> bool {
        let interval = self.config.scrub_interval_hours;
        interval > 0.0 && self.now_hours - self.last_scrub_hours >= interval - 1e-9
    }

    /// Runs a scrub, logs it, and resets the schedule clock.
    fn run_scrub(&mut self, policy: HealthPolicy) {
        let before = self.model.energy();
        let refreshed = self.model.scrub();
        self.replicas.invalidate();
        let cost = Joules(self.model.energy().0 - before.0);
        self.last_scrub_hours = self.now_hours;
        self.log_event(RecoveryAction::Scrub, policy, refreshed, 0, 0, cost);
    }

    /// Cheap tier: norm recalibration + abstention-threshold refresh.
    /// Deliberately does *not* re-freeze the baseline — if the signal
    /// keeps degrading the monitor must still see it and escalate.
    fn run_recalibrate(&mut self, policy: HealthPolicy) {
        let seed = self.config.seed;
        let tag = self.step as u64;
        let before = self.model.energy();
        let rounds = self.config.calib_rounds;
        self.model
            .calibrate(&self.calib, rounds, &mut stream(seed, TAG_CALIBRATE + tag));
        let threshold = self.model.calibrate_abstention(
            &self.calib,
            self.config.coverage,
            &mut stream(seed, TAG_ABSTAIN + tag),
        );
        self.monitor.set_abstain_entropy(threshold);
        self.replicas.invalidate();
        let cost = Joules(self.model.energy().0 - before.0);
        self.log_event(RecoveryAction::Recalibrate, policy, 0, 0, 0, cost);
    }

    /// Full tier: re-BIST + spare repair + fault-aware remap, scrub
    /// the surviving array, recalibrate on the new physical layout,
    /// then re-baseline the monitor against a fresh evaluation so the
    /// repaired hardware becomes the new healthy reference.
    fn run_remap_tier(&mut self, policy: HealthPolicy, inputs: &Tensor) {
        let seed = self.config.seed;
        let tag = self.step as u64;
        let before = self.model.energy();
        let report = self
            .model
            .fault_management(&self.config.bist, &mut stream(seed, TAG_REMAP + tag));
        let refreshed = self.model.scrub();
        self.last_scrub_hours = self.now_hours;
        let rounds = self.config.calib_rounds;
        self.model
            .calibrate(&self.calib, rounds, &mut stream(seed, TAG_CALIBRATE + tag));
        let threshold = self.model.calibrate_abstention(
            &self.calib,
            self.config.coverage,
            &mut stream(seed, TAG_ABSTAIN + tag),
        );
        self.monitor.set_abstain_entropy(threshold);
        let repaired: usize = report.layers.iter().map(|l| l.repaired).sum();
        let flagged = report.total_flagged();
        // Re-baseline: the repaired + recalibrated die is the new
        // healthy reference. The repair/remap/recalibrate sequence
        // above rewrote device state, so replicas re-attach here.
        self.replicas.invalidate();
        self.monitor.clear_window();
        self.model.reset_sense_margins();
        let pred =
            self.model
                .predict_par_in(inputs, self.eval_seed(), &self.pool, &mut self.replicas);
        self.monitor
            .observe(mean(&pred.entropy), self.model.mean_sense_margin());
        self.monitor.freeze_baseline();
        let cost = Joules(self.model.energy().0 - before.0);
        self.log_event(RecoveryAction::RemapTier, policy, refreshed, flagged, repaired, cost);
    }

    fn log_event(
        &mut self,
        action: RecoveryAction,
        policy: HealthPolicy,
        cells_refreshed: usize,
        flagged: usize,
        repaired: usize,
        energy: Joules,
    ) {
        let name = match action {
            RecoveryAction::Scrub => "scrub",
            RecoveryAction::Recalibrate => "recalibrate",
            RecoveryAction::RemapTier => "remap_tier",
            RecoveryAction::Abstain => "abstain",
        };
        crate::flight::record(
            "escalate",
            vec![
                ("action", crate::json::Json::Str(name.to_string())),
                ("step", crate::json::Json::Num(self.step as f64)),
                ("policy", crate::json::Json::Num(policy.tier_index() as f64)),
                ("flagged", crate::json::Json::Num(flagged as f64)),
                ("repaired", crate::json::Json::Num(repaired as f64)),
            ],
        );
        if crate::telemetry::active() {
            crate::trace_event!(
                "recovery",
                action = name,
                step = self.step,
                policy = policy.tier_index(),
                cells_refreshed = cells_refreshed,
                flagged = flagged,
                repaired = repaired,
                energy_j = energy.0
            );
            crate::telemetry::counter(&format!("recovery_{name}_total")).inc();
            if action == RecoveryAction::Scrub {
                crate::telemetry::gauge("scrub_energy_j").add(energy.0);
            }
        }
        self.events.push(RecoveryEvent {
            at_hours: self.now_hours,
            step: self.step,
            action,
            policy,
            cells_refreshed,
            flagged,
            repaired,
            energy,
        });
    }

    /// The fixed common-random-numbers evaluation seed. Public so
    /// comparison baselines (unmanaged / scrub-only arms of a
    /// lifetime study) can evaluate with the identical stream.
    pub fn eval_seed(&self) -> u64 {
        self.config.seed ^ TAG_EVAL.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Current device time in hours.
    pub fn now_hours(&self) -> f64 {
        self.now_hours
    }

    /// The currently latched health policy — the routing tier a
    /// serving fleet keys on.
    pub fn policy(&self) -> HealthPolicy {
        self.monitor.policy()
    }

    /// The calibrated abstention-entropy threshold.
    pub fn abstain_threshold(&self) -> f64 {
        self.monitor.config().abstain_entropy
    }

    /// The structured recovery trail, in execution order.
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// Read access to the managed model.
    pub fn model(&self) -> &HardwareModel {
        &self.model
    }

    /// Mutable access to the managed model (test instrumentation and
    /// custom experiments; the supervisor does not defend against
    /// edits that invalidate its baseline). Conservatively invalidates
    /// the replica bank — the caller may mutate anything.
    pub fn model_mut(&mut self) -> &mut HardwareModel {
        self.replicas.invalidate();
        &mut self.model
    }

    /// Read access to the persistent replica bank (observability:
    /// replica count and lifetime sync total).
    pub fn replicas(&self) -> &ReplicaBank {
        &self.replicas
    }

    /// Replaces the evaluation worker pool (e.g. to pin a die to a
    /// fixed thread count regardless of `NEUSPIN_THREADS`). Drops any
    /// attached replicas: the bank is sized to the pool.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = ThreadPool::new(threads);
        self.replicas.invalidate();
    }

    /// Read access to the health monitor.
    pub fn monitor(&self) -> &HealthMonitor {
        &self.monitor
    }

    /// Mutable access to the health monitor (threshold overrides in
    /// tests and experiments).
    pub fn monitor_mut(&mut self) -> &mut HealthMonitor {
        &mut self.monitor
    }

    /// Enables periodic checkpointing every `steps` supervisor
    /// interactions (0 disables) — for scenario drivers taking an
    /// already-built die into a crash-safe serving campaign.
    pub fn set_checkpoint_interval(&mut self, steps: usize) {
        self.config.checkpoint_interval_steps = steps;
    }

    /// Serializes the die's full mutable state as a versioned,
    /// checksummed checkpoint document (see [`crate::checkpoint`]).
    /// Byte-deterministic: the same supervisor state always produces
    /// the same string.
    pub fn checkpoint(&self) -> String {
        Checkpoint::encode_state(&self.export_state())
    }

    /// The most recent periodic checkpoint, if
    /// [`SupervisorConfig::checkpoint_interval_steps`] is enabled and
    /// at least one interval has elapsed. This is what a crash restart
    /// restores from.
    pub fn last_checkpoint(&self) -> Option<&str> {
        self.last_checkpoint.as_deref()
    }

    /// Monotonic count of periodic checkpoints taken over this
    /// supervisor's in-memory lifetime (not carried by checkpoints —
    /// it identifies fresh [`Supervisor::last_checkpoint`] values, it
    /// is not device state).
    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint_seq
    }

    /// Applies a decoded checkpoint onto this supervisor, which must be
    /// the deterministic twin of the checkpoint's source (same trained
    /// weights, geometry, config, and seeds — restore carries only the
    /// mutable divergence; see the restore-onto-twin contract in
    /// [`crate::checkpoint`]). After the call, any `step` /
    /// `serve_predict` / scrub sequence is bit-identical to the
    /// uninterrupted source run.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's pipeline shape does not match this
    /// supervisor's model (it was taken from a different architecture).
    pub fn restore(&mut self, checkpoint: &Checkpoint) {
        let s = &checkpoint.state;
        self.model.import_state(&s.model);
        self.monitor.import_state(&s.monitor);
        self.calib = s.calib.clone();
        self.now_hours = s.now_hours;
        self.last_scrub_hours = s.last_scrub_hours;
        self.step = s.step;
        self.engaged_tier = s.engaged_tier;
        self.commissioned = s.commissioned;
        self.events = s.events.clone();
        // Every replica was cloned from pre-restore device state.
        self.replicas.invalidate();
        self.last_checkpoint = None;
        crate::telemetry::set_model_time_hours(self.now_hours);
    }

    /// Decodes and applies a serialized checkpoint. Verification
    /// happens before any state is touched: a malformed, version-skewed
    /// or checksum-failing document leaves the supervisor unchanged.
    pub fn restore_from_str(&mut self, text: &str) -> Result<(), CheckpointError> {
        let decoded = Checkpoint::decode(text)?;
        self.restore(&decoded);
        Ok(())
    }

    /// Re-commission gate for a die restored from a checkpoint: a
    /// read-only BIST audit over every binary crossbar, seeded from the
    /// supervisor master seed and current step. The march test restores
    /// array contents exactly, so a gate run leaves predictions
    /// bit-identical — only op tallies advance. A crossbar passes when
    /// the audit flags no more cells than its known fabricated defect
    /// population plus estimator slack.
    pub fn bist_gate(&mut self) -> BistGateReport {
        let mut rng = stream(self.config.seed, TAG_BIST.wrapping_add(self.step as u64));
        let layers = self.model.bist_audit(&self.config.bist, &mut rng);
        let passed = layers
            .iter()
            .all(|&(flagged, known)| flagged <= known + known / 10 + 2);
        // March writes advanced the master model's op tallies; replicas
        // cloned earlier would merge stale counters.
        self.replicas.invalidate();
        BistGateReport { layers, passed }
    }

    pub(crate) fn export_state(&self) -> SupervisorState {
        SupervisorState {
            model: self.model.export_state(),
            monitor: self.monitor.export_state(),
            calib: self.calib.clone(),
            now_hours: self.now_hours,
            last_scrub_hours: self.last_scrub_hours,
            step: self.step,
            engaged_tier: self.engaged_tier,
            commissioned: self.commissioned,
            events: self.events.clone(),
        }
    }

    fn maybe_checkpoint(&mut self) {
        let interval = self.config.checkpoint_interval_steps;
        if interval > 0 && self.step.is_multiple_of(interval) {
            self.last_checkpoint = Some(self.checkpoint());
            self.checkpoint_seq += 1;
        }
    }

    /// Consumes the supervisor, returning the managed model.
    pub fn into_model(self) -> HardwareModel {
        self.model
    }
}

/// Outcome of a [`Supervisor::bist_gate`] re-commission audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BistGateReport {
    /// `(flagged, known_defects)` per binary crossbar, pipeline order.
    pub layers: Vec<(usize, usize)>,
    /// Whether every crossbar passed the gate criterion.
    pub passed: bool,
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{HardwareConfig, HardwareModel};
    use crate::rng::{SeedableRng, StdRng};
    use neuspin_bayes::{build_cnn, ArchConfig, Method};
    use neuspin_cim::CrossbarConfig;
    use neuspin_device::{AgingConfig, TemperatureProfile};
    use neuspin_nn::Tensor;

    fn arch() -> ArchConfig {
        ArchConfig::default()
    }

    fn ideal_config() -> HardwareConfig {
        HardwareConfig {
            crossbar: CrossbarConfig::ideal(),
            passes: 4,
            ..HardwareConfig::default()
        }
    }

    fn inputs(n: usize) -> Tensor {
        Tensor::from_fn(&[n, 1, 16, 16], |i| ((i % 17) as f32 / 17.0) - 0.4)
    }

    fn compiled(config: &HardwareConfig, aging: &AgingConfig) -> HardwareModel {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(7);
        let mut sw = build_cnn(Method::SpinDrop, &a, &mut rng);
        let mut hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &a, config, &mut rng);
        hw.enable_aging(aging);
        hw
    }

    fn drift_aging(rate_per_hour: f64) -> AgingConfig {
        AgingConfig {
            seed: 11,
            drift_rate: rate_per_hour,
            ..AgingConfig::default()
        }
    }

    #[test]
    fn supervisor_requires_aging() {
        let a = arch();
        let mut rng = StdRng::seed_from_u64(7);
        let mut sw = build_cnn(Method::SpinDrop, &a, &mut rng);
        let hw = HardwareModel::compile(&mut sw, Method::SpinDrop, &a, &ideal_config(), &mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Supervisor::new(hw, SupervisorConfig::default())
        }));
        assert!(result.is_err());
    }

    #[test]
    fn scheduled_scrub_fires_on_the_interval_and_costs_energy() {
        let aging = AgingConfig {
            seed: 11,
            thermal_stability: 31.0,
            temperature: TemperatureProfile::Constant(300.0),
            ..AgingConfig::default()
        };
        let hw = compiled(&ideal_config(), &aging);
        let config = SupervisorConfig {
            scrub_interval_hours: 2.0,
            ..SupervisorConfig::default()
        };
        let mut sup = Supervisor::new(hw, config);
        let x = inputs(4);
        sup.commission(x.clone(), &x);
        for _ in 0..4 {
            sup.step(&x, 1.0);
        }
        let scrubs: Vec<&RecoveryEvent> = sup
            .events()
            .iter()
            .filter(|e| e.action == RecoveryAction::Scrub)
            .collect();
        assert_eq!(scrubs.len(), 2, "expected scrubs at t=2h and t=4h");
        assert_eq!(scrubs[0].at_hours, 2.0);
        assert_eq!(scrubs[1].at_hours, 4.0);
        for e in &scrubs {
            assert!(e.energy.0 > 0.0, "scrub must be charged to the energy model");
            assert!(
                e.cells_refreshed > 0,
                "low-Δ aging over 2h should decay some cells"
            );
        }
    }

    #[test]
    fn escalation_runs_each_tier_once_and_in_order() {
        // Pure deterministic drift: margins decay as e^{-rt}, so with
        // rate 0.1/h and window 1 the margin loss crosses the 0.15
        // slack at t=2h (loss 0.18) and the 0.30 double-slack at t=4h
        // (loss 0.33). Dwell 1 latches immediately; the t=3h step
        // (loss 0.26, still Recalibrate) must NOT re-run the cheap
        // tier — that is the idempotence latch under test.
        let hw = compiled(&ideal_config(), &drift_aging(0.1));
        let config = SupervisorConfig {
            health: HealthConfig {
                window: 1,
                dwell: 1,
                ..HealthConfig::default()
            },
            ..SupervisorConfig::default()
        };
        let mut sup = Supervisor::new(hw, config);
        let x = inputs(4);
        sup.commission(x.clone(), &x);
        let mut policies = Vec::new();
        for _ in 0..4 {
            let report = sup.step(&x, 1.0);
            policies.push(report.policy);
        }
        assert_eq!(
            policies,
            vec![
                HealthPolicy::Healthy,
                HealthPolicy::Recalibrate,
                HealthPolicy::Recalibrate,
                HealthPolicy::RemapTier,
            ]
        );
        let trail: Vec<(RecoveryAction, usize)> =
            sup.events().iter().map(|e| (e.action, e.step)).collect();
        assert_eq!(
            trail,
            vec![
                (RecoveryAction::Recalibrate, 2),
                (RecoveryAction::RemapTier, 4),
            ],
            "recalibrate once while the policy holds, then escalate"
        );
        for e in sup.events() {
            assert!(e.energy.0 > 0.0, "{} must cost energy", e.action);
        }
        // The remap tier scrubbed the array (drift reset) and
        // re-froze the baseline, so the next step is healthy again.
        let after = sup.step(&x, 1.0);
        assert_eq!(after.policy, HealthPolicy::Healthy);
    }

    #[test]
    fn recovered_margins_return_to_baseline_after_remap_tier() {
        let hw = compiled(&ideal_config(), &drift_aging(0.1));
        let config = SupervisorConfig {
            health: HealthConfig {
                window: 1,
                dwell: 1,
                ..HealthConfig::default()
            },
            ..SupervisorConfig::default()
        };
        let mut sup = Supervisor::new(hw, config);
        let x = inputs(4);
        sup.commission(x.clone(), &x);
        let (b_entropy, b_margin) = sup.monitor().baseline().unwrap();
        for _ in 0..4 {
            sup.step(&x, 1.0);
        }
        // After the remap tier the baseline was re-frozen on scrubbed
        // hardware; it should sit close to the commissioning baseline.
        let (e, m) = sup.monitor().baseline().unwrap();
        assert!(
            (m - b_margin).abs() / b_margin < 0.05,
            "post-recovery margin {m} should be near commissioning margin {b_margin}"
        );
        assert!(
            (e - b_entropy).abs() < 0.2,
            "post-recovery entropy {e} should be near commissioning entropy {b_entropy}"
        );
    }

    #[test]
    fn abstain_gates_predictions_and_logs_the_transition_once() {
        let hw = compiled(&ideal_config(), &drift_aging(0.0));
        let mut sup = Supervisor::new(hw, SupervisorConfig::default());
        let x = inputs(4);
        sup.commission(x.clone(), &x);
        // Force abstention by dropping the entropy threshold below any
        // achievable predictive entropy.
        sup.monitor_mut().set_abstain_entropy(1e-6);
        let r1 = sup.step(&x, 1.0);
        let r2 = sup.step(&x, 1.0);
        assert_eq!(r1.policy, HealthPolicy::Abstain);
        assert_eq!(r2.policy, HealthPolicy::Abstain);
        let g1 = r1.gated.expect("abstaining step must return a gated view");
        assert_eq!(g1.coverage(), 0.0, "threshold 1e-6 should abstain on all");
        assert!(r2.gated.is_some());
        let abstains: Vec<&RecoveryEvent> = sup
            .events()
            .iter()
            .filter(|e| e.action == RecoveryAction::Abstain)
            .collect();
        assert_eq!(abstains.len(), 1, "log the abstain transition once, not per step");
        assert_eq!(abstains[0].step, 1);
    }

    #[test]
    fn step_rejects_bad_dt_and_uncommissioned_runs() {
        let hw = compiled(&ideal_config(), &drift_aging(0.0));
        let x = inputs(2);
        let mut sup = Supervisor::new(hw, SupervisorConfig::default());
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sup.step(&x, 1.0);
        }));
        assert!(r.is_err(), "stepping before commission must panic");
        sup.commission(x.clone(), &x);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sup.step(&x, 0.0);
        }));
        assert!(r.is_err(), "dt = 0 must panic");
    }

    #[test]
    fn serve_predict_gates_observes_and_is_seed_deterministic() {
        let hw = compiled(&ideal_config(), &drift_aging(0.0));
        let mut sup = Supervisor::new(hw, SupervisorConfig::default());
        let x = inputs(4);
        sup.commission(x.clone(), &x);
        let steps_before = sup.step;
        let a = sup.serve_predict(&x, 0xFEED);
        assert_eq!(a.policy, HealthPolicy::Healthy);
        assert_eq!(a.gated.accepted.len(), 4);
        assert!(a.actions.is_empty(), "healthy die must not trigger recovery");
        assert_eq!(sup.step, steps_before + 1, "serving is a zero-dt step");
        assert_eq!(sup.now_hours(), 0.0, "no device time passes while serving");
        // Same batch + same seed ⇒ bit-identical prediction (the
        // serving determinism contract).
        let b = sup.serve_predict(&x, 0xFEED);
        assert_eq!(a.predictive, b.predictive);
        // A fresh seed draws different device noise.
        let c = sup.serve_predict(&x, 0xFEED + 1);
        assert_ne!(a.predictive.mean_probs, c.predictive.mean_probs);
    }

    #[test]
    fn serve_predict_abstains_when_threshold_collapses() {
        let hw = compiled(&ideal_config(), &drift_aging(0.0));
        let mut sup = Supervisor::new(hw, SupervisorConfig::default());
        let x = inputs(4);
        sup.commission(x.clone(), &x);
        sup.monitor_mut().set_abstain_entropy(1e-6);
        let r = sup.serve_predict(&x, 0xFEED);
        assert_eq!(r.policy, HealthPolicy::Abstain);
        assert_eq!(r.gated.coverage(), 0.0, "threshold 1e-6 abstains on everything");
        assert_eq!(r.actions, vec![RecoveryAction::Abstain]);
        assert_eq!(sup.policy(), HealthPolicy::Abstain);
    }

    #[test]
    #[should_panic(expected = "commission the Supervisor before serving")]
    fn serve_predict_requires_commissioning() {
        let hw = compiled(&ideal_config(), &drift_aging(0.0));
        let mut sup = Supervisor::new(hw, SupervisorConfig::default());
        let x = inputs(2);
        let _ = sup.serve_predict(&x, 1);
    }

    #[test]
    fn replicas_persist_across_serving_and_invalidate_on_mutation() {
        let hw = compiled(&ideal_config(), &drift_aging(0.0));
        let mut sup = Supervisor::new(hw, SupervisorConfig::default());
        sup.pool = ThreadPool::new(4);
        let x = inputs(4);
        sup.commission(x.clone(), &x);
        // Commissioning's baseline eval eagerly attached the bank
        // (ideal config has 4 passes, pool has 4 workers).
        assert_eq!(sup.replicas().len(), 4);
        assert_eq!(sup.replicas().syncs(), 1);
        // Serving is a zero-dt path: the same replicas serve batch
        // after batch with one sync each and no re-clone.
        for i in 0..3 {
            sup.serve_predict(&x, 100 + i);
            assert_eq!(sup.replicas().len(), 4);
        }
        assert_eq!(sup.replicas().syncs(), 4);
        // A step ages the device, which must drop the stale clones;
        // the step's own eval re-attaches fresh ones.
        sup.step(&x, 1.0);
        assert_eq!(sup.replicas().len(), 4);
        assert_eq!(sup.replicas().syncs(), 5);
        // model_mut is a conservative invalidation point.
        let _ = sup.model_mut();
        assert!(sup.replicas().is_empty());
    }

    #[test]
    fn trajectories_are_identical_across_thread_counts() {
        let run = |threads: usize| {
            let hw = compiled(&ideal_config(), &drift_aging(0.1));
            let config = SupervisorConfig {
                health: HealthConfig {
                    window: 1,
                    dwell: 1,
                    ..HealthConfig::default()
                },
                scrub_interval_hours: 3.0,
                ..SupervisorConfig::default()
            };
            let mut sup = Supervisor::new(hw, config);
            sup.pool = ThreadPool::new(threads);
            let x = inputs(4);
            sup.commission(x.clone(), &x);
            let mut sig = Vec::new();
            for _ in 0..4 {
                let r = sup.step(&x, 1.0);
                sig.push((r.policy, r.predictive.mean_probs.as_slice().to_vec()));
            }
            let trail: Vec<(RecoveryAction, usize)> =
                sup.events().iter().map(|e| (e.action, e.step)).collect();
            (sig, trail)
        };
        assert_eq!(run(1), run(4), "supervisor must be thread-count invariant");
    }
}
