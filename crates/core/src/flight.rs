//! The flight recorder — a black box for the serving fleet.
//!
//! A process-global, fixed-capacity ring buffer of structured events:
//! routing decisions, failovers, chaos injections, die crashes,
//! BIST-gated restores, shed/abstain verdicts. Each event carries the
//! request ids involved, so a post-mortem can reconstruct *which*
//! requests a fault touched without replaying the campaign.
//!
//! Determinism contract (PR 5): events carry only deterministic fields
//! — request ids, batch indices, die ids, tiers, outcome flags. No
//! wall-clock, no RNG. Under a sequential closed-loop driver the
//! recorded stream is therefore bit-identical across `NEUSPIN_THREADS`,
//! which `ci.sh` enforces by byte-comparing the `exp_chaos` dump.
//!
//! The recorder is disabled by default and costs one relaxed atomic
//! load per call site when off. Dumps are stable-field-order JSONL —
//! `seq`, `kind`, then the event's fields in insertion order — written
//! on demand ([`to_jsonl`], [`dump_to`]) and best-effort on the three
//! black-box moments ([`dump_if_configured`]): a caught worker panic,
//! a die crash, and drain.

use crate::json::Json;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Default ring capacity: generous for a chaos campaign, bounded so a
/// runaway event source cannot exhaust memory.
pub const DEFAULT_CAPACITY: usize = 8192;

/// One recorded event: a monotone sequence number, a static kind tag,
/// and the event's fields in insertion order.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Position in the recorded stream (monotone, pre-drop).
    pub seq: u64,
    /// Event kind, e.g. `"route"`, `"failover"`, `"die_crash"`.
    pub kind: &'static str,
    /// Structured payload; field order is preserved into the dump.
    pub fields: Vec<(&'static str, Json)>,
}

impl FlightEvent {
    /// The event as a single stable-field-order JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = Vec::with_capacity(self.fields.len() + 2);
        pairs.push(("seq".to_string(), Json::Num(self.seq as f64)));
        pairs.push(("kind".to_string(), Json::Str(self.kind.to_string())));
        for (k, v) in &self.fields {
            pairs.push(((*k).to_string(), v.clone()));
        }
        Json::Obj(pairs)
    }
}

struct Inner {
    events: VecDeque<FlightEvent>,
    capacity: usize,
    next_seq: u64,
    dump_path: Option<PathBuf>,
}

struct Recorder {
    enabled: AtomicBool,
    dropped: AtomicU64,
    inner: Mutex<Inner>,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        enabled: AtomicBool::new(false),
        dropped: AtomicU64::new(0),
        inner: Mutex::new(Inner {
            events: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            next_seq: 0,
            dump_path: None,
        }),
    })
}

/// Recover a poisoned recorder lock: the protected state is a deque +
/// counters, valid whatever a panicking recorder-holder left behind —
/// and the black box must keep recording *through* panics.
fn lock(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Turns recording on or off (off by default).
pub fn set_enabled(on: bool) {
    recorder().enabled.store(on, Ordering::Relaxed);
}

/// True when [`record`] currently stores events.
pub fn enabled() -> bool {
    recorder().enabled.load(Ordering::Relaxed)
}

/// Resizes the ring; oldest events are dropped if over the new bound.
pub fn set_capacity(capacity: usize) {
    assert!(capacity > 0, "flight-recorder capacity must be positive");
    let r = recorder();
    let mut inner = lock(&r.inner);
    inner.capacity = capacity;
    while inner.events.len() > capacity {
        inner.events.pop_front();
        r.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

/// Sets (or clears) the path [`dump_if_configured`] writes to.
pub fn set_dump_path(path: Option<PathBuf>) {
    lock(&recorder().inner).dump_path = path;
}

/// Records one event. A no-op while disabled; when the ring is full
/// the oldest event is evicted and counted in [`dropped`].
pub fn record(kind: &'static str, fields: Vec<(&'static str, Json)>) {
    let r = recorder();
    if !r.enabled.load(Ordering::Relaxed) {
        return;
    }
    let mut inner = lock(&r.inner);
    if inner.events.len() >= inner.capacity {
        inner.events.pop_front();
        r.dropped.fetch_add(1, Ordering::Relaxed);
    }
    let seq = inner.next_seq;
    inner.next_seq += 1;
    inner.events.push_back(FlightEvent { seq, kind, fields });
}

/// Number of events currently held in the ring.
pub fn len() -> usize {
    lock(&recorder().inner).events.len()
}

/// Number of events evicted because the ring was full. A reconstruction
/// proof requires this to be zero for the campaign under test.
pub fn dropped() -> u64 {
    recorder().dropped.load(Ordering::Relaxed)
}

/// A copy of the current ring contents, oldest first.
pub fn snapshot() -> Vec<FlightEvent> {
    lock(&recorder().inner).events.iter().cloned().collect()
}

/// The ring as JSONL: one stable-field-order object per line, oldest
/// first, with a trailing newline (empty string when the ring is
/// empty).
pub fn to_jsonl() -> String {
    let events = snapshot();
    let mut out = String::new();
    for e in &events {
        out.push_str(&e.to_json().to_string());
        out.push('\n');
    }
    out
}

/// Writes the ring as JSONL to `path`, creating parent directories.
pub fn dump_to(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, to_jsonl())
}

/// Best-effort dump to the configured path (no-op when none is set or
/// recording is off). Called at the black-box moments — caught worker
/// panic, die crash, drain — where losing the write must not take the
/// server down with it, so errors are swallowed.
pub fn dump_if_configured() {
    if !enabled() {
        return;
    }
    let path = lock(&recorder().inner).dump_path.clone();
    if let Some(path) = path {
        let _ = dump_to(&path);
    }
}

/// Clears the ring, the sequence counter, and the dropped count.
/// Enabled state, capacity, and dump path are left as configured.
pub fn reset() {
    let r = recorder();
    let mut inner = lock(&r.inner);
    inner.events.clear();
    inner.next_seq = 0;
    r.dropped.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes flight tests against each other and the serve tests
    /// that enable the recorder (shared process-global state).
    fn with_clean_recorder(f: impl FnOnce()) {
        let _guard = crate::telemetry::test_lock();
        reset();
        set_capacity(DEFAULT_CAPACITY);
        set_dump_path(None);
        set_enabled(true);
        f();
        set_enabled(false);
        reset();
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        with_clean_recorder(|| {
            set_enabled(false);
            record("route", vec![("batch", Json::Num(0.0))]);
            assert_eq!(len(), 0);
            assert_eq!(to_jsonl(), "");
        });
    }

    #[test]
    fn events_are_sequenced_and_stable_in_field_order() {
        with_clean_recorder(|| {
            record(
                "route",
                vec![
                    ("batch", Json::Num(3.0)),
                    ("die", Json::Num(1.0)),
                    ("rids", Json::Arr(vec![Json::Num(7.0), Json::Num(8.0)])),
                ],
            );
            record("die_crash", vec![("die", Json::Num(2.0))]);
            let dump = to_jsonl();
            assert_eq!(
                dump,
                "{\"seq\":0,\"kind\":\"route\",\"batch\":3,\"die\":1,\"rids\":[7,8]}\n\
                 {\"seq\":1,\"kind\":\"die_crash\",\"die\":2}\n"
            );
            // Byte-stable: rendering twice is identical.
            assert_eq!(dump, to_jsonl());
        });
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        with_clean_recorder(|| {
            set_capacity(2);
            for i in 0..5 {
                record("tick", vec![("i", Json::Num(i as f64))]);
            }
            assert_eq!(len(), 2);
            assert_eq!(dropped(), 3);
            let kept = snapshot();
            assert_eq!(kept[0].seq, 3);
            assert_eq!(kept[1].seq, 4);
        });
    }

    #[test]
    fn dump_round_trips_through_the_json_parser() {
        with_clean_recorder(|| {
            record("shed", vec![("rid", Json::Num(41.0))]);
            record(
                "failover",
                vec![
                    ("batch", Json::Num(5.0)),
                    ("from_die", Json::Num(0.0)),
                    ("err", Json::Str("die_down".to_string())),
                ],
            );
            for line in to_jsonl().lines() {
                let v = crate::json::parse(line).expect("every dump line parses");
                assert!(v.get("seq").and_then(Json::as_f64).is_some());
                assert!(v.get("kind").and_then(Json::as_str).is_some());
            }
        });
    }

    #[test]
    fn dump_to_writes_the_file_and_reset_clears() {
        with_clean_recorder(|| {
            record("drain", vec![("drained", Json::Num(4.0))]);
            let dir = std::env::temp_dir().join("neuspin-flight-test");
            let path = dir.join("dump.jsonl");
            dump_to(&path).expect("dump must write");
            let body = std::fs::read_to_string(&path).unwrap();
            assert_eq!(body, to_jsonl());
            let _ = std::fs::remove_dir_all(&dir);
            reset();
            assert_eq!(len(), 0);
            assert_eq!(dropped(), 0);
            record("tick", Vec::new());
            assert_eq!(snapshot()[0].seq, 0, "reset rewinds the sequence");
        });
    }
}
